"""Tests for the observability plane (repro.obs).

The load-bearing suites are the ISSUE-9 acceptance ones:

* the **twin-run oracle**: running the committed E3-E6 quick configs (and a
  shrunk events-engine E13) with ``--trace --telemetry`` must leave
  ``result.json`` and every ``cells/*.json`` byte-identical to a plain run;
* the **RNG lockstep oracle**: a fully observed :class:`P2PStorageSystem`
  must leave all four RNG streams (ctx, soup, adversary, protocol) in the
  exact terminal state of an unobserved twin -- instrumentation never moves
  a protocol coin;
* the **trace-coverage check**: an observed E5 quick run's trace JSONL is
  valid line-delimited JSON whose spans cover every named ``run_round``
  phase;
* the **disabled-path overhead proof**: the no-op span cost, multiplied by
  the spans-per-round count measured on the E5 quick cell, stays under 2 %
  of the round's wall time (asserted through
  :func:`repro.util.benchcompare.compare` at ``max_slowdown=1.02``).

Unit suites for the tracer, the counter registry, the observer context and
the report renderer ride along.
"""

from __future__ import annotations

import filecmp
import json
import time
from pathlib import Path

import pytest

from repro.core.protocol import P2PStorageSystem
from repro.experiments import registry
from repro.obs import (
    NULL_COUNTERS,
    NULL_OBSERVER,
    NULL_SPAN,
    NULL_TRACER,
    CounterRegistry,
    NullObserver,
    Observer,
    Tracer,
    active_observer,
    load_trace,
    merge_snapshots,
    percentile_stats,
    phase_breakdown,
    render_report,
    to_chrome_json,
    use_observer,
)
from repro.sim.store import ResultStore
from repro.util.benchcompare import compare

#: Every named phase the instrumented P2PStorageSystem.run_round must cover.
ROUND_PHASES = {
    "round.churn",
    "round.soup_step",
    "round.sampler_ingest",
    "round.committee_refresh",
    "round.landmark_maintenance",
    "round.storage_maintenance",
    "round.retrieval",
}


# --------------------------------------------------------------------- tracer
class TestTracer:
    def test_span_emits_complete_chrome_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        with tracer.span("outer", detail=7):
            with tracer.span("inner"):
                pass
        tracer.instant("marker", note="x")
        tracer.close()
        events = load_trace(path)
        assert [e["name"] for e in events] == ["inner", "outer", "marker"]
        outer = events[1]
        assert outer["ph"] == "X"
        assert outer["args"] == {"detail": 7}
        assert outer["dur"] >= events[0]["dur"]  # outer encloses inner
        assert {"ts", "pid", "tid"} <= set(outer)
        assert events[2]["ph"] == "i"

    def test_every_line_is_standalone_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        tracer.close()
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        assert len(lines) == 5
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_two_tracers_append_to_one_file(self, tmp_path):
        """O_APPEND semantics: independent writers interleave whole lines."""
        path = tmp_path / "trace.jsonl"
        first, second = Tracer(path), Tracer(path)
        with first.span("from-first"):
            pass
        with second.span("from-second"):
            pass
        first.close()
        second.close()
        assert {e["name"] for e in load_trace(path)} == {"from-first", "from-second"}

    def test_close_is_idempotent(self, tmp_path):
        tracer = Tracer(tmp_path / "trace.jsonl")
        tracer.close()
        tracer.close()

    def test_load_trace_raises_on_torn_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "ok", "ph": "X"}\n{"name": "torn', encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            load_trace(path)

    def test_to_chrome_json_wraps_for_perfetto(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        with tracer.span("phase"):
            pass
        tracer.close()
        document = json.loads(to_chrome_json(load_trace(path)))
        assert document["traceEvents"][0]["name"] == "phase"

    def test_null_tracer_allocates_nothing(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("x", a=1) is NULL_SPAN
        assert NULL_TRACER.span("y") is NULL_SPAN  # the shared singleton
        with NULL_TRACER.span("z"):
            pass
        NULL_TRACER.instant("i")
        NULL_TRACER.close()


# ------------------------------------------------------------------- counters
class TestCounterRegistry:
    def test_incr_and_gauge_max(self):
        reg = CounterRegistry()
        reg.incr("net.messages")
        reg.incr("net.messages", 4)
        reg.gauge_max("queue", 3)
        reg.gauge_max("queue", 9)
        reg.gauge_max("queue", 2)
        assert reg.snapshot() == {"counters": {"net.messages": 5}, "maxima": {"queue": 9}}

    def test_snapshot_is_a_copy(self):
        reg = CounterRegistry()
        reg.incr("a")
        snap = reg.snapshot()
        reg.incr("a")
        assert snap["counters"]["a"] == 1

    def test_merge_snapshot_sums_counters_and_maxes_gauges(self):
        reg = CounterRegistry()
        reg.incr("a", 2)
        reg.gauge_max("g", 5)
        reg.merge_snapshot({"counters": {"a": 3, "b": 1}, "maxima": {"g": 4, "h": 7}})
        assert reg.snapshot() == {
            "counters": {"a": 5, "b": 1},
            "maxima": {"g": 5, "h": 7},
        }

    def test_merge_snapshots_skips_none(self):
        merged = merge_snapshots(
            [None, {"counters": {"a": 1}, "maxima": {}}, None, {"counters": {"a": 2}, "maxima": {"m": 3}}]
        )
        assert merged == {"counters": {"a": 3}, "maxima": {"m": 3}}

    def test_clear_and_bool(self):
        reg = CounterRegistry()
        assert not reg
        reg.incr("a")
        assert reg
        reg.clear()
        assert not reg
        assert not NULL_COUNTERS
        NULL_COUNTERS.incr("ignored")
        assert NULL_COUNTERS.snapshot() == {"counters": {}, "maxima": {}}


# ------------------------------------------------------------------- observer
class TestObserver:
    def test_active_observer_defaults_to_the_null_singleton(self):
        assert active_observer() is NULL_OBSERVER
        assert isinstance(NULL_OBSERVER, NullObserver)
        assert NULL_OBSERVER.enabled is False and NULL_OBSERVER.telemetry is False

    def test_use_observer_installs_and_restores(self):
        observer = Observer(telemetry=True)
        with use_observer(observer):
            assert active_observer() is observer
        assert active_observer() is NULL_OBSERVER
        observer.close()

    def test_count_and_gauge_require_telemetry(self):
        counting = Observer(telemetry=True)
        counting.count("a", 2)
        counting.gauge_max("g", 5)
        assert counting.counters.snapshot()["counters"] == {"a": 2}
        silent = Observer(telemetry=False)
        silent.count("a")
        assert silent.counters.snapshot() == {"counters": {}, "maxima": {}}

    def test_trial_counters_scopes_and_folds_back(self):
        observer = Observer(telemetry=True)
        observer.count("run.level", 1)
        with observer.trial_counters() as scoped:
            observer.count("trial.level", 5)
            assert scoped.snapshot()["counters"] == {"trial.level": 5}
        # The scoped totals folded back into the run-level registry.
        assert observer.counters.snapshot()["counters"] == {"run.level": 1, "trial.level": 5}

    def test_trial_counters_without_telemetry_yields_null(self):
        observer = Observer(telemetry=False)
        with observer.trial_counters() as scoped:
            assert scoped is NULL_COUNTERS

    def test_span_without_tracer_is_the_null_span(self):
        observer = Observer(telemetry=True)
        assert observer.span("anything") is NULL_SPAN


# --------------------------------------------------- zero-perturbation oracle
def _rng_states(system):
    return {
        "ctx": system.ctx.rng.generator.bit_generator.state,
        "soup": system.soup._rng.generator.bit_generator.state,
        "adversary": system.rng.adversary.generator.bit_generator.state,
        "protocol": system.rng.protocol.generator.bit_generator.state,
    }


def _drive(system):
    system.warm_up()
    items = [system.store(bytes([seed_byte, 42]) * 8) for seed_byte in range(2)]
    system.run_rounds(2 * system.params.committee_refresh_period + 3)
    ops = [system.retrieve(item.item_id) for item in items]
    system.run_until_finished(ops)
    return items


class TestRngLockstep:
    def test_full_observation_leaves_all_four_rng_streams_untouched(self, tmp_path):
        """ISSUE-9 keystone: spans + counters never move a protocol coin."""
        plain = P2PStorageSystem(n=128, churn_rate=4, seed=11)
        observer = Observer(tracer=Tracer(tmp_path / "trace.jsonl"), telemetry=True)
        with use_observer(observer):
            observed = P2PStorageSystem(n=128, churn_rate=4, seed=11)
            _drive(observed)
        observer.close()
        _drive(plain)
        plain_states = _rng_states(plain)
        observed_states = _rng_states(observed)
        for stream in ("ctx", "soup", "adversary", "protocol"):
            assert observed_states[stream] == plain_states[stream], f"{stream} RNG diverged"
        assert [s.churned for s in observed.round_summaries] == [
            s.churned for s in plain.round_summaries
        ]
        # And the observation actually happened: spans streamed, counters counted.
        assert ROUND_PHASES <= {e["name"] for e in load_trace(tmp_path / "trace.jsonl")}
        counted = observer.counters.snapshot()["counters"]
        assert counted.get("soup.tokens_delivered", 0) > 0
        assert counted.get("net.messages", 0) > 0


# ------------------------------------------------------------ twin-run oracle
def _artifact_files(run_root: Path):
    (run_dir,) = list(run_root.iterdir())
    files = [run_dir / "result.json"]
    files += sorted((run_dir / "cells").glob("*.json"))
    return run_dir, files


#: Shrunk-but-real overrides keeping the events-engine experiment test-sized.
E13_OVERRIDES = ["--set", "n=64", "--set", "measure_rounds=6"]


@pytest.mark.parametrize(
    "experiment_id,extra",
    [("E3", []), ("E4", []), ("E5", []), ("E6", []), ("E13", E13_OVERRIDES)],
)
def test_observed_run_artifacts_byte_identical(experiment_id, extra, tmp_path, monkeypatch):
    """ISSUE-9 acceptance: --trace --telemetry never changes a compared byte."""
    monkeypatch.setenv("REPRO_CANONICAL_TIMING", "1")
    plain_root, observed_root = tmp_path / "plain", tmp_path / "observed"
    assert registry.main(["run", experiment_id, "--json-out", str(plain_root)] + extra) == 0
    assert (
        registry.main(
            ["run", experiment_id, "--trace", "--telemetry", "--json-out", str(observed_root)]
            + extra
        )
        == 0
    )
    _, plain_files = _artifact_files(plain_root)
    observed_dir, observed_files = _artifact_files(observed_root)
    assert [f.name for f in plain_files] == [f.name for f in observed_files]
    assert len(plain_files) > 1  # result.json plus at least one cell
    for lhs, rhs in zip(plain_files, observed_files):
        assert filecmp.cmp(lhs, rhs, shallow=False), f"{lhs.name} differs under observation"
    # Observability landed where it belongs: outside the compared surface.
    telemetry_dir = observed_dir / "telemetry"
    assert list(telemetry_dir.glob("trace-*.jsonl"))
    assert list(telemetry_dir.glob("*.json"))


def test_e5_trace_covers_every_round_phase(tmp_path, monkeypatch):
    """The E5 quick trace is valid JSONL with spans for all 7 run_round phases."""
    monkeypatch.setenv("REPRO_CANONICAL_TIMING", "1")
    assert registry.main(["run", "E5", "--trace", "--json-out", str(tmp_path)]) == 0
    (run_dir,) = list(tmp_path.iterdir())
    traces = list((run_dir / "telemetry").glob("trace-*.jsonl"))
    assert traces
    events = [event for path in traces for event in load_trace(path)]
    names = {e["name"] for e in events}
    assert ROUND_PHASES <= names
    assert "trial" in names
    # Perfetto-loadable: the wrapped document is valid JSON.
    assert json.loads(to_chrome_json(events))["traceEvents"]


def test_e5_telemetry_persists_per_cell_and_run_snapshots(tmp_path):
    assert (
        registry.main(["run", "E5", "--seeds", "0,1", "--telemetry", "--json-out", str(tmp_path)])
        == 0
    )
    (run_dir,) = list(tmp_path.iterdir())
    store = ResultStore.open(run_dir)
    records = store.telemetry_records()
    assert records
    cell_keys = set(store.completed_keys())
    cell_records = [r for r in records if r["name"] in cell_keys]
    assert len(cell_records) == len(cell_keys)  # one merged snapshot per cell
    merged = merge_snapshots(records)
    for name in ("soup.tokens_delivered", "sampler.rows_ingested", "net.messages"):
        assert merged["counters"].get(name, 0) > 0
    # The observe knob rode through config serialization but never into keys:
    # a plain resume must find every observed cell.
    manifest = store.manifest()
    assert manifest["overrides"]["observe"] == {"telemetry": True}


def test_resume_inherits_observe_from_manifest_and_recomputes_nothing(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CANONICAL_TIMING", "1")
    assert (
        registry.main(
            ["run", "E5", "--seeds", "0,1", "--trace", "--telemetry", "--json-out", str(tmp_path)]
        )
        == 0
    )
    (run_dir,) = list(tmp_path.iterdir())
    before = {f.name: f.read_bytes() for f in (run_dir / "cells").glob("*.json")}
    assert registry.main(["resume", str(run_dir)]) == 0
    after = {f.name: f.read_bytes() for f in (run_dir / "cells").glob("*.json")}
    assert before == after


# -------------------------------------------------------------------- events engine
def test_event_drain_telemetry_counts_event_kinds(tmp_path):
    from repro.net.latency import UniformLatency
    from repro.sim.events import AsyncProtocolSystem

    observer = Observer(tracer=Tracer(tmp_path / "trace.jsonl"), telemetry=True)
    with use_observer(observer):
        system = AsyncProtocolSystem(
            n=64, churn_rate=2, seed=5, latency=UniformLatency(low=0.05, high=0.4)
        )
        system.warm_up()
        system.store(b"observed-item")
        system.run_rounds(6)
    observer.close()
    counted = observer.counters.snapshot()
    event_counts = {k: v for k, v in counted["counters"].items() if k.startswith("events.")}
    assert event_counts, "per-kind event counters missing"
    assert counted["maxima"].get("events.queue_depth", 0) > 0
    event_spans = {
        e["name"] for e in load_trace(tmp_path / "trace.jsonl") if e["name"].startswith("event.")
    }
    assert event_spans  # per-event dwell spans streamed


# -------------------------------------------------------------------- reporting
class TestReport:
    def test_percentile_stats(self):
        stats = percentile_stats([1.0, 2.0, 3.0, 4.0])
        assert stats["count"] == 4
        assert stats["total"] == 10.0
        assert stats["p50"] == 2.5
        assert stats["max"] == 4.0
        assert percentile_stats([]) == {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
            "p50": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }

    def test_phase_breakdown_aggregates_by_name(self):
        events = [
            {"name": "a", "ph": "X", "dur": 2_000_000.0},
            {"name": "a", "ph": "X", "dur": 1_000_000.0},
            {"name": "b", "ph": "X", "dur": 500_000.0},
            {"name": "ignored", "ph": "i"},
        ]
        rows = phase_breakdown(events)
        assert [row["name"] for row in rows] == ["a", "b"]
        assert rows[0] == {"name": "a", "count": 2, "total_seconds": 3.0, "mean_seconds": 1.5}

    def test_report_cli_renders_phases_and_counters(self, tmp_path, capsys):
        assert (
            registry.main(
                ["run", "E5", "--seeds", "0", "--trace", "--telemetry", "--json-out", str(tmp_path)]
            )
            == 0
        )
        (run_dir,) = list(tmp_path.iterdir())
        capsys.readouterr()
        assert registry.main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "phase wall-time breakdown" in out
        assert "round.soup_step" in out
        assert "top counters" in out
        assert "soup.tokens_delivered" in out

    def test_report_cli_dispatch_timeline(self, tmp_path, capsys):
        store = ResultStore.create(tmp_path / "run", {"experiment": "T"})
        store.write_task_timing("cell-a", "w1", 2.0, 4)
        store.write_task_timing("cell-b", "w2", 1.0, 2)
        assert registry.main(["report", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "dispatch timeline" in out
        assert "p50" in out and "p99" in out and "max" in out
        assert "worker w1" in out and "worker w2" in out
        assert "#" in out  # gantt bars rendered

    def test_report_cli_on_bare_run_directory(self, tmp_path, capsys):
        store = ResultStore.create(tmp_path / "run", {"experiment": "T"})
        assert registry.main(["report", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "no trace events" in out

    def test_status_reports_task_time_percentiles(self, tmp_path, capsys):
        """Satellite: status aggregates per-task wall times as p50/p99/max."""
        store = ResultStore.create(tmp_path / "run", {"experiment": "T"})
        for index, seconds in enumerate([1.0, 2.0, 3.0, 10.0]):
            store.write_task_timing(f"task-{index}", "w1", seconds, 2)
        registry._print_status(store)
        out = capsys.readouterr().out
        stats = percentile_stats([1.0, 2.0, 3.0, 10.0])
        assert f"p50={stats['p50']:.2f}s" in out
        assert f"p99={stats['p99']:.2f}s" in out
        assert f"max={stats['max']:.2f}s" in out


# -------------------------------------------------------- disabled-path overhead
def _count_spans_per_round(rounds: int = 10) -> float:
    """Exactly how many observer spans one E5-quick-sized round emits."""

    class _CountingTracer:
        enabled = True

        def __init__(self) -> None:
            self.calls = 0

        def span(self, name, **args):
            self.calls += 1
            return NULL_SPAN

        def close(self) -> None:
            return None

    tracer = _CountingTracer()
    with use_observer(Observer(tracer=tracer)):
        system = P2PStorageSystem(n=256, churn_rate=4, seed=3)
        system.warm_up()
        system.store(b"overhead-probe")
        tracer.calls = 0
        for _ in range(rounds):
            system.run_round()
    return tracer.calls / rounds


def test_disabled_observer_overhead_under_two_percent():
    """ISSUE-9 acceptance: the no-op span path costs <2% of an E5 quick round.

    Measured compositionally -- (unit cost of a disabled span) x (spans per
    round, counted exactly) against the measured round wall time -- and
    asserted through repro.util.benchcompare at max_slowdown=1.02, the same
    comparator CI's benchmark-smoke job uses.
    """
    spans_per_round = _count_spans_per_round()
    assert spans_per_round >= len(ROUND_PHASES)

    # Unit cost of one disabled span, amortised over a large batch.
    obs = NULL_OBSERVER
    repeats = 200_000
    start = time.perf_counter()
    for _ in range(repeats):
        with obs.span("round.churn"):
            pass
    noop_span_seconds = (time.perf_counter() - start) / repeats

    # Wall time of one unobserved round on the same system shape.
    system = P2PStorageSystem(n=256, churn_rate=4, seed=3)
    system.warm_up()
    system.store(b"overhead-probe")
    rounds = 10
    start = time.perf_counter()
    for _ in range(rounds):
        system.run_round()
    round_seconds = (time.perf_counter() - start) / rounds

    baseline = {"benchmarks": [{"name": "e5_quick_round", "mean_seconds": round_seconds}]}
    current = {
        "benchmarks": [
            {
                "name": "e5_quick_round",
                "mean_seconds": round_seconds + noop_span_seconds * spans_per_round,
            }
        ]
    }
    comparison = compare(baseline, current, max_slowdown=1.02, min_seconds=0.0)
    assert comparison.ok, "\n".join(comparison.lines)
