"""Tests for repro.sim.backends: pluggable dispatch queues (ISSUE 10).

Three layers:

* a **contract suite** run against every registered backend -- claim
  exclusivity, lease expiry, heartbeats, steals, batch claims, worker
  records and timings must behave identically whether the medium is claim
  files or an SQLite database;
* **regression tests for the lease-clock bugs**: a live worker's lease must
  not be stealable when the reading host's wall clock is ±5 minutes off
  (expiry runs on the filesystem's clock, not the reader's), and a reader
  that catches a peer's heartbeat rewrite mid-flight must retry instead of
  synthesizing an immediately-stealable claim;
* the **cross-backend byte-identity matrix**: a quick-mode E7 dispatched
  through each backend at 1 and 2 workers (with batched claims) produces
  ``result.json`` and every cell artifact byte-identical to a sequential
  run.  (The SIGKILL/steal schedule is covered per-backend in
  test_sim_dispatch.py's TestDispatchMultiProcess.)
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.experiments import registry
from repro.sim.backends import (
    BACKENDS,
    FilesystemBackend,
    SQLiteBackend,
    backend_from_manifest,
    make_backend,
)
from repro.sim.store import ResultStore


@pytest.fixture(params=sorted(BACKENDS))
def backend(request, tmp_path):
    store = ResultStore.create(tmp_path / "run", {})
    instance = make_backend(store, request.param)
    yield instance
    instance.close()


# ---------------------------------------------------------------------- contract
class TestBackendContract:
    """Every backend must expose the same claim/lease/record semantics."""

    def test_claim_is_exclusive(self, backend):
        assert backend.try_claim("t1", "worker-a", 30.0)
        assert not backend.try_claim("t1", "worker-b", 30.0)
        claim = backend.read_claim("t1")
        assert claim["worker"] == "worker-a"
        assert not backend.claim_expired(claim)

    def test_read_claim_attaches_single_clock_age(self, backend):
        backend.try_claim("t1", "worker-a", 30.0)
        claim = backend.read_claim("t1")
        assert 0.0 <= claim["_heartbeat_age"] < 5.0

    def test_missing_claim_reads_none(self, backend):
        assert backend.read_claim("nope") is None

    def test_release_then_reclaim(self, backend):
        assert backend.try_claim("t1", "worker-a", 30.0)
        backend.release("t1", "worker-a")
        assert backend.read_claim("t1") is None
        assert backend.try_claim("t1", "worker-b", 30.0)

    def test_release_refuses_foreign_claim(self, backend):
        assert backend.try_claim("t1", "worker-a", 30.0)
        backend.release("t1", "worker-b")
        assert backend.read_claim("t1")["worker"] == "worker-a"

    def test_heartbeat_extends_lease(self, backend):
        backend.try_claim("t1", "worker-a", 0.2)
        time.sleep(0.15)
        assert backend.heartbeat("t1", "worker-a")
        time.sleep(0.1)  # 0.25s after acquire, but only 0.1s after heartbeat
        assert not backend.claim_expired(backend.read_claim("t1"))

    def test_heartbeat_refuses_foreign_claim(self, backend):
        backend.try_claim("t1", "worker-a", 30.0)
        assert not backend.heartbeat("t1", "worker-b")
        assert not backend.heartbeat("gone", "worker-b")

    def test_steal_requires_expiry(self, backend):
        backend.try_claim("t1", "worker-a", 30.0)
        assert not backend.steal("t1", "worker-b", 30.0)
        assert backend.read_claim("t1")["worker"] == "worker-a"

    def test_steal_expired_claim(self, backend):
        backend.try_claim("t1", "worker-a", 0.05)
        time.sleep(0.15)
        assert backend.claim_expired(backend.read_claim("t1"))
        assert backend.steal("t1", "worker-b", 30.0)
        claim = backend.read_claim("t1")
        assert claim["worker"] == "worker-b"
        assert not backend.claim_expired(claim)

    def test_claim_many_returns_only_wins(self, backend):
        assert backend.try_claim("t2", "worker-peer", 30.0)
        won = backend.claim_many(["t1", "t2", "t3"], "worker-a", 30.0)
        assert won == ["t1", "t3"]
        assert backend.read_claim("t2")["worker"] == "worker-peer"
        for task_id in won:
            assert backend.read_claim(task_id)["worker"] == "worker-a"

    def test_active_claims_sorted_by_task(self, backend):
        backend.try_claim("t-b", "worker-a", 30.0)
        backend.try_claim("t-a", "worker-a", 30.0)
        claims = backend.active_claims()
        assert [c["task"] for c in claims] == ["t-a", "t-b"]

    def test_worker_record_upserts(self, backend):
        backend.worker_record("w1", computing="t1")
        backend.worker_record("w1", computing=None, finished=True)
        backend.worker_record("w2", computing="t9")
        records = backend.worker_records()
        assert [r["worker"] for r in records] == ["w1", "w2"]
        assert records[0]["finished"] is True
        assert records[1]["computing"] == "t9"

    def test_timings_round_trip(self, backend):
        backend.record_timing("cell.0-2", "w1", 1.5, 2)
        backend.record_timing("cell.0-2", "w2", 2.5, 2)  # re-run overwrites
        backend.record_timing("cell.2-4", "w1", 0.5, 2)
        timings = backend.task_timings()
        assert [t["task"] for t in timings] == ["cell.0-2", "cell.2-4"]
        assert timings[0]["worker"] == "w2"
        assert timings[0]["seconds"] == 2.5
        assert timings[0]["trials"] == 2

    def test_close_is_idempotent_and_reopenable(self, backend):
        backend.try_claim("t1", "worker-a", 30.0)
        backend.close()
        backend.close()
        assert backend.read_claim("t1")["worker"] == "worker-a"  # lazily reopens


# ---------------------------------------------------------------------- clock skew
class TestLeaseClockSkew:
    """ISSUE 10 satellite: expiry must survive ±5 min of reader clock skew.

    The filesystem backend evaluates staleness entirely in mtimes stamped by
    the filesystem (claim file vs. probe file), so warping the reader's
    ``time.time`` must change nothing.
    """

    SKEWS = [-300.0, 300.0]

    def _skew_clock(self, monkeypatch, offset: float) -> None:
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + offset)

    @pytest.mark.parametrize("offset", SKEWS)
    def test_live_lease_not_stealable_under_reader_skew(self, tmp_path, monkeypatch, offset):
        store = ResultStore.create(tmp_path / "run", {})
        backend = FilesystemBackend(store)
        assert backend.try_claim("t1", "worker-live", 30.0)
        self._skew_clock(monkeypatch, offset)
        claim = backend.read_claim("t1")
        assert claim["_heartbeat_age"] < 30.0
        assert not backend.claim_expired(claim)
        assert not backend.steal("t1", "worker-thief", 30.0)
        assert backend.read_claim("t1")["worker"] == "worker-live"

    @pytest.mark.parametrize("offset", SKEWS)
    def test_genuinely_stale_lease_expires_despite_reader_skew(self, tmp_path, monkeypatch, offset):
        store = ResultStore.create(tmp_path / "run", {})
        backend = FilesystemBackend(store)
        assert backend.try_claim("t1", "worker-dead", 30.0)
        # A crashed worker is silence: the claim file's mtime stops moving.
        path = store.claim_path("t1")
        stale = os.stat(path).st_mtime - 600.0
        os.utime(path, (stale, stale))
        self._skew_clock(monkeypatch, offset)
        claim = backend.read_claim("t1")
        assert claim["_heartbeat_age"] > 30.0
        assert backend.claim_expired(claim)
        assert backend.steal("t1", "worker-rescuer", 30.0)

    def test_heartbeat_refreshes_the_mtime_clock(self, tmp_path):
        """The lease the protocol actually extends is the claim file's mtime."""
        store = ResultStore.create(tmp_path / "run", {})
        backend = FilesystemBackend(store)
        backend.try_claim("t1", "worker-a", 30.0)
        path = store.claim_path("t1")
        stale = os.stat(path).st_mtime - 600.0
        os.utime(path, (stale, stale))
        assert backend.claim_expired(backend.read_claim("t1"))
        assert backend.heartbeat("t1", "worker-a")
        assert not backend.claim_expired(backend.read_claim("t1"))

    def test_legacy_claim_dict_still_supports_explicit_now(self, tmp_path):
        """Callers that build their own claim dicts keep the wall-clock path."""
        store = ResultStore.create(tmp_path / "run", {})
        backend = FilesystemBackend(store)
        claim = {"heartbeat_at": 100.0, "lease_seconds": 30.0}
        assert not backend.claim_expired(claim, now=120.0)
        assert backend.claim_expired(claim, now=140.0)


# ---------------------------------------------------------------------- torn reads
class TestTornReadRetry:
    """ISSUE 10 satellite: a mid-write reader must not fabricate a stealable claim."""

    def test_mid_write_reader_retries_and_sees_live_claim(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        backend = FilesystemBackend(store)
        assert backend.try_claim("t1", "worker-live", 30.0)
        path = store.claim_path("t1")
        document = path.read_text()
        torn = document[: len(document) // 2]
        with pytest.raises(json.JSONDecodeError):
            json.loads(torn)  # the test premise: a prefix is not valid JSON
        path.write_text(torn)

        def writer_finishes():
            # The "peer" completes its rewrite well inside the retry window.
            time.sleep(FilesystemBackend.TORN_READ_RETRY_SECONDS / 5)
            path.write_text(document)

        thread = threading.Thread(target=writer_finishes)
        thread.start()
        claim = backend.read_claim("t1")
        thread.join(timeout=5)
        assert claim["worker"] == "worker-live"
        assert not backend.claim_expired(claim)
        assert not backend.steal("t1", "worker-thief", 30.0)
        assert backend.read_claim("t1")["worker"] == "worker-live"

    def test_permanently_torn_claim_expires_after_the_retry(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        backend = FilesystemBackend(store)
        assert backend.try_claim("t1", "worker-a", 30.0)
        store.claim_path("t1").write_text("{ not json")
        started = time.monotonic()
        claim = backend.read_claim("t1")
        elapsed = time.monotonic() - started
        # One retry sleep happened before giving up on the document...
        assert elapsed >= FilesystemBackend.TORN_READ_RETRY_SECONDS
        # ... and the sentinel is immediately expired so the task is rescuable.
        assert claim["_heartbeat_age"] == float("inf")
        assert backend.claim_expired(claim)
        assert backend.steal("t1", "worker-b", 30.0)


# ---------------------------------------------------------------------- selection
class TestBackendSelection:
    def test_make_backend_rejects_unknown_name(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        with pytest.raises(ValueError, match="unknown dispatch backend"):
            make_backend(store, "postgres")

    def test_manifest_selects_backend(self, tmp_path):
        plain = ResultStore.create(tmp_path / "plain", {})
        assert isinstance(backend_from_manifest(plain), FilesystemBackend)
        chosen = ResultStore.create(tmp_path / "chosen", {"dispatch": {"backend": "sqlite"}})
        assert isinstance(backend_from_manifest(chosen), SQLiteBackend)

    def test_store_resolves_backend_lazily_from_manifest(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {"dispatch": {"backend": "sqlite"}})
        assert isinstance(store.backend, SQLiteBackend)
        assert store.backend is store.backend  # cached, not re-created

    def test_store_delegates_claims_to_attached_backend(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        store.attach_backend(make_backend(store, "sqlite"))
        assert store.try_claim("t1", "worker-a", 30.0)
        assert store.read_claim("t1")["worker"] == "worker-a"
        assert not store.claim_expired(store.read_claim("t1"))
        assert store.heartbeat_claim("t1", "worker-a")
        store.release_claim("t1", "worker-a")
        assert store.read_claim("t1") is None
        # Everything went through the database; no claim files were written.
        assert (store.root / SQLiteBackend.DB_NAME).exists()
        assert not list(store.claims_dir.glob("*.claim"))

    def test_worker_records_and_timings_delegate_too(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {"dispatch": {"backend": "sqlite"}})
        store.write_worker_record("w1", computing="t1")
        assert store.worker_records()[0]["worker"] == "w1"
        store.write_task_timing("t1", "w1", 1.0, 4)
        assert store.task_timings()[0]["task"] == "t1"
        assert not store.workers_dir.exists() or not list(store.workers_dir.glob("*.json"))

    def test_cli_dispatch_rejects_invalid_claim_batch(self, tmp_path, capsys):
        rc = registry.main(
            ["dispatch", "E7", "--json-out", str(tmp_path), "--claim-batch", "0"]
        )
        assert rc == 2
        assert "claim-batch" in capsys.readouterr().err
        assert list(tmp_path.glob("E7-*")) == []

    def test_cli_worker_backend_override_warns(self, tmp_path, capsys):
        rc = registry.main(
            [
                "dispatch",
                "E7",
                "--json-out",
                str(tmp_path),
                "--set",
                "n=64",
                "--set",
                "measure_rounds=5",
                "--set",
                "items=1",
                "--seeds",
                "0..1",
            ]
        )
        assert rc == 0
        run_dir = next(tmp_path.glob("E7-*"))
        rc = registry.main(["worker", str(run_dir), "--backend", "sqlite", "--wait-timeout", "120"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "overrides the manifest" in captured.err
        # The override really took: claims ran through the database.
        assert (run_dir / SQLiteBackend.DB_NAME).exists()


# ---------------------------------------------------------------------- byte identity
def _cli_worker(run_dir: str) -> None:
    """Subprocess body: one CLI worker joining a dispatched run directory."""
    os.environ["REPRO_CANONICAL_TIMING"] = "1"
    raise SystemExit(registry.main(["worker", run_dir, "--wait-timeout", "300"]))


E7_ARGS = [
    "--set", "n=64", "--set", "measure_rounds=5", "--set", "items=1", "--seeds", "0..3",
]


@pytest.fixture(scope="module")
def e7_reference(tmp_path_factory):
    """One sequential E7 quick run shared by the whole backend/worker matrix."""
    out = tmp_path_factory.mktemp("e7-seq")
    previous = os.environ.get("REPRO_CANONICAL_TIMING")
    os.environ["REPRO_CANONICAL_TIMING"] = "1"
    try:
        assert registry.main(["run", "E7", "--json-out", str(out), *E7_ARGS]) == 0
    finally:
        if previous is None:
            os.environ.pop("REPRO_CANONICAL_TIMING", None)
        else:
            os.environ["REPRO_CANONICAL_TIMING"] = previous
    return next(out.glob("E7-*"))


class TestCrossBackendByteIdentity:
    """ISSUE 10 acceptance: E7 artifacts identical across backends and worker counts."""

    @pytest.mark.parametrize("backend_name", sorted(BACKENDS))
    @pytest.mark.parametrize("worker_count", [1, 2])
    def test_dispatched_e7_matches_sequential(
        self, tmp_path, capsys, monkeypatch, e7_reference, backend_name, worker_count
    ):
        monkeypatch.setenv("REPRO_CANONICAL_TIMING", "1")
        rc = registry.main(
            [
                "dispatch",
                "E7",
                "--json-out",
                str(tmp_path),
                "--backend",
                backend_name,
                "--claim-batch",
                "2",
                *E7_ARGS,
            ]
        )
        assert rc == 0
        run_dir = next(tmp_path.glob("E7-*"))
        if worker_count == 1:
            assert registry.main(["worker", str(run_dir), "--wait-timeout", "300"]) == 0
        else:
            ctx = multiprocessing.get_context("fork")
            procs = [
                ctx.Process(target=_cli_worker, args=(str(run_dir),))
                for _ in range(worker_count)
            ]
            for proc in procs:
                proc.start()
            for proc in procs:
                proc.join(timeout=300)
                assert proc.exitcode == 0
        capsys.readouterr()
        assert (run_dir / "result.json").read_bytes() == (e7_reference / "result.json").read_bytes()
        reference_cells = sorted((e7_reference / "cells").glob("*.json"))
        assert reference_cells
        for cell in reference_cells:
            assert (run_dir / "cells" / cell.name).read_bytes() == cell.read_bytes(), cell.name
        store = ResultStore.open(run_dir)
        assert store.active_claims() == []
        # The queue medium matched the requested backend.
        has_db = (run_dir / SQLiteBackend.DB_NAME).exists()
        assert has_db == (backend_name == "sqlite")
