"""Property-based tests (hypothesis) on the core invariants.

These complement the example-based unit tests by checking structural
invariants over randomly generated inputs: matchings are involutions, the
dynamic network conserves its population under arbitrary valid churn
schedules, walk tokens are conserved (delivered + killed + in-flight ==
generated), the committee roster never contains duplicates, and the IDA coder
round-trips for arbitrary payloads (covered in test_core_erasure too, kept
here for the invariant "encode then decode any K pieces is the identity").
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.churn import ScheduledChurn, UniformRandomChurn, paper_churn_limit
from repro.net.network import DynamicNetwork
from repro.net.topology import random_matching
from repro.util.datastructures import IndexedSet, RoundTimer
from repro.util.rng import RngStream
from repro.walks.mixing import total_variation_from_uniform
from repro.walks.sampler import NodeSampler
from repro.walks.soup import SampleDelivery, WalkSoup

SETTINGS = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@given(half=st.integers(2, 100), seed=st.integers(0, 1000))
@SETTINGS
def test_random_matching_is_fixed_point_free_involution(half, seed):
    n = 2 * half
    partner = random_matching(n, np.random.default_rng(seed))
    idx = np.arange(n)
    assert np.array_equal(partner[partner], idx)
    assert np.all(partner != idx)


@given(
    half=st.integers(8, 40),
    rate=st.integers(0, 8),
    rounds=st.integers(1, 12),
    seed=st.integers(0, 100),
)
@SETTINGS
def test_network_population_invariants_under_churn(half, rate, rounds, seed):
    n = 2 * half
    rate = min(rate, n // 2)
    adversary = UniformRandomChurn(n, rate, np.random.default_rng(seed))
    net = DynamicNetwork(n, degree=4, adversary=adversary, adversary_rng=RngStream(seed))
    for _ in range(rounds):
        report = net.begin_round()
        net.end_round()
        # population size constant, uids unique, every churned-in uid alive
        uids = net.alive_uids()
        assert uids.size == n
        assert len(set(uids.tolist())) == n
        for uid in report.churned_in_uids.tolist():
            assert net.is_alive(int(uid))
        for uid in report.churned_out_uids.tolist():
            assert not net.is_alive(int(uid))
    assert net.total_churned == rate * rounds


@given(
    half=st.integers(8, 32),
    rate=st.integers(0, 6),
    walk_length=st.integers(2, 8),
    seed=st.integers(0, 50),
)
@SETTINGS
def test_walk_token_conservation(half, rate, walk_length, seed):
    n = 2 * half
    rate = min(rate, n // 2)
    adversary = UniformRandomChurn(n, rate, np.random.default_rng(seed))
    net = DynamicNetwork(n, degree=4, adversary=adversary, adversary_rng=RngStream(seed))
    soup = WalkSoup(net, walk_length=walk_length, walks_per_node=1, rng=RngStream(seed + 1))
    for r in range(walk_length + 3):
        report = net.begin_round()
        soup.apply_churn(report)
        if r == 0:
            soup.inject_from_all(0, per_node=1)
        soup.step_and_collect(r)
        net.end_round()
        stats = soup.stats
        assert stats.delivered + stats.killed_by_churn + soup.in_flight == stats.generated
    if rate == 0:
        assert soup.stats.delivered == n


@given(items=st.lists(st.integers(0, 10_000), max_size=200), seed=st.integers(0, 100))
@SETTINGS
def test_indexed_set_matches_builtin_set(items, seed):
    indexed = IndexedSet()
    reference = set()
    rng = np.random.default_rng(seed)
    for item in items:
        if rng.random() < 0.7:
            indexed.add(item)
            reference.add(item)
        else:
            indexed.discard(item)
            reference.discard(item)
    assert set(indexed) == reference
    assert len(indexed) == len(reference)
    sample = indexed.sample(rng, k=5)
    assert all(s in reference for s in sample)


@given(start=st.integers(0, 100), period=st.integers(1, 50), horizon=st.integers(1, 300))
@SETTINGS
def test_round_timer_fires_exactly_every_period(start, period, horizon):
    timer = RoundTimer(start=start, period=period)
    fires = [r for r in range(start, start + horizon) if timer.fires_at(r)]
    assert fires == list(range(start, start + horizon, period))
    for r in fires:
        assert timer.next_fire(r) == r


@given(
    counts=st.lists(st.integers(0, 50), min_size=1, max_size=100),
)
@SETTINGS
def test_total_variation_bounds(counts):
    population = list(range(len(counts)))
    report = total_variation_from_uniform(np.asarray(counts, dtype=np.float64), population)
    assert 0.0 <= report.tv_distance <= 1.0
    if sum(counts) > 0:
        assert report.min_probability <= 1.0 / len(counts) <= report.max_probability + 1e-12


@given(
    schedule_rounds=st.dictionaries(
        st.integers(0, 10), st.sets(st.integers(0, 31), min_size=0, max_size=10), max_size=5
    ),
    seed=st.integers(0, 20),
)
@SETTINGS
def test_scheduled_churn_respects_schedule(schedule_rounds, seed):
    schedule = {r: sorted(slots) for r, slots in schedule_rounds.items()}
    adversary = ScheduledChurn(schedule, n_slots=32)
    net = DynamicNetwork(32, degree=4, adversary=adversary, adversary_rng=RngStream(seed))
    for r in range(11):
        report = net.begin_round()
        net.end_round()
        expected = len(set(schedule.get(r, [])))
        assert report.count == expected


@given(
    slots=st.lists(st.integers(0, 31), min_size=1, max_size=300),
    cap=st.integers(1, 12),
    seed=st.integers(0, 50),
)
@SETTINGS
def test_forwarding_mask_partitions_tokens_and_respects_cap(slots, cap, seed):
    """Lemma 1's cap: no slot moves more than forwarding_cap tokens, and the
    held/moving split partitions all tokens (under-cap slots move everything)."""
    net = DynamicNetwork(32, degree=4, adversary_rng=RngStream(seed))
    soup = WalkSoup(
        net,
        walk_length=4,
        walks_per_node=1,
        rng=RngStream(seed + 1),
        enforce_forwarding_cap=True,
        forwarding_cap=cap,
    )
    net.begin_round()
    positions = np.asarray(slots, dtype=np.int32)
    soup.inject(positions, positions.astype(np.int64), 0)
    mask = soup._forwarding_mask()
    net.end_round()

    assert mask.shape == positions.shape
    moving_counts = np.bincount(positions[mask], minlength=32)
    total_counts = np.bincount(positions, minlength=32)
    # No slot ever moves more than the cap.
    assert int(moving_counts.max(initial=0)) <= cap
    # held + moving partitions all tokens, per slot and in total.
    held_counts = np.bincount(positions[~mask], minlength=32)
    assert np.array_equal(moving_counts + held_counts, total_counts)
    # Slots at or under the cap move every resident token; slots over the
    # cap move exactly the cap.
    expected_moving = np.minimum(total_counts, cap)
    assert np.array_equal(moving_counts, expected_moving)


@given(n=st.integers(1, 2))
@SETTINGS
def test_paper_churn_limit_zero_below_three_nodes(n):
    assert paper_churn_limit(n) == 0


@given(n=st.integers(3, 100_000), delta=st.floats(0.0, 50.0, allow_nan=False))
@SETTINGS
def test_paper_churn_limit_bounded_and_nonnegative(n, delta):
    """Huge delta drives the limit to zero; it never exceeds n // 2."""
    limit = paper_churn_limit(n, delta)
    assert 0 <= limit <= n // 2


@given(
    n=st.integers(3, 100_000),
    delta_low=st.floats(0.0, 5.0, allow_nan=False),
    delta_gap=st.floats(0.1, 5.0, allow_nan=False),
)
@SETTINGS
def test_paper_churn_limit_non_increasing_in_delta(n, delta_low, delta_gap):
    # For n >= 3, ln(n) > 1, so a larger exponent can only shrink the bound.
    assert paper_churn_limit(n, delta_low + delta_gap) <= paper_churn_limit(n, delta_low)


@given(n=st.integers(3, 10_000), constant=st.floats(100.0, 1e6))
@SETTINGS
def test_paper_churn_limit_caps_at_half_the_network(n, constant):
    """An absurd constant saturates the bound at n // 2, never beyond."""
    assert paper_churn_limit(n, 0.0, constant=constant) == n // 2


# ---------------------------------------------------------------------- sampler draw APIs
def _windowed_sampler(n: int, n_rounds: int, seed: int):
    """A sampler over a network with some churned-out uids and dense windows.

    Sources deliberately include dead uids (churned out before ingestion) and
    out-of-range uids, so the draw APIs' alive-filtering is exercised; every
    destination is alive at ingest time.
    """
    rng = np.random.default_rng(seed)
    kill = rng.choice(n, size=max(1, n // 8), replace=False).tolist()
    net = DynamicNetwork(
        n, degree=4, adversary=ScheduledChurn({0: kill}, n_slots=n), adversary_rng=RngStream(0)
    )
    net.begin_round()
    net.end_round()
    sampler = NodeSampler(net, retention=n_rounds + 2)
    live = np.asarray(net.slot_uid_view(), dtype=np.int64)
    for r in range(n_rounds):
        size = 2 * n
        dests = rng.choice(live, size=size)
        sources = rng.integers(0, n + n // 4, size=size).astype(np.int64)
        sampler.ingest(
            SampleDelivery(
                round_index=r,
                destination_uids=dests,
                source_uids=sources,
                birth_rounds=np.zeros(size, dtype=np.int32),
            )
        )
    return net, sampler, rng


DRAW_SETTINGS = settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@given(
    half=st.integers(8, 20),
    n_rounds=st.integers(1, 4),
    seed=st.integers(0, 10**6),
    k=st.integers(1, 6),
    max_age=st.one_of(st.none(), st.integers(0, 5)),
    exclude_bits=st.integers(0, 2**12 - 1),
)
@DRAW_SETTINGS
def test_draw_distinct_sources_invariants(half, n_rounds, seed, k, max_age, exclude_bits):
    """Distinct, alive, non-self, non-excluded, window-bounded; short draws consistent."""
    net, sampler, rng = _windowed_sampler(2 * half, n_rounds, seed)
    uid = int(rng.choice(np.asarray(net.slot_uid_view())))
    exclude = {i for i in range(12) if exclude_bits >> i & 1}
    pool = sampler.distinct_source_pool(uid, exclude=exclude, max_age=max_age)
    drawn = sampler.draw_distinct_sources(
        uid, k, np.random.default_rng(seed), exclude=exclude, max_age=max_age
    )
    assert len(drawn) == min(k, pool.size)  # short draws = pool exhaustion, nothing else
    assert len(set(drawn)) == len(drawn)
    assert uid not in drawn
    assert not (set(drawn) & exclude)
    if drawn:
        assert net.alive_mask(np.asarray(drawn, dtype=np.int64)).all()
    window = set(sampler.sample_sources(uid, alive_only=True, max_age=max_age))
    assert set(drawn) <= window
    assert set(pool.tolist()) <= window


@given(
    half=st.integers(8, 20),
    n_rounds=st.integers(1, 4),
    seed=st.integers(0, 10**6),
    max_age=st.one_of(st.none(), st.integers(0, 5)),
    exclude_bits=st.integers(0, 2**12 - 1),
)
@DRAW_SETTINGS
def test_bulk_pools_match_per_uid_pools(half, n_rounds, seed, max_age, exclude_bits):
    """distinct_source_pools == [distinct_source_pool(uid)] for any shared exclusion."""
    net, sampler, rng = _windowed_sampler(2 * half, n_rounds, seed)
    live = np.asarray(net.slot_uid_view(), dtype=np.int64)
    uids = rng.choice(live, size=min(8, live.size), replace=False).tolist()
    exclude = {i for i in range(12) if exclude_bits >> i & 1}
    bulk = sampler.distinct_source_pools(uids, max_age=max_age, exclude=exclude)
    assert len(bulk) == len(uids)
    for uid, pool in zip(uids, bulk):
        expected = sampler.distinct_source_pool(uid, exclude=exclude, max_age=max_age)
        assert np.array_equal(pool, expected)


@given(
    half=st.integers(8, 20),
    n_rounds=st.integers(1, 4),
    seed=st.integers(0, 10**6),
    k=st.integers(1, 6),
    max_age=st.one_of(st.none(), st.integers(0, 5)),
)
@DRAW_SETTINGS
def test_pool_draw_rng_parity_with_direct_draw(half, n_rounds, seed, k, max_age):
    """draw_from_pool over a pre-gathered pool consumes the RNG exactly like
    draw_distinct_sources: same draws AND same generator state afterwards."""
    net, sampler, rng = _windowed_sampler(2 * half, n_rounds, seed)
    live = np.asarray(net.slot_uid_view(), dtype=np.int64)
    uids = rng.choice(live, size=min(6, live.size), replace=False).tolist()
    rng_direct = np.random.default_rng(seed + 1)
    rng_pooled = np.random.default_rng(seed + 1)
    pools = sampler.distinct_source_pools(uids, max_age=max_age)
    for uid, pool in zip(uids, pools):
        direct = sampler.draw_distinct_sources(uid, k, rng_direct, max_age=max_age)
        pooled = sampler.draw_from_pool(pool, k, rng_pooled)
        assert direct == pooled
    assert rng_direct.random() == rng_pooled.random()
