"""Tests for repro.sim.dispatch: distributed claims, leases, chunking, recovery.

The load-bearing tests are the ISSUE-4 acceptance ones:

* two concurrent worker processes sharing one run directory complete a sweep
  with every (cell, seed) trial computed exactly once and artifacts
  byte-identical to a sequential run's (``REPRO_CANONICAL_TIMING=1`` zeroes
  the only volatile fields);
* a worker SIGKILLed mid-cell leaves an expiring lease behind; a second
  worker steals the claim, finishes the cell, and the final artifacts are
  byte-identical to an uninterrupted run.

Claims are advisory (duplicated work is harmless), so the unit tests focus
on the properties the protocol *does* guarantee: claim exclusivity, lease
expiry, atomic takeover, idempotent chunk merging.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.sim.dispatch import (
    CellSpec,
    DispatchDrained,
    DispatchTimeout,
    DispatchWorker,
    make_worker_id,
    plan_tasks,
    use_dispatcher,
)
from repro.sim.experiment import ExperimentConfig, TrialResult, run_trials
from repro.sim.runner import GridSpec, Sweep, TrialRunner
from repro.sim.store import ResultStore, use_store

BASE = ExperimentConfig(name="T-dispatch", n=64, seeds=(0, 1))
GRID = GridSpec.product({"churn_rate": (0, 1, 2, 3, 4, 5)})

#: One cell with many seeds, to exercise seed-chunking.
BIG_BASE = ExperimentConfig(name="T-chunky", n=64, seeds=tuple(range(10)))


def _logged_trial(config: ExperimentConfig, seed: int) -> dict:
    """Deterministic trial that (optionally) appends one line per computation.

    The compute log is how the race test proves "every trial computed exactly
    once": workers run in separate processes, so the log is an O_APPEND file
    named by the DISPATCH_TEST_LOG environment variable.
    """
    log_path = os.environ.get("DISPATCH_TEST_LOG")
    if log_path:
        fd = os.open(log_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT)
        try:
            os.write(fd, f"{config.name}|{config.churn_rate}|{seed}\n".encode())
        finally:
            os.close(fd)
    block = os.environ.get("DISPATCH_TEST_BLOCK")
    if block and seed == 5:
        deadline = time.monotonic() + 120.0
        while Path(block).exists() and time.monotonic() < deadline:
            time.sleep(0.05)
    return {"seed": seed, "rate": config.churn_rate, "value": (seed * 31 + (config.churn_rate or 0)) % 97}


def _spec_for(store: ResultStore, config: ExperimentConfig) -> CellSpec:
    key = store.cell_key(_logged_trial, config, config.seeds)
    return CellSpec(key=key, config=config, seeds=tuple(config.seeds))


# ---------------------------------------------------------------------- planning
class TestPlanTasks:
    def _specs(self, store, configs):
        return [_spec_for(store, c) for c in configs]

    def test_tiny_cells_are_batched(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        specs = self._specs(store, [BASE.with_overrides(churn_rate=r) for r in range(6)])
        tasks = plan_tasks(specs, chunk_seeds=16, min_trials_per_task=4)
        # 6 cells x 2 seeds batched into tasks of >= 4 trials = 2 cells each.
        assert [task.trial_count for task in tasks] == [4, 4, 4]
        assert all(len(task.entries) == 2 for task in tasks)
        assert all(task.task_id.startswith("batch-") for task in tasks)

    def test_large_cell_is_chunked(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        spec = _spec_for(store, BIG_BASE)
        tasks = plan_tasks([spec], chunk_seeds=3, min_trials_per_task=4)
        assert [task.task_id.rsplit(".", 1)[1] for task in tasks] == ["0-3", "3-6", "6-9", "9-10"]
        assert [task.entries[0].seeds for task in tasks] == [(0, 1, 2), (3, 4, 5), (6, 7, 8), (9,)]

    def test_plan_is_deterministic_and_ignores_completion(self, tmp_path):
        """Workers joining at different times must derive identical task ids."""
        store = ResultStore.create(tmp_path / "run", {})
        specs = self._specs(store, [BASE.with_overrides(churn_rate=r) for r in range(6)])
        first = [t.task_id for t in plan_tasks(specs, 16, 4)]
        # Complete a cell in between: the plan must not change.
        store.save_cell(
            specs[0].key,
            trial=_logged_trial,
            config=specs[0].config,
            seeds=specs[0].seeds,
            trials=[],
        )
        second = [t.task_id for t in plan_tasks(specs, 16, 4)]
        assert first == second

    def test_single_leftover_cell_keeps_its_key_as_task_id(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        specs = self._specs(store, [BASE.with_overrides(churn_rate=r) for r in range(3)])
        tasks = plan_tasks(specs, chunk_seeds=16, min_trials_per_task=4)
        assert tasks[-1].task_id == specs[-1].key  # 3rd cell doesn't fill a batch

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            plan_tasks([], chunk_seeds=0)
        with pytest.raises(ValueError):
            plan_tasks([], min_trials_per_task=0)


# ---------------------------------------------------------------------- claims / leases
class TestClaims:
    def test_claim_is_exclusive(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        assert store.try_claim("t1", "worker-a", 30.0)
        assert not store.try_claim("t1", "worker-b", 30.0)
        claim = store.read_claim("t1")
        assert claim["worker"] == "worker-a"
        assert not store.claim_expired(claim)

    def test_release_then_reclaim(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        assert store.try_claim("t1", "worker-a", 30.0)
        store.release_claim("t1", "worker-a")
        assert store.read_claim("t1") is None
        assert store.try_claim("t1", "worker-b", 30.0)

    def test_release_refuses_foreign_claim(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        assert store.try_claim("t1", "worker-a", 30.0)
        store.release_claim("t1", "worker-b")  # must not delete a's claim
        assert store.read_claim("t1")["worker"] == "worker-a"

    def test_heartbeat_extends_lease(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        store.try_claim("t1", "worker-a", 0.2)
        time.sleep(0.15)
        assert store.heartbeat_claim("t1", "worker-a")
        time.sleep(0.1)  # 0.25s after acquire, but only 0.1s after heartbeat
        assert not store.claim_expired(store.read_claim("t1"))

    def test_heartbeat_refuses_foreign_claim(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        store.try_claim("t1", "worker-a", 30.0)
        assert not store.heartbeat_claim("t1", "worker-b")

    def test_steal_requires_expiry(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        store.try_claim("t1", "worker-a", 30.0)
        assert not store.steal_claim("t1", "worker-b", 30.0)
        assert store.read_claim("t1")["worker"] == "worker-a"

    def test_steal_expired_claim(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        store.try_claim("t1", "worker-a", 0.05)
        time.sleep(0.1)
        assert store.claim_expired(store.read_claim("t1"))
        assert store.steal_claim("t1", "worker-b", 30.0)
        claim = store.read_claim("t1")
        assert claim["worker"] == "worker-b"
        assert not store.claim_expired(claim)
        # No tombstones left behind.
        assert list(store.claims_dir.glob("*.stale.*")) == []

    def test_unreadable_claim_expires_immediately(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        store.try_claim("t1", "worker-a", 30.0)
        store.claim_path("t1").write_text("{ not json")
        claim = store.read_claim("t1")
        assert store.claim_expired(claim)
        assert store.steal_claim("t1", "worker-b", 30.0)


# ---------------------------------------------------------------------- chunks
class TestChunks:
    def _trials(self, seeds):
        return [TrialResult(seed=s, payload={"seed": s}, elapsed_seconds=0.0) for s in seeds]

    def test_chunk_round_trip(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        store.save_chunk("k1", 0, 2, seeds=(0, 1), trials=self._trials((0, 1)))
        assert store.has_chunk("k1", 0, 2)
        loaded = store.load_chunk_trials("k1", 0, 2)
        assert [t.seed for t in loaded] == [0, 1]
        assert store.load_chunk_trials("k1", 2, 4) is None

    def test_discard_chunks(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        store.save_chunk("k1", 0, 2, seeds=(0, 1), trials=self._trials((0, 1)))
        store.save_chunk("k1", 2, 4, seeds=(2, 3), trials=self._trials((2, 3)))
        store.save_chunk("k2", 0, 2, seeds=(0, 1), trials=self._trials((0, 1)))
        store.discard_chunks("k1")
        assert not store.has_chunk("k1", 0, 2)
        assert store.has_chunk("k2", 0, 2)  # other cells untouched


# ---------------------------------------------------------------------- single-worker dispatch
class TestDispatchSingleWorker:
    def test_sweep_results_match_plain_run(self, tmp_path):
        plain = Sweep(BASE, GRID, _logged_trial).run(TrialRunner(workers=1))

        store = ResultStore.create(tmp_path / "run", {})
        worker = DispatchWorker(store, lease_seconds=10.0, poll_seconds=0.05, wait_timeout=60.0)
        with use_store(store), use_dispatcher(worker):
            dispatched = Sweep(BASE, GRID, _logged_trial).run(TrialRunner(workers=1))
        assert [c.payloads() for c in dispatched] == [c.payloads() for c in plain]
        assert len(store.completed_keys()) == len(GRID)
        assert store.active_claims() == []  # all claims released

    def test_chunked_cell_is_merged(self, tmp_path):
        plain = run_trials(BIG_BASE, _logged_trial)

        store = ResultStore.create(tmp_path / "run", {})
        worker = DispatchWorker(
            store, lease_seconds=10.0, poll_seconds=0.05, chunk_seeds=3, wait_timeout=60.0
        )
        with use_store(store), use_dispatcher(worker):
            dispatched = run_trials(BIG_BASE, _logged_trial)
        assert [t.payload for t in dispatched] == [t.payload for t in plain]
        assert [t.seed for t in dispatched] == list(BIG_BASE.seeds)
        # Chunks were merged into the canonical cell artifact and cleaned up.
        assert len(store.completed_keys()) == 1
        assert not list(store.chunks_dir.glob("*.json"))
        # The big cell really was split: 4 chunk tasks were computed.
        assert len(worker.computed_tasks) == 4

    def test_resume_skips_completed_cells(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        worker = DispatchWorker(store, poll_seconds=0.05, wait_timeout=60.0)
        with use_store(store), use_dispatcher(worker):
            Sweep(BASE, GRID, _logged_trial).run(TrialRunner(workers=1))
        again = DispatchWorker(store, poll_seconds=0.05, wait_timeout=60.0)
        with use_store(store), use_dispatcher(again):
            Sweep(BASE, GRID, _logged_trial).run(TrialRunner(workers=1))
        assert again.computed_tasks == []  # everything loaded, nothing recomputed

    def test_wait_timeout_raises_when_peer_never_finishes(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        spec = _spec_for(store, BASE)
        # A live (non-expired) foreign claim on the only task.
        tasks = plan_tasks([spec], 16, 6)
        assert store.try_claim(tasks[0].task_id, "immortal-peer", 3600.0)
        worker = DispatchWorker(store, poll_seconds=0.02, wait_timeout=0.3)
        with pytest.raises(DispatchTimeout):
            worker.execute(_logged_trial, [spec], TrialRunner(workers=1))

    def test_worker_ids_are_unique(self):
        assert make_worker_id() != make_worker_id()


# ---------------------------------------------------------------------- multi-process helpers
def _drain_worker(
    run_dir: str, log_path: str, lease: float, block_path: str = "", claim_batch: int = 1
) -> None:
    """Subprocess body: join ``run_dir`` as a worker and drain the sweep."""
    os.environ["DISPATCH_TEST_LOG"] = log_path
    os.environ["REPRO_CANONICAL_TIMING"] = "1"
    if block_path:
        os.environ["DISPATCH_TEST_BLOCK"] = block_path
    store = ResultStore.open(Path(run_dir))
    worker = DispatchWorker(
        store,
        lease_seconds=lease,
        poll_seconds=0.05,
        chunk_seeds=3,
        min_trials_per_task=4,
        wait_timeout=120.0,
        claim_batch=claim_batch,
    )
    with use_store(store), use_dispatcher(worker):
        Sweep(BASE, GRID, _logged_trial).run(TrialRunner(workers=1))
        run_trials(BIG_BASE, _logged_trial)


def _sequential_reference(tmp_path: Path) -> ResultStore:
    """The uninterrupted single-process run every distributed run must match."""
    store = ResultStore.create(tmp_path / "reference", {})
    with use_store(store):
        Sweep(BASE, GRID, _logged_trial).run(TrialRunner(workers=1))
        run_trials(BIG_BASE, _logged_trial)
    return store


def _assert_stores_byte_identical(reference: ResultStore, other: ResultStore) -> None:
    assert other.completed_keys() == reference.completed_keys()
    for key in reference.completed_keys():
        assert other.cell_path(key).read_bytes() == reference.cell_path(key).read_bytes(), key


@pytest.mark.parametrize("backend_name", ["filesystem", "sqlite"])
class TestDispatchMultiProcess:
    """ISSUE 4 acceptance: concurrent workers, races, crash recovery.

    Parametrized over every dispatch backend (ISSUE 10): the manifest names
    the backend, each forked worker resolves it via ``ResultStore.open``, and
    the artifacts must come out byte-identical either way.
    """

    def test_two_workers_complete_every_cell_exactly_once(self, tmp_path, monkeypatch, backend_name):
        monkeypatch.setenv("REPRO_CANONICAL_TIMING", "1")
        monkeypatch.delenv("DISPATCH_TEST_LOG", raising=False)
        monkeypatch.delenv("DISPATCH_TEST_BLOCK", raising=False)
        reference = _sequential_reference(tmp_path)

        shared = ResultStore.create(tmp_path / "shared", {"dispatch": {"backend": backend_name}})
        log_path = tmp_path / "compute.log"
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_drain_worker, args=(str(shared.root), str(log_path), 10.0))
            for _ in range(2)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=180)
            assert proc.exitcode == 0

        _assert_stores_byte_identical(reference, shared)
        # Every (cell, seed) trial was computed exactly once across both
        # workers: the claim protocol partitioned the work without overlap.
        lines = log_path.read_text().splitlines()
        expected = {f"{BASE.name}|{rate}|{seed}" for rate in range(6) for seed in (0, 1)}
        expected |= {f"{BIG_BASE.name}|None|{seed}" for seed in range(10)}
        assert sorted(lines) == sorted(expected)
        assert len(lines) == len(set(lines)) == len(expected)
        assert shared.active_claims() == []

    def test_two_workers_with_batched_claims(self, tmp_path, monkeypatch, backend_name):
        """claim_batch > 1: windows of tiny tasks claimed per round-trip, still exactly-once."""
        monkeypatch.setenv("REPRO_CANONICAL_TIMING", "1")
        monkeypatch.delenv("DISPATCH_TEST_LOG", raising=False)
        monkeypatch.delenv("DISPATCH_TEST_BLOCK", raising=False)
        reference = _sequential_reference(tmp_path)

        shared = ResultStore.create(tmp_path / "shared", {"dispatch": {"backend": backend_name}})
        log_path = tmp_path / "compute.log"
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_drain_worker, args=(str(shared.root), str(log_path), 10.0, "", 3))
            for _ in range(2)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=180)
            assert proc.exitcode == 0

        _assert_stores_byte_identical(reference, shared)
        lines = log_path.read_text().splitlines()
        expected = {f"{BASE.name}|{rate}|{seed}" for rate in range(6) for seed in (0, 1)}
        expected |= {f"{BIG_BASE.name}|None|{seed}" for seed in range(10)}
        assert sorted(lines) == sorted(expected)
        assert len(lines) == len(set(lines)) == len(expected)
        assert shared.active_claims() == []

    def test_killed_worker_lease_expires_and_cell_is_reclaimed(self, tmp_path, monkeypatch, backend_name):
        monkeypatch.setenv("REPRO_CANONICAL_TIMING", "1")
        monkeypatch.delenv("DISPATCH_TEST_LOG", raising=False)
        monkeypatch.delenv("DISPATCH_TEST_BLOCK", raising=False)
        reference = _sequential_reference(tmp_path)

        shared = ResultStore.create(tmp_path / "shared", {"dispatch": {"backend": backend_name}})
        block_path = tmp_path / "block.sentinel"
        block_path.write_text("")
        log_path = tmp_path / "compute.log"
        ctx = multiprocessing.get_context("fork")
        victim = ctx.Process(
            target=_drain_worker,
            args=(str(shared.root), str(log_path), 2.0, str(block_path)),
        )
        victim.start()
        # Wait until the victim is computing the BIG cell's chunk that blocks
        # on seed 5 (chunk 3-6): its claim file appears and stays heartbeaten.
        big_key = shared.cell_key(_logged_trial, BIG_BASE, BIG_BASE.seeds)
        blocked_task = f"{big_key}.3-6"
        claim = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            claim = shared.read_claim(blocked_task)
            if claim is not None:
                break
            time.sleep(0.05)
        assert claim is not None, "victim never claimed the blocking chunk"
        victim_worker = claim["worker"]
        time.sleep(0.3)  # let it actually enter the blocking trial
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)
        block_path.unlink()  # a resumed computation must not block again

        # The dead worker's claim is still on disk and stops heartbeating.
        leftover = shared.read_claim(blocked_task)
        assert leftover is not None and leftover["worker"] == victim_worker

        rescuer = DispatchWorker(
            shared,
            lease_seconds=2.0,
            poll_seconds=0.05,
            chunk_seeds=3,
            min_trials_per_task=4,
            wait_timeout=120.0,
        )
        with use_store(shared), use_dispatcher(rescuer):
            Sweep(BASE, GRID, _logged_trial).run(TrialRunner(workers=1))
            run_trials(BIG_BASE, _logged_trial)

        # The rescuer (not the victim) computed the blocked chunk...
        assert blocked_task in rescuer.computed_tasks
        # ... and the assembled artifacts are byte-identical to a run that
        # was never interrupted.
        _assert_stores_byte_identical(reference, shared)
        assert shared.active_claims() == []
        assert not list(shared.chunks_dir.glob("*.json"))


class TestPeerProgressResetsWaitTimeout:
    def test_peer_completions_count_as_progress(self, tmp_path):
        """A worker watching a steadily-progressing peer must not time out.

        Simulated peer: every cell is claimed by a live foreign worker, and a
        background thread "completes" one claimed cell per interval, with the
        full run taking ~3x the watcher's wait_timeout.  The watcher sees a
        task complete within every timeout window, so it must wait it out and
        assemble the result instead of raising DispatchTimeout.
        """
        import threading

        store = ResultStore.create(tmp_path / "run", {})
        specs = [
            _spec_for(store, BASE.with_overrides(churn_rate=rate)) for rate in range(6)
        ]
        tasks = plan_tasks(specs, chunk_seeds=16, min_trials_per_task=1)
        assert len(tasks) == len(specs)
        for task in tasks:
            assert store.try_claim(task.task_id, "steady-peer", 3600.0)

        def peer_completes_cells():
            for spec in specs:
                time.sleep(0.25)
                trials = TrialRunner(workers=1).run(spec.config, _logged_trial, seeds=spec.seeds)
                store.save_cell(
                    spec.key,
                    trial=_logged_trial,
                    config=spec.config,
                    seeds=spec.seeds,
                    trials=trials,
                )

        thread = threading.Thread(target=peer_completes_cells, daemon=True)
        thread.start()
        watcher = DispatchWorker(
            store, poll_seconds=0.05, min_trials_per_task=1, wait_timeout=0.6
        )
        out = watcher.execute(_logged_trial, specs, TrialRunner(workers=1))
        thread.join(timeout=10)
        assert watcher.computed_tasks == []  # the peer did everything
        assert sorted(out) == sorted(spec.key for spec in specs)


class TestCliManifestKnobs:
    def test_dispatch_records_scheduler_knobs_and_worker_reads_them(self, tmp_path, capsys):
        """Workers must derive their task plan from the manifest, not per-CLI defaults."""
        from repro.experiments import registry

        rc = registry.main(
            [
                "dispatch",
                "E7",
                "--json-out",
                str(tmp_path),
                "--set",
                "n=64",
                "--set",
                "measure_rounds=5",
                "--set",
                "items=1",
                "--seeds",
                "0..5",
                "--chunk-seeds",
                "2",
                "--min-task-trials",
                "3",
            ]
        )
        assert rc == 0
        capsys.readouterr()
        run_dir = next(tmp_path.glob("E7-*"))
        manifest = ResultStore.open(run_dir).manifest()
        assert manifest["dispatch"] == {
            "chunk_seeds": 2,
            "min_trials_per_task": 3,
            "claim_batch": 1,
            "backend": "filesystem",
        }

        assert registry.main(["worker", str(run_dir), "--wait-timeout", "120"]) == 0
        capsys.readouterr()
        store = ResultStore.open(run_dir)
        assert store.result_path.exists()
        # chunk_seeds=2 from the manifest really drove the plan: the 6-seed
        # cells were chunked (chunks merged + cleaned up afterwards).
        assert store.completed_keys()
        assert not list(store.chunks_dir.glob("*.json"))

    def test_worker_flag_override_warns(self, tmp_path, capsys):
        from repro.experiments import registry

        rc = registry.main(
            [
                "dispatch",
                "E7",
                "--json-out",
                str(tmp_path),
                "--set",
                "n=64",
                "--set",
                "measure_rounds=5",
                "--set",
                "items=1",
                "--seeds",
                "0..1",
            ]
        )
        assert rc == 0
        run_dir = next(tmp_path.glob("E7-*"))
        assert registry.main(["worker", str(run_dir), "--chunk-seeds", "5", "--wait-timeout", "120"]) == 0
        captured = capsys.readouterr()
        assert "overrides the manifest" in captured.err

    def test_dispatch_rejects_invalid_scheduler_knobs(self, tmp_path, capsys):
        from repro.experiments import registry

        rc = registry.main(
            ["dispatch", "E7", "--json-out", str(tmp_path), "--chunk-seeds", "0"]
        )
        assert rc == 2
        assert "chunk-seeds" in capsys.readouterr().err
        assert list(tmp_path.glob("E7-*")) == []  # no poisoned run directory


class TestDrainAndExit:
    """`worker --drain-and-exit`: compute everything claimable, never poll."""

    def _specs(self, store):
        return [_spec_for(store, config) for config in GRID.expand(BASE)]

    def test_drains_queue_dry_then_completes_run_normally(self, tmp_path, monkeypatch):
        """With no peers, a drain worker is just a worker: full run, no raise."""
        monkeypatch.setenv("REPRO_CANONICAL_TIMING", "1")
        monkeypatch.delenv("DISPATCH_TEST_LOG", raising=False)
        reference = _sequential_reference(tmp_path)
        store = ResultStore.create(tmp_path / "run", {})
        worker = DispatchWorker(store, min_trials_per_task=4, drain_and_exit=True)
        with use_store(store), use_dispatcher(worker):
            Sweep(BASE, GRID, _logged_trial).run(TrialRunner(workers=1))
            run_trials(BIG_BASE, _logged_trial)
        for key in store.completed_keys():
            assert store.cell_path(key).read_bytes() == reference.cell_path(key).read_bytes()
        assert store.active_claims() == []

    def test_exits_when_only_live_peers_hold_work(self, tmp_path):
        """Everything unclaimed gets computed; the live peer's task is left alone."""
        store = ResultStore.create(tmp_path / "run", {})
        specs = self._specs(store)
        tasks = plan_tasks(specs, 16, 4)
        assert len(tasks) >= 2
        assert store.try_claim(tasks[0].task_id, "immortal-peer", 3600.0)

        worker = DispatchWorker(
            store, min_trials_per_task=4, poll_seconds=0.01, drain_and_exit=True
        )
        with pytest.raises(DispatchDrained) as exc_info:
            worker.execute(_logged_trial, specs, TrialRunner(workers=1))
        held_keys = {entry.spec.key for entry in tasks[0].entries}
        assert set(exc_info.value.missing) == held_keys
        assert worker.computed_tasks  # it did drain the rest before exiting
        for spec in specs:
            assert store.has_cell(spec.key) == (spec.key not in held_keys)
        # The peer's claim was not touched.
        claim = store.read_claim(tasks[0].task_id)
        assert claim is not None and claim["worker"] == "immortal-peer"

    def test_steals_expired_lease_of_crashed_worker_before_exiting(self, tmp_path, monkeypatch):
        """Crash/lease regression: a drain worker rescues a dead peer's task.

        The crashed worker is its on-disk signature -- a claim whose
        heartbeat stopped and whose lease has expired -- exactly what a
        SIGKILLed worker leaves behind (see
        TestDispatchMultiProcess.test_killed_worker_lease_expires_and_cell_is_reclaimed).
        """
        monkeypatch.setenv("REPRO_CANONICAL_TIMING", "1")
        monkeypatch.delenv("DISPATCH_TEST_LOG", raising=False)
        reference = _sequential_reference(tmp_path)
        store = ResultStore.create(tmp_path / "run", {})
        specs = self._specs(store)
        tasks = plan_tasks(specs, 16, 4)
        assert store.try_claim(tasks[0].task_id, "crashed-worker", 0.2)
        time.sleep(0.4)  # the lease expires; the heartbeat never comes

        worker = DispatchWorker(
            store, lease_seconds=1.0, min_trials_per_task=4, drain_and_exit=True
        )
        with use_store(store), use_dispatcher(worker):
            Sweep(BASE, GRID, _logged_trial).run(TrialRunner(workers=1))
            run_trials(BIG_BASE, _logged_trial)
        # The takeover happened and the run finished with artifacts
        # byte-identical to an uninterrupted sequential run.
        assert tasks[0].task_id in worker.computed_tasks
        for key in store.completed_keys():
            assert store.cell_path(key).read_bytes() == reference.cell_path(key).read_bytes()
        assert store.active_claims() == []

    def test_mixed_live_and_crashed_peers(self, tmp_path):
        """Steal from the dead, skip the living, report only the living's cells."""
        store = ResultStore.create(tmp_path / "run", {})
        specs = self._specs(store)
        tasks = plan_tasks(specs, 16, 4)
        assert len(tasks) >= 3
        assert store.try_claim(tasks[0].task_id, "immortal-peer", 3600.0)
        assert store.try_claim(tasks[1].task_id, "crashed-worker", 0.2)
        time.sleep(0.4)

        worker = DispatchWorker(
            store, lease_seconds=1.0, min_trials_per_task=4, poll_seconds=0.01, drain_and_exit=True
        )
        with pytest.raises(DispatchDrained) as exc_info:
            worker.execute(_logged_trial, specs, TrialRunner(workers=1))
        assert tasks[1].task_id in worker.computed_tasks
        held_keys = {entry.spec.key for entry in tasks[0].entries}
        assert set(exc_info.value.missing) == held_keys

    def test_cli_worker_drain_flag(self, tmp_path, capsys):
        """`repro-experiment worker --drain-and-exit` exits 0 with a drain report."""
        from repro.experiments import registry

        rc = registry.main(
            [
                "dispatch",
                "E7",
                "--json-out",
                str(tmp_path),
                "--set",
                "n=64",
                "--set",
                "measure_rounds=5",
                "--set",
                "items=1",
                "--seeds",
                "0..3",
                "--min-task-trials",
                "2",
            ]
        )
        assert rc == 0
        capsys.readouterr()
        run_dir = next(tmp_path.glob("E7-*"))
        store = ResultStore.open(run_dir)
        # With nothing claimed the drain worker completes the whole run; the
        # exits-early-on-live-peers path is covered by the unit tests above.
        rc = registry.main(["worker", str(run_dir), "--drain-and-exit"])
        out = capsys.readouterr().out
        assert rc == 0
        assert store.result_path.exists()
        assert "done: computed" in out


# ---------------------------------------------------------------------- timings
class TestTaskTimings:
    """Satellite 5: workers record per-task wall time; status surfaces it."""

    def test_worker_writes_one_timing_record_per_computed_task(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        worker = DispatchWorker(store, lease_seconds=10.0, poll_seconds=0.05, wait_timeout=60.0)
        with use_store(store), use_dispatcher(worker):
            Sweep(BASE, GRID, _logged_trial).run(TrialRunner(workers=1))
        timings = store.task_timings()
        assert len(timings) == len(worker.computed_tasks)
        recorded_tasks = {t["task"] for t in timings}
        assert recorded_tasks == set(worker.computed_tasks)
        for record in timings:
            assert record["worker"] == worker.worker_id
            assert record["seconds"] >= 0.0
            assert record["trials"] >= 1

    def test_timings_live_outside_the_compared_artifact_surface(self, tmp_path):
        """timings/ must not perturb result.json or cells/* byte-comparisons."""
        store = ResultStore.create(tmp_path / "run", {})
        worker = DispatchWorker(store, poll_seconds=0.05, wait_timeout=60.0)
        with use_store(store), use_dispatcher(worker):
            Sweep(BASE, GRID, _logged_trial).run(TrialRunner(workers=1))
        assert store.timings_dir.exists()
        assert store.timings_dir.parent == store.root
        assert not set(store.timings_dir.glob("*")) & set(store.cells_dir.glob("*"))

    def test_status_reports_task_timings(self, tmp_path, capsys):
        from repro.experiments import registry

        store = ResultStore.create(tmp_path / "run", {"experiment": "T-timing"})
        worker = DispatchWorker(store, poll_seconds=0.05, wait_timeout=60.0)
        with use_store(store), use_dispatcher(worker):
            Sweep(BASE, GRID, _logged_trial).run(TrialRunner(workers=1))
        registry._print_status(store)
        out = capsys.readouterr().out
        assert "task timings" in out
        assert f"{len(worker.computed_tasks)} tasks" in out
        # Each displayed line names a task with its duration and worker.
        assert "trials, worker" in out

    def test_status_omits_timing_section_when_empty(self, tmp_path, capsys):
        from repro.experiments import registry

        store = ResultStore.create(tmp_path / "run", {"experiment": "T-timing"})
        registry._print_status(store)
        assert "task timings" not in capsys.readouterr().out

    def test_corrupt_timing_records_are_skipped(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        store.write_task_timing("cell.0-2", "w1", 1.5, 2)
        store.timings_dir.joinpath("broken.json").write_text("{not json", encoding="utf-8")
        timings = store.task_timings()
        assert len(timings) == 1
        assert timings[0]["task"] == "cell.0-2"
