"""Tests for repro.core.erasure: GF(256) arithmetic and Rabin IDA round-trips."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.erasure import InformationDispersal, Piece, gf_inv, gf_matmul, gf_mul


class TestGF256:
    def test_known_products(self):
        assert int(gf_mul(2, 3)) == 6
        assert int(gf_mul(0x53, 0xCA)) == 1  # known inverse pair in the AES field
        assert int(gf_mul(0, 77)) == 0
        assert int(gf_mul(1, 77)) == 77

    def test_inverse(self):
        for a in (1, 2, 3, 0x53, 255):
            assert int(gf_mul(a, gf_inv(a))) == 1
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    @given(
        a=st.integers(0, 255).map(np.uint8),
        b=st.integers(0, 255).map(np.uint8),
        c=st.integers(0, 255).map(np.uint8),
    )
    @settings(max_examples=200, deadline=None)
    def test_field_axioms(self, a, b, c):
        # commutativity
        assert int(gf_mul(a, b)) == int(gf_mul(b, a))
        # associativity
        assert int(gf_mul(gf_mul(a, b), c)) == int(gf_mul(a, gf_mul(b, c)))
        # distributivity over XOR (the field addition)
        assert int(gf_mul(a, int(b) ^ int(c))) == int(gf_mul(a, b)) ^ int(gf_mul(a, c))

    def test_matmul_identity(self, rng):
        mat = rng.integers(0, 256, size=(4, 4)).astype(np.uint8)
        identity = np.eye(4, dtype=np.uint8)
        assert np.array_equal(gf_matmul(identity, mat), mat)
        assert np.array_equal(gf_matmul(mat, identity), mat)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))


class TestInformationDispersal:
    def test_roundtrip_all_k_subsets(self):
        ida = InformationDispersal(total_pieces=6, required_pieces=3)
        data = b"storage and search in dynamic peer-to-peer networks"
        pieces = ida.encode(data)
        assert len(pieces) == 6
        for combo in itertools.combinations(pieces, 3):
            assert ida.decode(list(combo)) == data

    def test_systematic_prefix(self):
        ida = InformationDispersal(total_pieces=5, required_pieces=2)
        data = b"abcdefgh"
        pieces = ida.encode(data)
        # First K pieces are literal chunks of the (padded) data.
        assert pieces[0].data + pieces[1].data == data.ljust(len(pieces[0].data) * 2, b"\0")

    def test_piece_sizes_and_blowup(self):
        ida = InformationDispersal(total_pieces=8, required_pieces=4)
        data = bytes(100)
        pieces = ida.encode(data)
        assert all(p.size_bytes == ida.piece_length(100) == 25 for p in pieces)
        assert ida.blowup == 2.0
        assert ida.total_stored_bytes(100) == 200
        assert InformationDispersal.replication_stored_bytes(100, 8) == 800

    def test_decode_requires_enough_distinct_pieces(self):
        ida = InformationDispersal(4, 3)
        pieces = ida.encode(b"hello world")
        with pytest.raises(ValueError):
            ida.decode(pieces[:2])
        with pytest.raises(ValueError):
            ida.decode([pieces[0], pieces[0], pieces[0]])

    def test_decode_rejects_foreign_pieces(self):
        ida_a = InformationDispersal(4, 2)
        ida_b = InformationDispersal(5, 3)
        pieces = ida_b.encode(b"hello")
        with pytest.raises(ValueError):
            ida_a.decode(pieces[:2])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            InformationDispersal(2, 3)
        with pytest.raises(ValueError):
            InformationDispersal(300, 3)
        with pytest.raises(TypeError):
            InformationDispersal(4, 2).encode("not-bytes")  # type: ignore[arg-type]

    def test_empty_and_single_byte_items(self):
        ida = InformationDispersal(5, 2)
        for data in (b"", b"x"):
            pieces = ida.encode(data)
            assert ida.decode(pieces[3:5]) == data

    @given(
        data=st.binary(min_size=0, max_size=300),
        k=st.integers(2, 6),
        extra=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data, k, extra):
        ida = InformationDispersal(total_pieces=k + extra, required_pieces=k)
        pieces = ida.encode(data)
        rng = np.random.default_rng(len(data) + k + extra)
        chosen = rng.choice(len(pieces), size=k, replace=False)
        assert ida.decode([pieces[int(i)] for i in chosen]) == data

    def test_piece_dataclass_fields(self):
        piece = Piece(index=1, data=b"xy", original_length=2, total_pieces=3, required_pieces=2)
        assert piece.size_bytes == 2
