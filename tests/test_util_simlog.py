"""Tests for repro.util.simlog."""

from __future__ import annotations

from repro.util.simlog import SimEvent, SimulationLog, get_logger


class TestSimulationLog:
    def test_record_and_read(self):
        log = SimulationLog()
        event = log.record(3, "committee", "created", committee_id=1)
        assert isinstance(event, SimEvent)
        assert event.round_index == 3
        assert event.data["committee_id"] == 1
        assert log.count() == 1

    def test_filter_by_category(self):
        log = SimulationLog()
        log.record(0, "a", "x")
        log.record(1, "b", "y")
        log.record(2, "a", "z")
        assert log.count("a") == 2
        assert [e.message for e in log.events("a")] == ["x", "z"]
        assert log.categories() == ["a", "b"]

    def test_last(self):
        log = SimulationLog()
        assert log.last() is None
        log.record(0, "a", "x")
        log.record(1, "b", "y")
        assert log.last().category == "b"
        assert log.last("a").message == "x"
        assert log.last("missing") is None

    def test_bounded_size(self):
        log = SimulationLog(maxlen=5)
        for i in range(10):
            log.record(i, "a", "m")
        assert len(log) == 5
        assert log.events()[0].round_index == 5

    def test_clear_and_iter(self):
        log = SimulationLog()
        log.record(0, "a", "x")
        assert len(list(iter(log))) == 1
        log.clear()
        assert log.count() == 0


def test_get_logger_names():
    assert get_logger().name == "repro"
    assert get_logger("net").name == "repro.net"


class TestSimEventDefensiveCopy:
    def test_caller_mutations_do_not_rewrite_recorded_history(self):
        """Frozen dataclass, mutable payload: the event must own a copy."""
        payload = {"replicas": 5}
        event = SimEvent(round_index=1, category="storage", message="stored", data=payload)
        payload["replicas"] = 0
        payload["injected"] = True
        assert event.data == {"replicas": 5}

    def test_events_with_shared_source_dict_are_independent(self):
        shared = {"state": "good"}
        first = SimEvent(round_index=1, category="c", message="m", data=shared)
        second = SimEvent(round_index=2, category="c", message="m", data=shared)
        assert first.data is not shared and first.data is not second.data
        shared["state"] = "bad"
        assert first.data["state"] == "good" and second.data["state"] == "good"

    def test_default_payload_stays_per_instance(self):
        first = SimEvent(round_index=1, category="c", message="m")
        second = SimEvent(round_index=2, category="c", message="m")
        assert first.data == {} and first.data is not second.data
