"""Tests for the experiment modules and registry (smoke-level: tiny configs)."""

from __future__ import annotations

import pytest

from repro.experiments import registry
from repro.sim.experiment import ExperimentConfig
from repro.sim.results import ExperimentResult


TINY = dict(n=64, seeds=(0,), measure_rounds=10, items=1)


class TestRegistry:
    def test_all_experiments_listed(self):
        ids = registry.all_experiments()
        assert ids[0] == "E1" and ids[-1] == "E12" and len(ids) == 12

    def test_get_experiment_case_insensitive(self):
        assert registry.get_experiment("e5") is registry.EXPERIMENTS["E5"]
        with pytest.raises(KeyError):
            registry.get_experiment("E99")

    def test_every_module_has_interface(self):
        for module in registry.EXPERIMENTS.values():
            assert hasattr(module, "EXPERIMENT_ID")
            assert hasattr(module, "TITLE") and hasattr(module, "CLAIM")
            assert callable(module.quick_config) and callable(module.full_config)
            assert callable(module.run)
            quick = module.quick_config()
            full = module.full_config()
            assert isinstance(quick, ExperimentConfig) and isinstance(full, ExperimentConfig)
            assert full.n >= quick.n

    def test_main_list(self, capsys):
        assert registry.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out and "E12:" in out

    def test_main_runs_one_experiment(self, capsys):
        assert registry.main(["E1"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "tv_distance" in out


class TestQuickRuns:
    """Run a representative subset of experiments on tiny configurations."""

    def _check(self, result: ExperimentResult):
        assert result.tables and not result.tables[0].is_empty()
        assert result.findings
        assert result.elapsed_seconds >= 0

    def test_e1_soup(self):
        from repro.experiments import exp01_soup_mixing as e1

        result = e1.run(ExperimentConfig(name="E1", **TINY))
        self._check(result)
        for row in result.tables[0].rows:
            assert 0 <= row["tv_distance"] <= 1

    def test_e2_survival_monotone(self):
        from repro.experiments import exp02_walk_survival as e2

        result = e2.run(ExperimentConfig(name="E2", **TINY))
        self._check(result)
        survivals = [row["overall_survival"] for row in result.tables[0].rows]
        assert survivals[0] >= survivals[-1]  # more churn, less survival

    def test_e5_storage(self):
        from repro.experiments import exp05_storage_availability as e5

        result = e5.run(ExperimentConfig(name="E5", **TINY))
        self._check(result)
        for row in result.tables[0].rows:
            assert 0 <= row["final_availability"] <= 1

    def test_e6_retrieval(self):
        from repro.experiments import exp06_retrieval as e6

        result = e6.run(ExperimentConfig(name="E6", **TINY), sizes=(64,))
        self._check(result)

    def test_e10_erasure_overhead_smaller(self):
        from repro.experiments import exp10_erasure as e10

        result = e10.run(ExperimentConfig(name="E10", **TINY), item_sizes=(512,))
        self._check(result)
        rows = {row["mode"]: row for row in result.tables[0].rows}
        if rows["replicate"]["availability"] > 0 and rows["erasure"]["availability"] > 0:
            assert rows["erasure"]["stored_bytes_per_item"] <= rows["replicate"]["stored_bytes_per_item"]

    def test_e7_small_n_with_colliding_sweep_rates(self):
        # At n=64 several sweep multipliers round to the same absolute churn
        # rate; E7 must reuse the cell rather than crash on a duplicate grid
        # cell, and still emit one row per multiplier.
        from repro.experiments import exp07_churn_sweep as e7

        result = e7.run(ExperimentConfig(name="E7", **TINY))
        self._check(result)
        assert len(result.tables[0].rows) == len(e7.SWEEP_MULTIPLIERS)

    def test_e12_ablation_rows(self):
        from repro.experiments import exp12_adaptive_ablation as e12

        result = e12.run(ExperimentConfig(name="E12", **TINY))
        self._check(result)
        adversaries = {row["adversary"] for row in result.tables[0].rows}
        assert any("ADAPTIVE" in a for a in adversaries)
        assert any("oblivious" in a for a in adversaries)
