"""Tests for the experiment modules, spec registry and CLI (smoke-level: tiny configs)."""

from __future__ import annotations

import json

import pytest

from repro.experiments import registry
from repro.experiments.spec import ExperimentSpec, register_experiment
from repro.sim.experiment import ExperimentConfig
from repro.sim.results import ExperimentResult


TINY = dict(n=64, seeds=(0,), measure_rounds=10, items=1)


class TestRegistry:
    def test_all_experiments_listed(self):
        ids = registry.all_experiments()
        assert ids[0] == "E1" and ids[-1] == "E14" and len(ids) == 14

    def test_get_experiment_case_insensitive(self):
        assert registry.get_experiment("e5") is registry.EXPERIMENTS["E5"]
        with pytest.raises(KeyError):
            registry.get_experiment("E99")

    def test_every_spec_is_complete(self):
        for experiment_id, spec in registry.EXPERIMENTS.items():
            assert isinstance(spec, ExperimentSpec)
            assert spec.experiment_id == experiment_id
            assert spec.title and spec.claim
            assert callable(spec.run_fn) and callable(spec.quick) and callable(spec.full)
            quick = spec.config()
            full = spec.config(full=True)
            assert isinstance(quick, ExperimentConfig) and isinstance(full, ExperimentConfig)
            assert full.n >= quick.n
            assert spec.config(workers=3).workers == 3
            # The grid, when present, must expand against the quick config.
            grid = spec.grid_for(quick)
            if grid is not None:
                assert len(grid.expand(quick)) == len(grid)

    def test_spec_attached_to_run_function(self):
        from repro.experiments import exp05_storage_availability as e5

        assert e5.run.spec is registry.EXPERIMENTS["E5"]
        assert e5.run.spec.module is e5

    def test_modules_keep_legacy_symbols(self):
        for spec in registry.EXPERIMENTS.values():
            module = spec.module
            assert module.EXPERIMENT_ID == spec.experiment_id
            assert module.TITLE == spec.title and module.CLAIM == spec.claim

    def test_duplicate_registration_from_other_module_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_experiment(
                "E1",
                title="imposter",
                claim="imposter",
                quick=lambda workers=1: ExperimentConfig(name="E1", n=64, workers=workers),
                full=lambda workers=1: ExperimentConfig(name="E1", n=64, workers=workers),
            )
            def run(config=None):  # pragma: no cover - never runs
                raise AssertionError

    def test_bad_experiment_id_rejected(self):
        with pytest.raises(ValueError, match="E<number>"):
            register_experiment(
                "X1",
                title="t",
                claim="c",
                quick=lambda workers=1: None,
                full=lambda workers=1: None,
            )

    def test_run_experiment_applies_overrides_and_seeds(self):
        result = registry.run_experiment(
            "E1", overrides={"n": 64, "measure_rounds": 0}, seeds=[0, 1]
        )
        assert isinstance(result, ExperimentResult)
        assert result.config.n == 64
        assert result.config.seeds == (0, 1)


class TestCli:
    def test_list_prints_titles_and_claims(self, capsys):
        assert registry.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out and "E14:" in out
        assert out.count("claim:") == 14

    def test_run_subcommand(self, capsys):
        assert registry.main(["run", "E1", "--set", "n=64", "--set", "measure_rounds=0"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "tv_distance" in out
        assert '"n": 64' in out  # config line renders from the JSON serialization

    def test_legacy_positional_form_still_works(self, capsys):
        assert registry.main(["E1", "--set", "n=64"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "tv_distance" in out

    def test_legacy_flag_first_forms_shimmed(self):
        assert registry._shim_legacy_argv(["--markdown", "E1"]) == ["run", "--markdown", "E1"]
        assert registry._shim_legacy_argv(["--workers", "4", "E5", "--full"]) == [
            "run", "--workers", "4", "E5", "--full",
        ]
        assert registry._shim_legacy_argv(["--markdown", "all"]) == ["all", "--markdown"]
        assert registry._shim_legacy_argv(["run", "E5"]) == ["run", "E5"]
        assert registry._shim_legacy_argv(["list"]) == ["list"]

    def test_legacy_flag_first_run_executes(self, capsys):
        assert registry.main(["--markdown", "E1", "--set", "n=64"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("## E1")

    def test_seed_spec_parsing(self):
        assert registry.parse_seed_spec("0..9") == list(range(10))
        assert registry.parse_seed_spec("0,3,5") == [0, 3, 5]
        assert registry.parse_seed_spec("7") == [7]
        with pytest.raises(ValueError):
            registry.parse_seed_spec("9..0")

    def test_set_override_parsing(self):
        overrides = registry.parse_set_overrides(
            ["n=1024", "adversary=burst", "churn_fraction=0.1", "seeds=[0, 1]"]
        )
        assert overrides == {
            "n": 1024,
            "adversary": "burst",
            "churn_fraction": 0.1,
            "seeds": (0, 1),
        }
        with pytest.raises(ValueError, match="key=value"):
            registry.parse_set_overrides(["oops"])

    def test_run_with_seeds_flag(self, capsys):
        assert registry.main(["run", "E1", "--set", "n=64", "--seeds", "0..1"]) == 0
        out = capsys.readouterr().out
        assert '"seeds": [0, 1]' in out


class TestQuickRuns:
    """Run a representative subset of experiments on tiny configurations."""

    def _check(self, result: ExperimentResult):
        assert result.tables and not result.tables[0].is_empty()
        assert result.findings
        assert result.elapsed_seconds >= 0

    def test_e1_soup(self):
        from repro.experiments import exp01_soup_mixing as e1

        result = e1.run(ExperimentConfig(name="E1", **TINY))
        self._check(result)
        for row in result.tables[0].rows:
            assert 0 <= row["tv_distance"] <= 1

    def test_e2_survival_monotone(self):
        from repro.experiments import exp02_walk_survival as e2

        result = e2.run(ExperimentConfig(name="E2", **TINY))
        self._check(result)
        survivals = [row["overall_survival"] for row in result.tables[0].rows]
        assert survivals[0] >= survivals[-1]  # more churn, less survival

    def test_e5_storage(self):
        from repro.experiments import exp05_storage_availability as e5

        result = e5.run(ExperimentConfig(name="E5", **TINY))
        self._check(result)
        for row in result.tables[0].rows:
            assert 0 <= row["final_availability"] <= 1

    def test_e6_retrieval(self):
        from repro.experiments import exp06_retrieval as e6

        result = e6.run(ExperimentConfig(name="E6", **TINY), sizes=(64,))
        self._check(result)

    def test_e10_erasure_overhead_smaller(self):
        from repro.experiments import exp10_erasure as e10

        result = e10.run(ExperimentConfig(name="E10", **TINY), item_sizes=(512,))
        self._check(result)
        rows = {row["mode"]: row for row in result.tables[0].rows}
        if rows["replicate"]["availability"] > 0 and rows["erasure"]["availability"] > 0:
            assert rows["erasure"]["stored_bytes_per_item"] <= rows["replicate"]["stored_bytes_per_item"]

    def test_e7_small_n_with_colliding_sweep_rates(self):
        # At n=64 several sweep multipliers round to the same absolute churn
        # rate; E7 must reuse the cell rather than crash on a duplicate grid
        # cell, and still emit one row per multiplier.
        from repro.experiments import exp07_churn_sweep as e7

        result = e7.run(ExperimentConfig(name="E7", **TINY))
        self._check(result)
        assert len(result.tables[0].rows) == len(e7.SWEEP_MULTIPLIERS)

    def test_e12_ablation_rows(self):
        from repro.experiments import exp12_adaptive_ablation as e12

        result = e12.run(ExperimentConfig(name="E12", **TINY))
        self._check(result)
        adversaries = {row["adversary"] for row in result.tables[0].rows}
        assert any("ADAPTIVE" in a for a in adversaries)
        assert any("oblivious" in a for a in adversaries)

    def test_quick_run_result_round_trips_through_json(self):
        from repro.experiments import exp01_soup_mixing as e1

        result = e1.run(ExperimentConfig(name="E1", n=64, seeds=(0,), measure_rounds=0))
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.to_text() == result.to_text()
        assert restored.config == result.config
        assert json.loads(result.to_json())["experiment_id"] == "E1"
