"""Tests for repro.sim.store: durable cell artifacts and resumable runs.

The byte-identical resume test is the load-bearing one: a sweep killed
mid-run and resumed through a :class:`ResultStore` must produce exactly the
payloads an uninterrupted run would have produced, and the artifacts of the
untouched (already-completed) cells must not be rewritten at all.
"""

from __future__ import annotations

import json
import os
import stat
from functools import partial

import pytest

from repro.experiments import registry
from repro.sim.experiment import ExperimentConfig, run_trials
from repro.sim.results import ExperimentResult
from repro.sim.runner import GridSpec, Sweep, TrialRunner
from repro.sim.store import ResultStore, _atomic_write_text, active_store, trial_name, use_store

#: Module-level call log so the (picklable) trial can prove which cells ran.
CALL_LOG = []


def _logging_trial(config: ExperimentConfig, seed: int) -> dict:
    CALL_LOG.append((config.churn_rate, seed))
    return {"seed": seed, "rate": config.churn_rate, "flag": seed % 2 == 0}


GRID = GridSpec.product({"churn_rate": (0, 2, 4)})
BASE = ExperimentConfig(name="T-store", n=64, seeds=(0, 1))


class TestResultStoreBasics:
    def test_create_then_open(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {"experiment": "E1"})
        assert store.manifest() == {"experiment": "E1"}
        reopened = ResultStore.open(tmp_path / "run")
        assert reopened.manifest() == {"experiment": "E1"}

    def test_create_refuses_existing_manifest(self, tmp_path):
        ResultStore.create(tmp_path / "run", {})
        with pytest.raises(FileExistsError):
            ResultStore.create(tmp_path / "run", {})

    def test_open_requires_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ResultStore.open(tmp_path / "nope")

    def test_cell_key_sensitivity(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        key = store.cell_key(_logging_trial, BASE, (0, 1))
        assert key == store.cell_key(_logging_trial, BASE, (0, 1))
        assert key != store.cell_key(_logging_trial, BASE, (0, 2))
        assert key != store.cell_key(_logging_trial, BASE.with_overrides(n=128), (0, 1))
        curried = partial(_logging_trial, walks_per_source=8)
        assert key != store.cell_key(curried, BASE, (0, 1))

    def test_trial_name_includes_partial_arguments(self):
        assert trial_name(_logging_trial).endswith("_logging_trial")
        name = trial_name(partial(_logging_trial, walks_per_source=8))
        assert "walks_per_source=8" in name

    def test_use_store_scopes_the_active_store(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        assert active_store() is None
        with use_store(store):
            assert active_store() is store
            with use_store(None):
                assert active_store() is None
        assert active_store() is None

    def test_missing_cell_loads_none(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        assert store.load_trials("deadbeef") is None
        assert store.load_cell_document("deadbeef") is None
        assert not store.has_cell("deadbeef")

    def test_workers_excluded_from_cell_identity(self, tmp_path):
        """Resuming with a different --workers must still find every completed cell."""
        store = ResultStore.create(tmp_path / "run", {})
        key4 = store.cell_key(_logging_trial, BASE.with_overrides(workers=4), (0, 1))
        key8 = store.cell_key(_logging_trial, BASE.with_overrides(workers=8), (0, 1))
        assert key4 == key8 == store.cell_key(_logging_trial, BASE, (0, 1))

    def test_truncated_cell_artifact_treated_as_missing(self, tmp_path):
        """A partial write (hard kill mid-flush) must be recomputed, not crash resume."""
        store = ResultStore.create(tmp_path / "run", {})
        sweep = Sweep(BASE, GRID, _logging_trial)
        first = sweep.run(TrialRunner(workers=1), store=store)
        victim = store.completed_keys()[0]
        truncated = store.cell_path(victim).read_text()[:40]
        store.cell_path(victim).write_text(truncated)
        assert store.load_trials(victim) is None
        second = sweep.run(TrialRunner(workers=1), store=store)
        assert [c.payloads() for c in second] == [c.payloads() for c in first]
        # The corrupt artifact was rewritten whole.
        assert store.load_trials(victim) is not None

    def test_cell_writes_leave_no_temp_files(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        Sweep(BASE, GRID, _logging_trial).run(TrialRunner(workers=1), store=store)
        assert not list(store.root.rglob("*.tmp"))
        assert len(store.completed_keys()) == len(GRID)


class TestSweepResume:
    def test_sweep_persists_one_artifact_per_cell(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        Sweep(BASE, GRID, _logging_trial).run(TrialRunner(workers=1), store=store)
        assert len(store.completed_keys()) == len(GRID)
        document = store.load_cell_document(store.completed_keys()[0])
        assert set(document) >= {"key", "trial", "config", "seeds", "trials"}

    def test_resumed_sweep_skips_completed_cells(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        sweep = Sweep(BASE, GRID, _logging_trial)
        first = sweep.run(TrialRunner(workers=1), store=store)
        # Drop one completed cell, as if the run had been killed mid-sweep.
        victim = store.cell_key(_logging_trial, BASE.with_overrides(churn_rate=2), BASE.seeds)
        store.cell_path(victim).unlink()
        CALL_LOG.clear()
        second = sweep.run(TrialRunner(workers=1), store=store)
        # Only the missing cell was recomputed...
        assert CALL_LOG == [(2, 0), (2, 1)]
        # ... and the assembled results are payload-identical to the first run.
        assert [c.payloads() for c in second] == [c.payloads() for c in first]
        assert [c.cell for c in second] == [c.cell for c in first]

    def test_killed_and_resumed_run_is_byte_identical(self, tmp_path):
        """ISSUE 2 acceptance: resumed payload artifacts == uninterrupted run's."""
        fresh_store = ResultStore.create(tmp_path / "fresh", {})
        Sweep(BASE, GRID, _logging_trial).run(TrialRunner(workers=1), store=fresh_store)

        # Simulate a run killed after the first cell: a prefix of the fresh
        # run's artifacts exists, the rest were never written.
        killed_store = ResultStore.create(tmp_path / "killed", {})
        first_key = fresh_store.cell_key(_logging_trial, BASE.with_overrides(churn_rate=0), BASE.seeds)
        killed_store.cell_path(first_key).write_bytes(fresh_store.cell_path(first_key).read_bytes())

        Sweep(BASE, GRID, _logging_trial).run(TrialRunner(workers=1), store=killed_store)

        assert killed_store.completed_keys() == fresh_store.completed_keys()
        for key in fresh_store.completed_keys():
            fresh_doc = json.loads(fresh_store.cell_path(key).read_text())
            resumed_doc = json.loads(killed_store.cell_path(key).read_text())
            fresh_payloads = json.dumps([t["payload"] for t in fresh_doc["trials"]])
            resumed_payloads = json.dumps([t["payload"] for t in resumed_doc["trials"]])
            assert fresh_payloads.encode() == resumed_payloads.encode()
        # The pre-existing artifact must not have been rewritten at all.
        assert killed_store.cell_path(first_key).read_bytes() == fresh_store.cell_path(first_key).read_bytes()

    def test_run_trials_uses_active_store(self, tmp_path):
        store = ResultStore.create(tmp_path / "run", {})
        with use_store(store):
            first = run_trials(BASE, _logging_trial)
        assert len(store.completed_keys()) == 1
        CALL_LOG.clear()
        with use_store(store):
            second = run_trials(BASE, _logging_trial)
        assert CALL_LOG == []  # loaded from disk, not recomputed
        assert [t.payload for t in second] == [t.payload for t in first]


class TestCliJsonOutAndResume:
    def _tiny_e7(self):
        return ["--set", "n=64", "--set", "measure_rounds=5", "--set", "items=1", "--seeds", "0..0"]

    def test_run_json_out_artifacts_round_trip(self, tmp_path, capsys):
        """ISSUE 2 acceptance: run E7 --json-out round-trips with equal tables."""
        assert registry.main(["run", "E7", "--json-out", str(tmp_path)] + self._tiny_e7()) == 0
        capsys.readouterr()
        run_dirs = list(tmp_path.glob("E7-*"))
        assert len(run_dirs) == 1
        store = ResultStore.open(run_dirs[0])
        assert store.manifest()["experiment"] == "E7"
        assert store.completed_keys()  # per-cell artifacts exist
        restored = ExperimentResult.from_json(store.result_path.read_text())
        rerun = registry.run_experiment(
            "E7",
            overrides={"n": 64, "measure_rounds": 5, "items": 1},
            seeds=[0],
        )
        assert [t.to_text() for t in restored.tables] == [t.to_text() for t in rerun.tables]
        assert restored.findings == rerun.findings

    def test_cli_resume_completes_interrupted_run(self, tmp_path, capsys):
        assert registry.main(["run", "E7", "--json-out", str(tmp_path)] + self._tiny_e7()) == 0
        capsys.readouterr()
        run_dir = next(tmp_path.glob("E7-*"))
        store = ResultStore.open(run_dir)
        fresh_result = store.result_path.read_text()
        keys = store.completed_keys()
        surviving = keys[0]
        surviving_bytes = store.cell_path(surviving).read_bytes()
        for key in keys[1:]:
            store.cell_path(key).unlink()
        store.result_path.unlink()

        assert registry.main(["resume", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "results written to" in out
        assert store.completed_keys() == keys
        assert store.cell_path(surviving).read_bytes() == surviving_bytes
        restored = ExperimentResult.from_json(store.result_path.read_text())
        original = ExperimentResult.from_json(fresh_result)
        assert [t.to_text() for t in restored.tables] == [t.to_text() for t in original.tables]


class TestAtomicWriteDurability:
    """ISSUE 10 satellite: the atomic-write helper must actually reach disk.

    "Never leaves a partial artifact" needs more than a rename: without an
    fsync of the temp file before ``os.replace`` a crash can persist an
    empty/truncated target, and without an fsync of the directory the rename
    itself can be lost.
    """

    def test_fsyncs_temp_file_then_directory(self, tmp_path, monkeypatch):
        real_fsync = os.fsync
        synced = []

        def recording_fsync(fd):
            synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        target = tmp_path / "artifact.json"
        _atomic_write_text(target, '{"ok": true}')
        assert target.read_text() == '{"ok": true}'
        # The data file was synced before the rename, the directory after.
        assert synced == [False, True]

    def test_overwrites_and_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "artifact.json"
        _atomic_write_text(target, "first")
        _atomic_write_text(target, "second")
        assert target.read_text() == "second"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_interrupted_write_leaves_old_content_intact(self, tmp_path, monkeypatch):
        """A crash before the rename must leave the previous artifact untouched."""
        target = tmp_path / "artifact.json"
        _atomic_write_text(target, "durable")

        def exploding_fsync(fd):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="simulated crash"):
            _atomic_write_text(target, "torn")
        assert target.read_text() == "durable"
