"""Integration tests for repro.core.protocol.P2PStorageSystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ProtocolParameters
from repro.core.protocol import P2PStorageSystem
from repro.net.churn import SequentialSweepChurn, UniformRandomChurn
from repro.util.rng import SplitRng


class TestConstruction:
    def test_defaults(self):
        system = P2PStorageSystem(n=64, seed=1)
        assert system.n == 64
        assert system.round_index == -1
        assert system.params.n == 64

    def test_explicit_params_must_match_n(self):
        params = ProtocolParameters.for_network(128)
        with pytest.raises(ValueError):
            P2PStorageSystem(n=64, params=params)

    def test_custom_adversary(self):
        split = SplitRng(9)
        adversary = SequentialSweepChurn(64, 4, split.adversary.generator)
        system = P2PStorageSystem(n=64, adversary=adversary, seed=9)
        system.run_rounds(3)
        assert system.network.total_churned == 12

    def test_param_overrides(self):
        system = P2PStorageSystem(n=64, seed=1, param_overrides={"alpha": 2.0})
        assert system.params.alpha == 2.0


class TestRoundLoop:
    def test_run_round_summary(self, warmed_system):
        summary = warmed_system.run_round()
        assert summary.round_index == warmed_system.round_index
        assert summary.walks_in_flight > 0
        assert summary.churned >= 0

    def test_run_rounds_count(self):
        system = P2PStorageSystem(n=64, seed=2)
        summaries = system.run_rounds(5)
        assert len(summaries) == 5
        assert [s.round_index for s in summaries] == list(range(5))

    def test_warm_up_produces_samples(self):
        system = P2PStorageSystem(n=64, churn_rate=1, seed=3)
        system.warm_up()
        with_samples = system.sampler.nodes_with_samples()
        assert with_samples > 32  # most nodes should be receiving samples

    def test_determinism_given_seed(self):
        def signature(seed):
            system = P2PStorageSystem(n=64, churn_rate=2, seed=seed)
            system.warm_up()
            item = system.store(b"deterministic")
            system.run_rounds(10)
            op = system.retrieve(item.item_id)
            system.run_until_finished(op)
            return (
                system.network.total_churned,
                system.soup.stats.delivered,
                system.storage.replica_count(item.item_id),
                op.status,
                op.latency,
            )

        assert signature(77) == signature(77)

    def test_different_seeds_differ(self):
        a = P2PStorageSystem(n=64, churn_rate=2, seed=1)
        b = P2PStorageSystem(n=64, churn_rate=2, seed=2)
        a.run_rounds(8)
        b.run_rounds(8)
        assert a.soup.stats.delivered != b.soup.stats.delivered or a.network.total_churned == b.network.total_churned


class TestEndToEnd:
    def test_store_then_retrieve_under_churn(self):
        system = P2PStorageSystem(n=128, churn_rate=3, seed=5)
        system.warm_up()
        item = system.store(b"end to end payload")
        system.run_rounds(2 * system.params.committee_refresh_period)
        op = system.retrieve(item.item_id)
        system.run_until_finished(op)
        assert system.availability() in (0.0, 1.0)
        if system.storage.is_available(item.item_id):
            assert op.succeeded

    def test_availability_and_findability(self, churn_free_system):
        system = churn_free_system
        assert system.availability() == 1.0  # vacuous: no items
        system.store(b"one")
        system.store(b"two")
        assert system.availability() == 1.0
        assert system.findability() == 1.0

    def test_bandwidth_summary_keys(self, warmed_system):
        warmed_system.store(b"traffic")
        warmed_system.run_rounds(3)
        summary = warmed_system.bandwidth_summary()
        for key in ("total_bits", "max_bits_per_node_round", "walk_bits_per_node_round_estimate"):
            assert key in summary

    def test_describe(self, warmed_system):
        description = warmed_system.describe()
        assert description["n"] == 64
        assert "params" in description and "adversary" in description

    def test_random_alive_node_is_alive(self, warmed_system):
        for _ in range(5):
            uid = warmed_system.random_alive_node()
            assert warmed_system.network.is_alive(uid)

    def test_run_until_finished_respects_max_rounds(self, churn_free_system):
        system = churn_free_system
        op = system.retrieve(item_id=31337)  # nonexistent
        executed = system.run_until_finished(op, max_rounds=3)
        assert executed == 3
