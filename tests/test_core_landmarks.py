"""Tests for repro.core.landmarks (Algorithm 2).

Besides the behavioural unit tests, this module carries the **reference
oracle** for the level-batched tree construction that landed with the
batched-build PR: :func:`_build_reference` is the pre-refactor per-parent
build loop, kept verbatim (per-parent ``draw_distinct_sources`` against the
live ``used`` exclusion set, per-parent liveness probes, per-child
``ctx.charge``).  ``TestBuildMatchesReferenceOracle`` drives the batched
:meth:`LandmarkSet.build` and the oracle through identically-seeded twin
systems across randomized churn / fanout / cap / refresh-period scenarios and
asserts the outputs are indistinguishable: identical ``LandmarkRecord`` sets,
identical ``LandmarkBuildReport`` fields, identical bandwidth-ledger totals
and identical RNG consumption (mirroring the PR 3 sampler-oracle pattern in
``tests/test_walks_sampler.py``).
"""

from __future__ import annotations

from typing import List, Set

import pytest

from repro.core.committee import Committee
from repro.core.landmarks import LandmarkBuildReport, LandmarkRecord, LandmarkSet
from repro.core.protocol import P2PStorageSystem


def _build_reference(landmarks: LandmarkSet, round_index: int) -> LandmarkBuildReport:
    """The pre-refactor per-parent build loop (Algorithm 2), kept as the oracle.

    Byte-for-byte the implementation `LandmarkSet.build` shipped before the
    level-batched rewrite: one `draw_distinct_sources` call per live parent
    against the shared, mutating `used` exclusion set.  Mutates `landmarks`
    exactly like a build.
    """
    ctx = landmarks.ctx
    params = ctx.params
    roster = landmarks.committee.alive_members()
    expires = round_index + params.landmark_lifetime
    used: Set[int] = set(roster)
    for uid in landmarks.active_landmarks(round_index):
        used.add(uid)

    recruited = 0
    short_draws = 0
    current_level: List[int] = list(roster)
    for member in roster:
        landmarks._records[member] = LandmarkRecord(
            uid=member,
            depth=0,
            recruited_round=round_index,
            expires_round=expires,
            recruiter=member,
        )

    depth_target = params.tree_depth
    roster_size = len(roster)
    cap = params.landmark_cap
    for depth in range(1, depth_target + 1):
        next_level: List[int] = []
        for parent in current_level:
            if not ctx.is_alive(parent):
                continue
            if len(landmarks._records) >= cap:
                break
            children = ctx.sampler.draw_distinct_sources(
                parent,
                params.landmark_fanout,
                ctx.rng.generator,
                exclude=used,
                max_age=params.landmark_refresh_period,
            )
            if len(children) < params.landmark_fanout:
                short_draws += 1
            for child in children:
                used.add(child)
                next_level.append(child)
                recruited += 1
                landmarks._records[child] = LandmarkRecord(
                    uid=child,
                    depth=depth,
                    recruited_round=round_index,
                    expires_round=expires,
                    recruiter=parent,
                )
                ctx.charge(parent, ids=3 + roster_size)
        current_level = next_level
        if not current_level:
            break

    landmarks.total_recruited += recruited
    landmarks._expire_stale(round_index)
    report = LandmarkBuildReport(
        round_index=round_index,
        requested_depth=depth_target,
        recruited=recruited,
        active_after_build=landmarks.active_count(round_index),
        roots=roster_size,
        short_draws=short_draws,
    )
    landmarks.build_reports.append(report)
    ctx.record(
        "landmarks",
        "built",
        item_id=landmarks.item_id,
        role=landmarks.role,
        recruited=recruited,
        active=report.active_after_build,
    )
    return report


@pytest.fixture
def committee_and_landmarks(churn_free_system):
    system = churn_free_system
    committee = Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="storage", item_id=1)
    landmarks = LandmarkSet(system.ctx, committee=committee, item_id=1, role="storage", created_round=system.round_index)
    return system, committee, landmarks


class TestBuild:
    def test_build_recruits_beyond_committee(self, committee_and_landmarks):
        system, committee, landmarks = committee_and_landmarks
        report = landmarks.build(system.round_index)
        assert report.recruited >= 0
        assert landmarks.active_count() >= len(committee.alive_members())
        assert report.roots == len(committee.alive_members())

    def test_landmark_records_have_depths(self, committee_and_landmarks):
        system, committee, landmarks = committee_and_landmarks
        landmarks.build(system.round_index)
        hist = landmarks.depth_histogram()
        assert 0 in hist  # committee members at depth 0
        assert max(hist) <= system.params.tree_depth

    def test_no_duplicate_landmarks(self, committee_and_landmarks):
        system, _, landmarks = committee_and_landmarks
        landmarks.build(system.round_index)
        uids = landmarks.active_landmarks()
        assert len(uids) == len(set(uids))

    def test_is_landmark_predicate(self, committee_and_landmarks):
        system, committee, landmarks = committee_and_landmarks
        landmarks.build(system.round_index)
        member = committee.alive_members()[0]
        assert landmarks.is_landmark(member)
        assert not landmarks.is_landmark(10**9)

    def test_holder_ids_are_committee_members(self, committee_and_landmarks):
        system, committee, landmarks = committee_and_landmarks
        assert landmarks.holder_ids() == committee.alive_members()

    def test_build_charges_bandwidth(self, committee_and_landmarks):
        system, _, landmarks = committee_and_landmarks
        before = system.ledger.total_messages
        landmarks.build(system.round_index)
        after = system.ledger.total_messages
        if landmarks.build_reports[-1].recruited > 0:
            assert after > before

    def test_cap_respected(self, committee_and_landmarks):
        system, _, landmarks = committee_and_landmarks
        landmarks.build(system.round_index)
        assert landmarks.active_count() <= system.params.landmark_cap


class TestExpiryAndRefresh:
    def test_landmarks_expire_after_lifetime(self, committee_and_landmarks):
        system, _, landmarks = committee_and_landmarks
        landmarks.build(system.round_index)
        count = landmarks.active_count()
        future = system.round_index + system.params.landmark_lifetime + 1
        assert landmarks.active_count(round_index=future) == 0
        assert count >= 0

    def test_step_only_fires_on_schedule(self, committee_and_landmarks):
        system, _, landmarks = committee_and_landmarks
        fired = 0
        for _ in range(2 * system.params.landmark_refresh_period + 1):
            system.run_round()
            if landmarks.step(system.round_index) is not None:
                fired += 1
        assert fired >= 2

    def test_step_skips_dissolved_committee(self, committee_and_landmarks):
        system, committee, landmarks = committee_and_landmarks
        committee.dissolve(system.round_index)
        assert landmarks.step(system.round_index) is None

    def test_rebuild_refreshes_expiry(self, committee_and_landmarks):
        system, _, landmarks = committee_and_landmarks
        landmarks.build(system.round_index)
        first_records = {r.uid: r.expires_round for r in landmarks.records()}
        system.run_rounds(system.params.landmark_refresh_period)
        landmarks.build(system.round_index)
        second_records = {r.uid: r.expires_round for r in landmarks.records()}
        overlapping = set(first_records) & set(second_records)
        assert all(second_records[u] >= first_records[u] for u in overlapping)


def _make_system(n: int, churn_rate: int, seed: int, rounds: int, overrides=None) -> P2PStorageSystem:
    system = P2PStorageSystem(n=n, churn_rate=churn_rate, seed=seed, param_overrides=overrides)
    system.warm_up()
    if rounds:
        system.run_rounds(rounds)
    return system


def _attach_landmarks(system: P2PStorageSystem, item_id: int = 77) -> LandmarkSet:
    committee = Committee.create(
        system.ctx, creator_uid=system.random_alive_node(), task="storage", item_id=item_id
    )
    return LandmarkSet(
        system.ctx,
        committee=committee,
        item_id=item_id,
        role="storage",
        created_round=system.ctx.round_index,
    )


def _assert_identical_outcome(
    batched: LandmarkSet, oracle: LandmarkSet, new_report, ref_report
) -> None:
    """Records (values AND insertion order), report, ledger and RNG all match."""
    assert new_report == ref_report
    assert batched.records() == oracle.records()
    assert batched.total_recruited == oracle.total_recruited
    assert batched.depth_histogram() == oracle.depth_histogram()
    new_sys, ref_sys = batched.ctx, oracle.ctx
    assert new_sys.network.ledger.total_messages == ref_sys.network.ledger.total_messages
    assert new_sys.network.ledger.total_bits == ref_sys.network.ledger.total_bits
    # Both paths consumed the protocol RNG identically.
    assert new_sys.rng.generator.random() == ref_sys.rng.generator.random()


class TestBuildMatchesReferenceOracle:
    """The level-batched build is byte-identical to the per-parent loop."""

    SCENARIOS = [
        # (n, churn_rate, seed, rounds, param_overrides)
        (64, 0, 11, 0, None),                                 # churn-free baseline
        (64, 2, 3, 5, None),                                  # light churn
        (96, 8, 17, 9, None),                                 # heavy churn, dead landmarks
        (64, 1, 7, 4, {"landmark_fanout": 3}),                # wide fanout
        (64, 2, 23, 6, {"landmark_multiplier": 8.0, "delta": 0.05}),  # cap binds mid-level
        (64, 1, 29, 2, {"alpha": 0.1, "landmark_fanout": 4}),  # starved windows -> short draws
        (128, 4, 41, 7, {"landmark_refresh_multiplier": 1.5}),  # wider max_age window
    ]

    @pytest.mark.parametrize("n,churn_rate,seed,rounds,overrides", SCENARIOS)
    def test_single_build_matches(self, n, churn_rate, seed, rounds, overrides):
        sys_new = _make_system(n, churn_rate, seed, rounds, overrides)
        sys_ref = _make_system(n, churn_rate, seed, rounds, overrides)
        lm_new = _attach_landmarks(sys_new)
        lm_ref = _attach_landmarks(sys_ref)
        assert lm_new.committee.members == lm_ref.committee.members

        new_report = lm_new.build(sys_new.ctx.round_index)
        ref_report = _build_reference(lm_ref, sys_ref.ctx.round_index)
        _assert_identical_outcome(lm_new, lm_ref, new_report, ref_report)
        if overrides and overrides.get("landmark_multiplier") == 8.0:
            # The cap-binding scenario must actually bind the cap.
            assert len(lm_new.records()) >= sys_new.params.landmark_cap

    @pytest.mark.parametrize(
        "n,churn_rate,seed,rounds,overrides",
        [
            (64, 2, 3, 5, None),
            (96, 8, 17, 9, None),
            (64, 1, 29, 2, {"alpha": 0.1, "landmark_fanout": 4}),
        ],
    )
    def test_repeated_builds_across_refresh_periods_match(
        self, n, churn_rate, seed, rounds, overrides
    ):
        """Rebuilds exercise the active-landmark exclusion and expiry paths."""
        sys_new = _make_system(n, churn_rate, seed, rounds, overrides)
        sys_ref = _make_system(n, churn_rate, seed, rounds, overrides)
        lm_new = _attach_landmarks(sys_new)
        lm_ref = _attach_landmarks(sys_ref)

        for _ in range(3):
            new_report = lm_new.build(sys_new.ctx.round_index)
            ref_report = _build_reference(lm_ref, sys_ref.ctx.round_index)
            _assert_identical_outcome(lm_new, lm_ref, new_report, ref_report)
            sys_new.run_rounds(sys_new.params.landmark_refresh_period)
            sys_ref.run_rounds(sys_ref.params.landmark_refresh_period)

    def test_some_scenario_exercises_short_draws(self):
        """The starved-window scenario actually produces short draws."""
        system = _make_system(64, 1, 29, 2, {"alpha": 0.1, "landmark_fanout": 4})
        landmarks = _attach_landmarks(system)
        report = landmarks.build(system.ctx.round_index)
        assert report.short_draws > 0


class TestScaling:
    def test_landmark_count_grows_with_n(self):
        from repro.core.protocol import P2PStorageSystem

        counts = {}
        for n in (64, 256):
            system = P2PStorageSystem(n=n, churn_rate=0, seed=5)
            system.warm_up()
            committee = Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="storage", item_id=1)
            landmarks = LandmarkSet(system.ctx, committee, item_id=1, role="storage", created_round=system.round_index)
            landmarks.build(system.round_index)
            counts[n] = landmarks.active_count()
        assert counts[256] > counts[64]
