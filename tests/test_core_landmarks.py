"""Tests for repro.core.landmarks (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core.committee import Committee
from repro.core.landmarks import LandmarkSet


@pytest.fixture
def committee_and_landmarks(churn_free_system):
    system = churn_free_system
    committee = Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="storage", item_id=1)
    landmarks = LandmarkSet(system.ctx, committee=committee, item_id=1, role="storage", created_round=system.round_index)
    return system, committee, landmarks


class TestBuild:
    def test_build_recruits_beyond_committee(self, committee_and_landmarks):
        system, committee, landmarks = committee_and_landmarks
        report = landmarks.build(system.round_index)
        assert report.recruited >= 0
        assert landmarks.active_count() >= len(committee.alive_members())
        assert report.roots == len(committee.alive_members())

    def test_landmark_records_have_depths(self, committee_and_landmarks):
        system, committee, landmarks = committee_and_landmarks
        landmarks.build(system.round_index)
        hist = landmarks.depth_histogram()
        assert 0 in hist  # committee members at depth 0
        assert max(hist) <= system.params.tree_depth

    def test_no_duplicate_landmarks(self, committee_and_landmarks):
        system, _, landmarks = committee_and_landmarks
        landmarks.build(system.round_index)
        uids = landmarks.active_landmarks()
        assert len(uids) == len(set(uids))

    def test_is_landmark_predicate(self, committee_and_landmarks):
        system, committee, landmarks = committee_and_landmarks
        landmarks.build(system.round_index)
        member = committee.alive_members()[0]
        assert landmarks.is_landmark(member)
        assert not landmarks.is_landmark(10**9)

    def test_holder_ids_are_committee_members(self, committee_and_landmarks):
        system, committee, landmarks = committee_and_landmarks
        assert landmarks.holder_ids() == committee.alive_members()

    def test_build_charges_bandwidth(self, committee_and_landmarks):
        system, _, landmarks = committee_and_landmarks
        before = system.ledger.total_messages
        landmarks.build(system.round_index)
        after = system.ledger.total_messages
        if landmarks.build_reports[-1].recruited > 0:
            assert after > before

    def test_cap_respected(self, committee_and_landmarks):
        system, _, landmarks = committee_and_landmarks
        landmarks.build(system.round_index)
        assert landmarks.active_count() <= system.params.landmark_cap


class TestExpiryAndRefresh:
    def test_landmarks_expire_after_lifetime(self, committee_and_landmarks):
        system, _, landmarks = committee_and_landmarks
        landmarks.build(system.round_index)
        count = landmarks.active_count()
        future = system.round_index + system.params.landmark_lifetime + 1
        assert landmarks.active_count(round_index=future) == 0
        assert count >= 0

    def test_step_only_fires_on_schedule(self, committee_and_landmarks):
        system, _, landmarks = committee_and_landmarks
        fired = 0
        for _ in range(2 * system.params.landmark_refresh_period + 1):
            system.run_round()
            if landmarks.step(system.round_index) is not None:
                fired += 1
        assert fired >= 2

    def test_step_skips_dissolved_committee(self, committee_and_landmarks):
        system, committee, landmarks = committee_and_landmarks
        committee.dissolve(system.round_index)
        assert landmarks.step(system.round_index) is None

    def test_rebuild_refreshes_expiry(self, committee_and_landmarks):
        system, _, landmarks = committee_and_landmarks
        landmarks.build(system.round_index)
        first_records = {r.uid: r.expires_round for r in landmarks.records()}
        system.run_rounds(system.params.landmark_refresh_period)
        landmarks.build(system.round_index)
        second_records = {r.uid: r.expires_round for r in landmarks.records()}
        overlapping = set(first_records) & set(second_records)
        assert all(second_records[u] >= first_records[u] for u in overlapping)


class TestScaling:
    def test_landmark_count_grows_with_n(self):
        from repro.core.protocol import P2PStorageSystem

        counts = {}
        for n in (64, 256):
            system = P2PStorageSystem(n=n, churn_rate=0, seed=5)
            system.warm_up()
            committee = Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="storage", item_id=1)
            landmarks = LandmarkSet(system.ctx, committee, item_id=1, role="storage", created_round=system.round_index)
            landmarks.build(system.round_index)
            counts[n] = landmarks.active_count()
        assert counts[256] > counts[64]
