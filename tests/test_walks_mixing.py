"""Tests for repro.walks.mixing: survival reports, TV distance, core estimate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.walks.mixing import (
    core_estimate,
    destination_distribution,
    hit_probability_bounds,
    origin_distribution,
    survival_by_source,
    tally_deliveries,
    total_variation_from_uniform,
)
from repro.walks.soup import SampleDelivery


def make_delivery(dests, sources, round_index=5):
    return SampleDelivery(
        round_index=round_index,
        destination_uids=np.asarray(dests, dtype=np.int64),
        source_uids=np.asarray(sources, dtype=np.int64),
        birth_rounds=np.zeros(len(dests), dtype=np.int32),
    )


class TestTally:
    def test_concatenates(self):
        a = make_delivery([1], [2], round_index=1)
        b = make_delivery([3, 4], [5, 6], round_index=2)
        merged = tally_deliveries([a, b])
        assert merged.count == 3
        assert merged.round_index == 2

    def test_empty(self):
        merged = tally_deliveries([])
        assert merged.count == 0 and merged.round_index == -1


class TestSurvival:
    def test_per_source_fractions(self):
        injected = np.array([1, 1, 2, 2, 3, 3])
        delivery = make_delivery([10, 11, 12], [1, 1, 2])
        report = survival_by_source(injected, delivery)
        assert report.survival_of(1) == 1.0
        assert report.survival_of(2) == 0.5
        assert report.survival_of(3) == 0.0
        assert report.survival_of(99) == 0.0
        assert report.overall_survival == pytest.approx(0.5)

    def test_thresholds(self):
        injected = np.array([1, 1, 2, 2])
        delivery = make_delivery([5, 6, 7], [1, 1, 2])
        report = survival_by_source(injected, delivery)
        assert set(report.sources_above(0.75)) == {1}
        assert report.fraction_above(0.4) == 1.0

    def test_empty_report(self):
        report = survival_by_source(np.empty(0), make_delivery([], []))
        assert report.overall_survival == 0.0
        assert report.fraction_above(0.5) == 0.0


class TestDistributions:
    def test_destination_counts(self):
        delivery = make_delivery([1, 1, 2], [7, 8, 9])
        assert destination_distribution(delivery) == {1: 2, 2: 1}

    def test_origin_counts_with_filter(self):
        delivery = make_delivery([1, 1, 2], [7, 8, 7])
        assert origin_distribution(delivery) == {7: 2, 8: 1}
        assert origin_distribution(delivery, destination=1) == {7: 1, 8: 1}


class TestTotalVariation:
    def test_uniform_counts_have_zero_tv(self):
        population = list(range(10))
        counts = {u: 5 for u in population}
        report = total_variation_from_uniform(counts, population)
        assert report.tv_distance == pytest.approx(0.0)
        assert report.max_over_uniform == pytest.approx(1.0)
        assert report.coverage == 1.0

    def test_concentrated_counts_have_high_tv(self):
        population = list(range(10))
        report = total_variation_from_uniform({0: 100}, population)
        assert report.tv_distance == pytest.approx(0.9)
        assert report.max_over_uniform == pytest.approx(10.0)
        assert report.support_size == 1

    def test_counts_outside_population_penalised(self):
        report = total_variation_from_uniform({99: 10}, list(range(10)))
        assert report.tv_distance == pytest.approx(1.0)

    def test_empty_counts(self):
        report = total_variation_from_uniform({}, list(range(5)))
        assert report.tv_distance == 1.0
        assert report.sample_count == 0

    def test_array_counts_must_align(self):
        with pytest.raises(ValueError):
            total_variation_from_uniform(np.array([1, 2]), list(range(5)))

    def test_array_counts(self):
        report = total_variation_from_uniform(np.array([1, 1, 1, 1]), list(range(4)))
        assert report.tv_distance == pytest.approx(0.0)


class TestCoreEstimate:
    def test_intersection_of_good_sources_and_destinations(self):
        injected = np.array([1, 1, 2, 2, 3, 3])
        delivery = make_delivery([1, 2, 2], [1, 1, 2])
        survival = survival_by_source(injected, delivery)
        dest_counts = destination_distribution(delivery)
        core = core_estimate(survival, dest_counts, survival_threshold=0.5, min_received=1)
        assert core == [1, 2]


def test_hit_probability_bounds():
    low, high = hit_probability_bounds(1000)
    assert low == pytest.approx(1 / 17_000)
    assert high == pytest.approx(1.5 / 1000)
    assert low < high
