"""Tests for repro.sim: experiment configs, system builder, metrics, results."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.tables import ResultTable
from repro.net.churn import AdaptiveAdversary, NoChurn, UniformRandomChurn, paper_churn_limit
from repro.sim.experiment import (
    ExperimentConfig,
    TrialResult,
    _cached_params,
    build_adversary,
    build_system,
    default_warmup,
    resolve_churn_rate,
    resolved_params,
    run_trials,
)
from repro.sim.metrics import MetricsCollector
from repro.sim.results import ExperimentResult, timed_experiment
from repro.util.rng import SplitRng


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig(name="T", n=64)
        assert config.resolved_churn_rate() >= 1

    def test_churn_rate_override(self):
        config = ExperimentConfig(name="T", n=64, churn_rate=7)
        assert resolve_churn_rate(config) == 7

    def test_churn_fraction_of_limit(self):
        config = ExperimentConfig(name="T", n=256, churn_fraction=0.5)
        assert resolve_churn_rate(config) == int(round(0.5 * paper_churn_limit(256, config.delta)))

    def test_none_adversary_means_zero(self):
        config = ExperimentConfig(name="T", n=64, adversary="none")
        assert resolve_churn_rate(config) == 0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(name="T", n=63)
        with pytest.raises(ValueError):
            ExperimentConfig(name="T", n=64, adversary="weird")
        with pytest.raises(ValueError):
            ExperimentConfig(name="T", n=64, storage_mode="weird")
        with pytest.raises(ValueError):
            ExperimentConfig(name="T", n=64, churn_fraction=-1)

    def test_with_overrides(self):
        config = ExperimentConfig(name="T", n=64)
        assert config.with_overrides(n=128).n == 128

    def test_default_warmup_positive(self):
        assert default_warmup(ExperimentConfig(name="T", n=64)) > 2
        assert default_warmup(ExperimentConfig(name="T", n=64, warmup_rounds=5)) == 5

    def test_default_warmup_caches_resolved_params(self):
        _cached_params.cache_clear()
        config = ExperimentConfig(name="T", n=64, param_overrides={"degree": 6})
        first = default_warmup(config)
        hits_before = _cached_params.cache_info().hits
        # A second call with an equal (but distinct) config reuses the cache.
        second = default_warmup(ExperimentConfig(name="T2", n=64, param_overrides={"degree": 6}))
        assert first == second
        assert _cached_params.cache_info().hits == hits_before + 1
        assert resolved_params(config) is resolved_params(config)

    def test_config_json_round_trip(self):
        config = ExperimentConfig(
            name="T",
            n=128,
            seeds=(0, 5),
            adversary="burst",
            churn_rate=3,
            param_overrides={"degree": 6},
        )
        assert ExperimentConfig.from_json(config.to_json()) == config
        data = config.to_json_dict()
        assert data["seeds"] == [0, 5] and data["param_overrides"] == {"degree": 6}

    def test_config_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            ExperimentConfig.from_json_dict({"name": "T", "n": 64, "bogus": 1})

    def test_summary_dict_lists_only_non_defaults(self):
        summary = ExperimentConfig(name="T", n=128, adversary="burst").summary_dict()
        assert summary == {"name": "T", "n": 128, "adversary": "burst"}


class TestTrialResultSerialization:
    def test_round_trip(self):
        trial = TrialResult(seed=3, payload={"x": 1.5, "flags": [True, False]}, elapsed_seconds=0.25)
        assert TrialResult.from_json(trial.to_json()) == trial

    def test_numpy_payload_normalised(self):
        trial = TrialResult(
            seed=0,
            payload={"f": np.float64(0.5), "i": np.int64(7), "b": np.bool_(True), "a": np.arange(3)},
            elapsed_seconds=0.0,
        )
        data = json.loads(trial.to_json())
        assert data["payload"] == {"f": 0.5, "i": 7, "b": True, "a": [0, 1, 2]}

    def test_unserialisable_payload_rejected(self):
        trial = TrialResult(seed=0, payload={"obj": object()}, elapsed_seconds=0.0)
        with pytest.raises(TypeError, match="cannot serialise"):
            trial.to_json()


class TestBuilders:
    def test_build_adversary_kinds(self):
        split = SplitRng(1)
        for kind, cls in (
            ("none", NoChurn),
            ("uniform", UniformRandomChurn),
            ("adaptive", AdaptiveAdversary),
        ):
            config = ExperimentConfig(name="T", n=64, adversary=kind, churn_rate=2)
            assert isinstance(build_adversary(config, SplitRng(1)), cls if kind != "none" else NoChurn)

    def test_build_system_matches_config(self):
        config = ExperimentConfig(name="T", n=64, churn_rate=2, storage_mode="erasure")
        system = build_system(config, seed=5)
        assert system.n == 64
        assert system.storage.mode == "erasure"
        system.run_rounds(3)
        assert system.network.total_churned == 6

    def test_adaptive_system_has_probe(self):
        config = ExperimentConfig(name="T", n=64, adversary="adaptive", churn_rate=2)
        system = build_system(config, seed=5)
        system.warm_up()
        system.store(b"target")
        system.run_rounds(3)  # probe must not crash and must target real slots
        assert system.network.total_churned == (system.round_index + 1) * 2

    def test_run_trials_collects_all_seeds(self):
        config = ExperimentConfig(name="T", n=64, seeds=(1, 2, 3))
        results = run_trials(config, lambda c, s: {"seed_echo": s})
        assert [r.seed for r in results] == [1, 2, 3]
        assert all(r.elapsed_seconds >= 0 for r in results)


class TestMetricsCollector:
    def test_observe_and_summaries(self):
        config = ExperimentConfig(name="T", n=64, churn_rate=1)
        system = build_system(config, seed=2)
        system.warm_up()
        system.store(b"metrics")
        collector = MetricsCollector(system)
        metrics = collector.run_and_observe(5)
        assert len(metrics) == 5 and collector.rounds_observed() == 5
        final = collector.final()
        assert final is not None and 0 <= final.availability <= 1
        assert collector.min_availability() <= 1.0
        assert collector.committee_goodness_fraction() >= 0.0
        assert collector.mean_landmark_count() >= 0.0
        assert len(collector.availability_series()) == 5


class TestExperimentResult:
    def test_rendering(self):
        result = ExperimentResult(experiment_id="E0", title="demo", claim="claims")
        table = ResultTable(title="t", columns=["x"])
        table.add_row(x=1)
        result.add_table(table)
        result.add_finding("it works")
        text = result.to_text()
        md = result.to_markdown()
        assert "E0" in text and "it works" in text
        assert md.startswith("## E0") and "**Paper claim.**" in md

    def test_config_line_renders_from_serialization(self):
        config = ExperimentConfig(name="E0", n=128, adversary="burst")
        result = ExperimentResult(
            experiment_id="E0", title="demo", claim="c", config=config, config_summary={"extra": 7}
        )
        text = result.to_text()
        assert 'config: {"name": "E0", "n": 128, "adversary": "burst"}' in text
        assert 'derived: {"extra": 7}' in text

    def test_json_round_trip_preserves_rendering(self):
        config = ExperimentConfig(name="E0", n=64, seeds=(0, 1))
        result = ExperimentResult(
            experiment_id="E0", title="demo", claim="c", config=config, config_summary={"k": 1}
        )
        table = ResultTable(title="t", columns=["x", "y"])
        table.add_row(x=1, y=0.5)
        table.add_note("a note")
        result.add_table(table)
        result.add_finding("finding")
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.to_text() == result.to_text()
        assert restored.to_markdown() == result.to_markdown()
        assert restored.config == config

    def test_timed_experiment(self):
        result = ExperimentResult(experiment_id="E0", title="demo", claim="c")
        with timed_experiment(result):
            sum(range(1000))
        assert result.elapsed_seconds >= 0


class TestMetricsCollectorEdgeCases:
    """Denominator-at-zero and degenerate-round behavior of the collector."""

    def test_zero_stored_items_report_unit_availability(self):
        config = ExperimentConfig(name="T", n=64, churn_rate=1)
        system = build_system(config, seed=3)
        system.warm_up()
        collector = MetricsCollector(system)
        metrics = collector.run_and_observe(3)
        for m in metrics:
            # Vacuously available/findable: no item has been lost because
            # no item exists -- the 0/0 convention must be 1.0, not a crash.
            assert m.availability == 1.0 and m.findability == 1.0
            assert m.mean_replicas == 0.0 and m.mean_landmarks == 0.0
            assert m.committees_total == 0 and m.committees_good == 0
        assert collector.min_availability() == 1.0
        assert collector.committee_goodness_fraction() == 1.0
        assert collector.mean_landmark_count() == 0.0

    def test_empty_history_summaries_do_not_divide_by_zero(self):
        config = ExperimentConfig(name="T", n=64)
        collector = MetricsCollector(build_system(config, seed=1))
        assert collector.final() is None
        assert collector.rounds_observed() == 0
        assert collector.availability_series() == []
        assert collector.min_availability() == 1.0
        assert collector.committee_goodness_fraction() == 1.0
        assert collector.mean_landmark_count() == 0.0

    def test_heavy_churn_rounds_keep_every_metric_bounded(self):
        # A quarter of the network replaced per round: committees dissolve,
        # replicas vanish mid-refresh, yet every ratio stays within [0, 1].
        config = ExperimentConfig(name="T", n=64, churn_rate=16)
        system = build_system(config, seed=7)
        system.warm_up()
        system.store(b"churn-survivor")
        collector = MetricsCollector(system)
        for m in collector.run_and_observe(6):
            assert m.churned >= 0
            assert 0.0 <= m.availability <= 1.0
            assert 0.0 <= m.findability <= 1.0
            assert 0.0 <= m.retrieval_success_rate <= 1.0
            assert m.committees_good <= m.committees_total
        assert 0.0 <= collector.committee_goodness_fraction() <= 1.0
        assert 0.0 <= collector.min_availability() <= 1.0

    def test_erasure_mode_observes_fragment_counts(self):
        config = ExperimentConfig(name="T", n=64, churn_rate=2, storage_mode="erasure")
        system = build_system(config, seed=9)
        system.warm_up()
        system.store(b"erasure-coded-item-payload!")
        collector = MetricsCollector(system)
        collector.run_and_observe(5)
        final = collector.final()
        assert final is not None
        assert 0.0 <= final.availability <= 1.0
        assert final.mean_replicas >= 0.0
        assert final.committees_total == 1
        assert len(collector.availability_series()) == 5
