"""Tests for repro.sim: experiment configs, system builder, metrics, results."""

from __future__ import annotations

import pytest

from repro.analysis.tables import ResultTable
from repro.net.churn import AdaptiveAdversary, NoChurn, UniformRandomChurn, paper_churn_limit
from repro.sim.experiment import (
    ExperimentConfig,
    build_adversary,
    build_system,
    default_warmup,
    resolve_churn_rate,
    run_trials,
)
from repro.sim.metrics import MetricsCollector
from repro.sim.results import ExperimentResult, timed_experiment
from repro.util.rng import SplitRng


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig(name="T", n=64)
        assert config.resolved_churn_rate() >= 1

    def test_churn_rate_override(self):
        config = ExperimentConfig(name="T", n=64, churn_rate=7)
        assert resolve_churn_rate(config) == 7

    def test_churn_fraction_of_limit(self):
        config = ExperimentConfig(name="T", n=256, churn_fraction=0.5)
        assert resolve_churn_rate(config) == int(round(0.5 * paper_churn_limit(256, config.delta)))

    def test_none_adversary_means_zero(self):
        config = ExperimentConfig(name="T", n=64, adversary="none")
        assert resolve_churn_rate(config) == 0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(name="T", n=63)
        with pytest.raises(ValueError):
            ExperimentConfig(name="T", n=64, adversary="weird")
        with pytest.raises(ValueError):
            ExperimentConfig(name="T", n=64, storage_mode="weird")
        with pytest.raises(ValueError):
            ExperimentConfig(name="T", n=64, churn_fraction=-1)

    def test_with_overrides(self):
        config = ExperimentConfig(name="T", n=64)
        assert config.with_overrides(n=128).n == 128

    def test_default_warmup_positive(self):
        assert default_warmup(ExperimentConfig(name="T", n=64)) > 2
        assert default_warmup(ExperimentConfig(name="T", n=64, warmup_rounds=5)) == 5


class TestBuilders:
    def test_build_adversary_kinds(self):
        split = SplitRng(1)
        for kind, cls in (
            ("none", NoChurn),
            ("uniform", UniformRandomChurn),
            ("adaptive", AdaptiveAdversary),
        ):
            config = ExperimentConfig(name="T", n=64, adversary=kind, churn_rate=2)
            assert isinstance(build_adversary(config, SplitRng(1)), cls if kind != "none" else NoChurn)

    def test_build_system_matches_config(self):
        config = ExperimentConfig(name="T", n=64, churn_rate=2, storage_mode="erasure")
        system = build_system(config, seed=5)
        assert system.n == 64
        assert system.storage.mode == "erasure"
        system.run_rounds(3)
        assert system.network.total_churned == 6

    def test_adaptive_system_has_probe(self):
        config = ExperimentConfig(name="T", n=64, adversary="adaptive", churn_rate=2)
        system = build_system(config, seed=5)
        system.warm_up()
        system.store(b"target")
        system.run_rounds(3)  # probe must not crash and must target real slots
        assert system.network.total_churned == (system.round_index + 1) * 2

    def test_run_trials_collects_all_seeds(self):
        config = ExperimentConfig(name="T", n=64, seeds=(1, 2, 3))
        results = run_trials(config, lambda c, s: {"seed_echo": s})
        assert [r.seed for r in results] == [1, 2, 3]
        assert all(r.elapsed_seconds >= 0 for r in results)


class TestMetricsCollector:
    def test_observe_and_summaries(self):
        config = ExperimentConfig(name="T", n=64, churn_rate=1)
        system = build_system(config, seed=2)
        system.warm_up()
        system.store(b"metrics")
        collector = MetricsCollector(system)
        metrics = collector.run_and_observe(5)
        assert len(metrics) == 5 and collector.rounds_observed() == 5
        final = collector.final()
        assert final is not None and 0 <= final.availability <= 1
        assert collector.min_availability() <= 1.0
        assert collector.committee_goodness_fraction() >= 0.0
        assert collector.mean_landmark_count() >= 0.0
        assert len(collector.availability_series()) == 5


class TestExperimentResult:
    def test_rendering(self):
        result = ExperimentResult(experiment_id="E0", title="demo", claim="claims")
        table = ResultTable(title="t", columns=["x"])
        table.add_row(x=1)
        result.add_table(table)
        result.add_finding("it works")
        text = result.to_text()
        md = result.to_markdown()
        assert "E0" in text and "it works" in text
        assert md.startswith("## E0") and "**Paper claim.**" in md

    def test_timed_experiment(self):
        result = ExperimentResult(experiment_id="E0", title="demo", claim="c")
        with timed_experiment(result):
            sum(range(1000))
        assert result.elapsed_seconds >= 0
