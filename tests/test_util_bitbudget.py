"""Tests for repro.util.bitbudget."""

from __future__ import annotations

import math

import pytest

from repro.util.bitbudget import HEADER_BITS, BitBudgetLedger, MessageCost


class TestMessageCost:
    def test_bits_include_header_ids_payload(self):
        cost = MessageCost(ids=3, payload_bytes=10, id_bits=40)
        assert cost.bits == HEADER_BITS + 3 * 40 + 80

    def test_zero_message_still_costs_header(self):
        assert MessageCost().bits == HEADER_BITS


class TestBitBudgetLedger:
    def test_charge_accumulates(self):
        ledger = BitBudgetLedger(n=1024)
        bits = ledger.charge(0, sender=5, ids=2)
        assert bits > 0
        assert ledger.total_bits == bits
        assert ledger.total_messages == 1
        assert ledger.per_node_bits(0) == {5: bits}

    def test_charge_many_matches_individual(self):
        a = BitBudgetLedger(n=256)
        b = BitBudgetLedger(n=256)
        for _ in range(5):
            a.charge(1, sender=3, ids=2, payload_bytes=4)
        b.charge_many(1, sender=3, count=5, ids_each=2, payload_bytes_each=4)
        assert a.total_bits == b.total_bits
        assert a.total_messages == b.total_messages

    def test_disabled_ledger_is_noop(self):
        ledger = BitBudgetLedger(n=64, enabled=False)
        assert ledger.charge(0, 1, ids=5) == 0
        assert ledger.total_bits == 0

    def test_max_and_mean(self):
        ledger = BitBudgetLedger(n=64)
        ledger.charge(0, sender=1, ids=1)
        ledger.charge(0, sender=1, ids=1)
        ledger.charge(1, sender=2, ids=1)
        assert ledger.max_bits_per_node_round() == ledger.per_node_bits(0)[1]
        assert ledger.mean_bits_per_node_round() > 0

    def test_violations_detect_heavy_senders(self):
        ledger = BitBudgetLedger(n=64, polylog_exponent=1.0, cap_constant=1.0)
        # cap is log2(64) = 6 bits -- any message violates it.
        ledger.charge(0, sender=9, ids=1)
        violations = ledger.violations()
        assert violations and violations[0][1] == 9

    def test_no_violation_under_generous_cap(self):
        ledger = BitBudgetLedger(n=1 << 20)
        ledger.charge(0, sender=1, ids=2)
        assert ledger.violations() == []

    def test_cap_formula(self):
        ledger = BitBudgetLedger(n=256, polylog_exponent=2.0, cap_constant=3.0)
        assert ledger.cap_bits() == pytest.approx(3.0 * math.log2(256) ** 2)

    def test_summary_and_reset(self):
        ledger = BitBudgetLedger(n=64)
        ledger.charge(0, 1, ids=1)
        summary = ledger.summary()
        assert summary["total_messages"] == 1.0
        ledger.reset()
        assert ledger.total_bits == 0
        assert list(ledger.rounds()) == []

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            BitBudgetLedger(n=1)
