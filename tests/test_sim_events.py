"""Tests for the event-driven engine (repro.sim.events, repro.net.latency).

The load-bearing suites are the ISSUE-6 acceptance ones:

* the **zero-latency oracle**: an :class:`AsyncProtocolSystem` under
  :class:`ZeroLatency` must reproduce the lockstep
  :class:`P2PStorageSystem` *exactly* -- round summaries, bandwidth ledger,
  committee rosters, sampler counts and every RNG stream's terminal state --
  over randomized churn/store/refresh/retrieval scenarios;
* the **artifact regression**: running the committed E3-E6 quick configs
  through the forced events engine must leave ``result.json`` and every
  ``cells/*.json`` byte-identical to the lockstep run;
* **E13/E14 end-to-end**: the latency experiments run through the CLI with a
  store, survive a resume, and a dispatch worker reproduces the sequential
  artifacts byte-for-byte.

The event queue itself gets a hypothesis property suite: timestamp ordering,
pop-order invariance under permuted insertion, cancellation semantics, and
latency-config JSON round-trips.
"""

from __future__ import annotations

import dataclasses
import filecmp
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.protocol import P2PStorageSystem
from repro.experiments import registry
from repro.net.latency import (
    LATENCY_KINDS,
    LognormalLatency,
    RegionMatrixLatency,
    UniformLatency,
    ZeroLatency,
    latency_from_json_dict,
    resolve_latency,
)
from repro.sim.events import PRIORITY, AsyncProtocolSystem, EventQueue, force_engine, forced_engine

SETTINGS = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])

#: Strategy for a batch of schedulable events: (time, kind, payload-int).
EVENT_BATCHES = st.lists(
    st.tuples(
        st.integers(0, 6),
        st.sampled_from(["deliver", "join", "storage_item", "retrieval_op"]),
        st.integers(0, 99),
    ),
    min_size=1,
    max_size=24,
)


# ------------------------------------------------------------------ event queue
class TestEventQueue:
    @given(batch=EVENT_BATCHES, seed=st.integers(0, 1000))
    @SETTINGS
    def test_pop_times_are_nondecreasing(self, batch, seed):
        queue = EventQueue(seed=seed)
        for time, kind, payload in batch:
            queue.add_event(time, kind, payload=payload)
        times = [event.time for event in queue.drain()]
        assert times == sorted(times)
        assert len(times) == len(batch)

    @given(batch=EVENT_BATCHES, seed=st.integers(0, 1000), perm_seed=st.integers(0, 1000))
    @SETTINGS
    def test_pop_order_is_invariant_under_insertion_order(self, batch, seed, perm_seed):
        """The seeded tie-break makes the schedule a function of *what* is queued."""

        def drained(events):
            queue = EventQueue(seed=seed)
            for time, kind, payload in events:
                queue.add_event(time, kind, payload=payload)
            return [(e.time, e.kind, e.payload) for e in queue.drain()]

        # Duplicate entries are legitimately tied (identical hash); insertion
        # order then decides, so compare on the deduplicated batch.
        unique = list(dict.fromkeys(batch))
        shuffled = list(unique)
        np.random.default_rng(perm_seed).shuffle(shuffled)
        assert drained(unique) == drained(shuffled)

    @given(batch=EVENT_BATCHES, seed=st.integers(0, 1000))
    @SETTINGS
    def test_same_seed_same_order(self, batch, seed):
        def drained(queue_seed):
            queue = EventQueue(seed=queue_seed)
            for time, kind, payload in batch:
                queue.add_event(time, kind, payload=payload)
            return [(e.time, e.kind, e.payload) for e in queue.drain()]

        assert drained(seed) == drained(seed)

    @given(batch=EVENT_BATCHES, seed=st.integers(0, 1000), drop=st.data())
    @SETTINGS
    def test_cancellation_removes_exactly_the_cancelled(self, batch, seed, drop):
        queue = EventQueue(seed=seed)
        handles = [queue.add_event(t, k, payload=p) for t, k, p in batch]
        idx = drop.draw(st.integers(0, len(handles) - 1))
        assert queue.cancel(handles[idx]) is True
        assert queue.cancel(handles[idx]) is False  # second cancel is a no-op
        assert len(queue) == len(batch) - 1
        popped = list(queue.drain())
        assert len(popped) == len(batch) - 1
        assert len(queue) == 0

    def test_cancel_after_pop_is_refused(self):
        queue = EventQueue()
        handle = queue.add_event(1, "deliver")
        assert queue.pop().kind == "deliver"
        assert queue.cancel(handle) is False

    def test_priority_orders_within_a_timestamp(self):
        queue = EventQueue(seed=3)
        for kind in ("retrieval_step", "round_begin", "storage_step", "deliver", "sampler_expire"):
            queue.add_event(5, kind, priority=PRIORITY[kind], tie_key=f"{kind}:5")
        kinds = [event.kind for event in queue.drain()]
        assert kinds == ["round_begin", "deliver", "sampler_expire", "storage_step", "retrieval_step"]

    def test_round_end_precedes_next_round(self):
        queue = EventQueue(seed=3)
        queue.add_event(6, "round_begin", priority=PRIORITY["round_begin"], tie_key="round_begin:6")
        queue.add_event(6, "round_end", priority=PRIORITY["round_end"], tie_key="round_end:5")
        assert [e.kind for e in queue.drain()] == ["round_end", "round_begin"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventQueue().add_event(-1.0, "deliver")

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.add_event(1, "a", tie_key="a")
        queue.add_event(2, "b", tie_key="b")
        assert queue.peek_time() == 1
        queue.cancel(first)
        assert queue.peek_time() == 2
        assert queue.pop().kind == "b"
        assert queue.peek_time() is None
        assert queue.pop() is None


# -------------------------------------------------------------- latency models
class TestLatencyModels:
    MODELS = (
        ZeroLatency(),
        UniformLatency(low=0.5, high=2.5),
        LognormalLatency(mu=0.1, sigma=0.9),
        RegionMatrixLatency(regions=2, matrix=((0.0, 3.0), (3.0, 0.0)), jitter=0.25),
    )

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.kind)
    def test_json_round_trip(self, model):
        doc = model.to_json_dict()
        assert doc["kind"] in LATENCY_KINDS
        restored = latency_from_json_dict(doc)
        assert restored == model
        assert restored.to_json_dict() == doc

    @given(low=st.floats(0, 5), span=st.floats(0, 5), sigma=st.floats(0, 3))
    @SETTINGS
    def test_json_round_trip_property(self, low, span, sigma):
        for model in (UniformLatency(low=low, high=low + span), LognormalLatency(sigma=sigma)):
            assert latency_from_json_dict(model.to_json_dict()) == model

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown latency kind"):
            latency_from_json_dict({"kind": "tachyon"})

    def test_unknown_keys_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            latency_from_json_dict({"kind": "uniform", "low": 0.0, "high": 1.0, "warp": 9})

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(low=2.0, high=1.0)
        with pytest.raises(ValueError):
            LognormalLatency(sigma=-0.1)
        with pytest.raises(ValueError):
            RegionMatrixLatency(regions=2, matrix=((0.0,), (0.0, 1.0)))

    def test_zero_latency_draws_no_rng(self):
        rng = np.random.default_rng(7)
        before = rng.bit_generator.state
        uids = np.arange(50, dtype=np.int64)
        assert np.all(ZeroLatency().pair_delays(rng, uids, uids) == 0.0)
        assert np.all(ZeroLatency().node_delays(rng, uids) == 0.0)
        assert rng.bit_generator.state == before

    def test_nonzero_models_draw_plausible_delays(self):
        rng = np.random.default_rng(7)
        uids = np.arange(200, dtype=np.int64)
        uniform = UniformLatency(low=1.0, high=2.0).node_delays(rng, uids)
        assert np.all((uniform >= 1.0) & (uniform < 2.0))
        lognormal = LognormalLatency(mu=0.0, sigma=0.5).node_delays(rng, uids)
        assert np.all(lognormal > 0)
        region = RegionMatrixLatency(regions=2, matrix=((0.0, 3.0), (3.0, 0.0)))
        cross = region.pair_delays(rng, uids, uids + 1)  # parity differs -> cross-region
        assert np.all(cross == 3.0)
        same = region.pair_delays(rng, uids, uids)
        assert np.all(same == 0.0)

    def test_resolve_latency(self):
        assert resolve_latency(None) == ZeroLatency()
        model = UniformLatency(low=0.0, high=1.0)
        assert resolve_latency(model) is model
        assert resolve_latency({"kind": "zero"}) == ZeroLatency()
        with pytest.raises(TypeError):
            resolve_latency(42)


# ------------------------------------------------------- zero-latency oracle
def _rng_states(system):
    return {
        "ctx": system.ctx.rng.generator.bit_generator.state,
        "soup": system.soup._rng.generator.bit_generator.state,
        "adversary": system.rng.adversary.generator.bit_generator.state,
        "protocol": system.rng.protocol.generator.bit_generator.state,
    }


def _snapshot(system):
    """Everything the oracle compares between the twin systems."""
    alive = system.network.alive_uids()
    return {
        "summaries": [dataclasses.asdict(s) for s in system.round_summaries],
        "ledger": system.ledger.summary(),
        "alive": alive.tolist(),
        "sample_counts": system.sampler.sample_counts(alive, round_index=system.round_index).tolist(),
        # item/op ids come from process-global counters, so compare by
        # creation order rather than absolute id.
        "rosters": [
            (item.committee.members, item.lost, system.storage.is_available(item_id))
            for item_id, item in sorted(system.storage.items.items())
        ],
        "retrievals": [
            (op.status, op.requester_uid)
            for _, op in sorted(system.retrieval.operations.items())
        ],
        "rng": _rng_states(system),
    }


def _run_scenario(system, seed: int, churn_rate: int):
    """A randomized churn/store/refresh/retrieval scenario, driven identically
    on both systems (all scenario choices come from the system's own RNG, which
    the oracle asserts stays in lockstep)."""
    system.warm_up()
    items = [system.store(bytes([seed, i, churn_rate, 99]) * 8) for i in range(3)]
    system.run_rounds(2 * system.params.committee_refresh_period + 3)
    ops = [system.retrieve(item.item_id) for item in items]
    system.run_until_finished(ops)
    system.run_rounds(3)
    return system


class TestZeroLatencyOracle:
    """Satellite 1: the async engine under zero latency IS the lockstep engine."""

    @pytest.mark.parametrize(
        "seed,churn_rate", [(0, 0), (7, 2), (23, 4)], ids=["no-churn", "churn-2", "churn-4"]
    )
    def test_twin_systems_stay_identical(self, seed, churn_rate):
        lockstep = _run_scenario(P2PStorageSystem(n=64, churn_rate=churn_rate, seed=seed), seed, churn_rate)
        asynchronous = _run_scenario(
            AsyncProtocolSystem(n=64, churn_rate=churn_rate, seed=seed), seed, churn_rate
        )
        assert asynchronous.latency.is_zero
        assert _snapshot(asynchronous) == _snapshot(lockstep)

    def test_explicit_zero_latency_config_is_equivalent(self):
        lockstep = P2PStorageSystem(n=64, churn_rate=2, seed=11)
        asynchronous = AsyncProtocolSystem(n=64, churn_rate=2, seed=11, latency={"kind": "zero"})
        lockstep.warm_up()
        asynchronous.warm_up()
        assert _snapshot(asynchronous) == _snapshot(lockstep)

    def test_erasure_mode_is_equivalent_too(self):
        lockstep = _run_scenario(
            P2PStorageSystem(n=64, churn_rate=2, seed=5, storage_mode="erasure"), 5, 2
        )
        asynchronous = _run_scenario(
            AsyncProtocolSystem(n=64, churn_rate=2, seed=5, storage_mode="erasure"), 5, 2
        )
        assert _snapshot(asynchronous) == _snapshot(lockstep)


# ------------------------------------------------------------ nonzero latency
class TestNonzeroLatency:
    def test_uniform_latency_system_runs_and_retrieves(self):
        system = AsyncProtocolSystem(
            n=64, churn_rate=2, seed=9, latency={"kind": "uniform", "low": 0.0, "high": 2.5}
        )
        system.warm_up()
        item = system.store(b"latency-smoke" * 4)
        system.run_rounds(system.params.committee_refresh_period + 2)
        op = system.retrieve(item.item_id)
        system.run_until_finished(op)
        assert op.status == "succeeded"
        description = system.describe()
        assert description["engine"] == "events"
        assert description["latency"]["kind"] == "uniform"

    def test_churned_in_nodes_stay_dormant_until_join(self):
        system = AsyncProtocolSystem(
            n=64, churn_rate=4, seed=3, latency={"kind": "lognormal", "mu": 1.0, "sigma": 0.5}
        )
        system.run_rounds(6)
        # With churn every round and join delays >= 1 round, some nodes must
        # currently be dormant, and their join rounds must be in the future.
        assert system._dormant
        assert all(join_round > system.round_index for join_round in system._dormant.values())

    def test_latency_uses_only_the_analysis_stream(self):
        zero = AsyncProtocolSystem(n=64, churn_rate=2, seed=13)
        slow = AsyncProtocolSystem(
            n=64, churn_rate=2, seed=13, latency={"kind": "uniform", "low": 0.0, "high": 3.0}
        )
        zero.run_rounds(8)
        slow.run_rounds(8)
        # The adversary stream is untouched by latency draws: both engines see
        # the exact same churn schedule.  (Walk streams legitimately diverge --
        # dormant nodes inject fewer walks, so the soup makes fewer draws.)
        assert _rng_states(slow)["adversary"] == _rng_states(zero)["adversary"]
        assert [s.churned for s in slow.round_summaries] == [s.churned for s in zero.round_summaries]


# ------------------------------------------------- engine forcing + artifacts
class TestForceEngine:
    def test_force_engine_round_trips(self):
        assert forced_engine() == (None, None)
        with force_engine("events", {"kind": "zero"}):
            assert forced_engine() == ("events", {"kind": "zero"})
            with force_engine("lockstep"):
                assert forced_engine() == ("lockstep", None)
            assert forced_engine() == ("events", {"kind": "zero"})
        assert forced_engine() == (None, None)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            with force_engine("quantum"):
                pass  # pragma: no cover


def _artifact_files(run_root: Path):
    (run_dir,) = list(run_root.iterdir())
    files = [run_dir / "result.json"]
    files += sorted((run_dir / "cells").glob("*.json"))
    return run_dir, files


@pytest.mark.parametrize("experiment_id", ["E3", "E4", "E5", "E6"])
def test_quick_artifacts_byte_identical_under_events_engine(experiment_id, tmp_path, monkeypatch):
    """ISSUE-6 acceptance: E3-E6 quick cell artifacts are engine-invariant."""
    monkeypatch.setenv("REPRO_CANONICAL_TIMING", "1")
    assert registry.main(["run", experiment_id, "--json-out", str(tmp_path / "lockstep")]) == 0
    with force_engine("events"):
        assert registry.main(["run", experiment_id, "--json-out", str(tmp_path / "events")]) == 0
    _, lockstep_files = _artifact_files(tmp_path / "lockstep")
    _, events_files = _artifact_files(tmp_path / "events")
    assert [f.name for f in lockstep_files] == [f.name for f in events_files]
    assert len(lockstep_files) > 1  # result.json plus at least one cell
    for lhs, rhs in zip(lockstep_files, events_files):
        assert filecmp.cmp(lhs, rhs, shallow=False), f"{lhs.name} differs between engines"


# --------------------------------------------------------- E13/E14 end-to-end
#: Shrunk-but-real overrides so the latency experiments stay test-sized.
E13_OVERRIDES = ["--set", "n=64", "--set", "measure_rounds=6"]
E14_OVERRIDES = ["--set", "n=64", "--set", "measure_rounds=4", "--set", "items=1"]


@pytest.mark.parametrize(
    "experiment_id,overrides", [("E13", E13_OVERRIDES), ("E14", E14_OVERRIDES)]
)
def test_latency_experiments_run_resume_and_dispatch(experiment_id, overrides, tmp_path, monkeypatch):
    """E13/E14 run through the CLI with a store, survive resume and dispatch."""
    monkeypatch.setenv("REPRO_CANONICAL_TIMING", "1")
    seq_root = tmp_path / "seq"
    assert registry.main(["run", experiment_id, "--json-out", str(seq_root)] + overrides) == 0
    seq_dir, seq_files = _artifact_files(seq_root)
    assert len(seq_files) > 1

    # Resume over a complete run is a no-op that recomputes nothing and
    # leaves every artifact byte-identical.
    before = {f.name: f.read_bytes() for f in seq_files}
    assert registry.main(["resume", str(seq_dir)]) == 0
    for f in seq_files:
        assert f.read_bytes() == before[f.name]

    # Dispatch + one worker reproduces the sequential artifacts exactly.
    dist_root = tmp_path / "dist"
    assert registry.main(["dispatch", experiment_id, "--json-out", str(dist_root)] + overrides) == 0
    (dist_dir,) = list(dist_root.iterdir())
    assert registry.main(["worker", str(dist_dir), "--wait-timeout", "120"]) == 0
    for seq_file in seq_files:
        rel = seq_file.relative_to(seq_dir)
        assert filecmp.cmp(seq_file, dist_dir / rel, shallow=False), f"{rel} differs"

    result_doc = (seq_dir / "result.json").read_text(encoding="utf-8")
    assert '"latency' in result_doc  # the latency axis made it into the artifact
