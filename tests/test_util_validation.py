"""Tests for repro.util.validation."""

from __future__ import annotations

import pytest

from repro.util.validation import (
    check_choice,
    check_even,
    check_in_range,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestPositiveInt:
    def test_accepts(self):
        assert check_positive_int(5, "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-3, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")


class TestNonNegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")


class TestPositiveFloat:
    def test_accepts_int_and_float(self):
        assert check_positive_float(2, "x") == 2.0
        assert check_positive_float(0.25, "x") == 0.25

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive_float(0, "x")
        with pytest.raises(ValueError):
            check_positive_float(-1.0, "x")

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            check_positive_float("abc", "x")


class TestProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestEven:
    def test_accepts_even(self):
        assert check_even(64, "n") == 64

    def test_rejects_odd(self):
        with pytest.raises(ValueError):
            check_even(63, "n")


class TestInRange:
    def test_accepts_bounds(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, "x", 0.0, 1.0)


class TestChoice:
    def test_accepts_member(self):
        assert check_choice("a", "x", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError):
            check_choice("c", "x", ("a", "b"))
