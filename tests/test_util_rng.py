"""Tests for repro.util.rng: reproducibility and stream independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import RngStream, SplitRng, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "adversary") == derive_seed(42, "adversary")

    def test_different_keys_differ(self):
        assert derive_seed(42, "adversary") != derive_seed(42, "protocol")

    def test_different_roots_differ(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_integer_keys(self):
        assert derive_seed(7, 1, 2) == derive_seed(7, 1, 2)
        assert derive_seed(7, 1, 2) != derive_seed(7, 2, 1)


class TestRngStream:
    def test_reproducible_draws(self):
        a = RngStream(99).integers(0, 1_000_000, size=10)
        b = RngStream(99).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_spawn_independent_of_parent_draws(self):
        s1 = RngStream(5)
        s2 = RngStream(5)
        s1.integers(0, 10, size=100)  # consume some parent entropy
        child1 = s1.spawn("c")
        child2 = s2.spawn("c")
        assert child1.seed == child2.seed

    def test_successive_spawns_differ(self):
        stream = RngStream(5)
        assert stream.spawn().seed != stream.spawn().seed

    def test_proxy_methods(self):
        stream = RngStream(3)
        assert 0 <= stream.random() < 1
        perm = stream.permutation(10)
        assert sorted(perm.tolist()) == list(range(10))
        choice = stream.choice([1, 2, 3])
        assert choice in (1, 2, 3)
        assert stream.exponential() > 0


class TestSplitRng:
    def test_streams_are_reproducible(self):
        a = SplitRng(7)
        b = SplitRng(7)
        assert a.adversary.seed == b.adversary.seed
        assert a.protocol.seed == b.protocol.seed
        assert a.analysis.seed == b.analysis.seed

    def test_streams_are_distinct(self):
        split = SplitRng(7)
        seeds = list(split.seeds())
        assert len(set(seeds)) == 3

    def test_protocol_draws_do_not_affect_adversary(self):
        a = SplitRng(13)
        b = SplitRng(13)
        a.protocol.integers(0, 100, size=1000)  # heavy protocol usage
        draw_a = a.adversary.integers(0, 1_000_000)
        draw_b = b.adversary.integers(0, 1_000_000)
        assert int(draw_a) == int(draw_b)


def test_make_rng_is_generator():
    assert isinstance(make_rng(0), np.random.Generator)
    assert int(make_rng(0).integers(0, 100)) == int(make_rng(0).integers(0, 100))
