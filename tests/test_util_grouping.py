"""Tests for repro.util.grouping."""

from __future__ import annotations

import numpy as np

from repro.util.grouping import GroupIndex, group_lists_by_key


class TestGroupIndex:
    def test_rows_preserve_original_order(self):
        keys = np.asarray([5, 2, 5, 9, 2, 5], dtype=np.int64)
        index = GroupIndex(keys)
        assert index.n_groups == 3
        assert index.rows_of(5).tolist() == [0, 2, 5]
        assert index.rows_of(2).tolist() == [1, 4]
        assert index.rows_of(9).tolist() == [3]

    def test_rows_of_absent_key(self):
        index = GroupIndex(np.asarray([1, 2, 3], dtype=np.int64))
        assert index.rows_of(0).size == 0
        assert index.rows_of(7).size == 0

    def test_counts_align_with_keys(self):
        index = GroupIndex(np.asarray([4, 4, 1, 4], dtype=np.int64))
        assert index.keys.tolist() == [1, 4]
        assert index.counts().tolist() == [1, 3]

    def test_counts_of_mixed_present_and_absent(self):
        index = GroupIndex(np.asarray([3, 3, 8], dtype=np.int64))
        query = np.asarray([8, 0, 3, 99], dtype=np.int64)
        assert index.counts_of(query).tolist() == [1, 0, 2, 0]

    def test_empty_column(self):
        index = GroupIndex(np.empty(0, dtype=np.int64))
        assert index.n_groups == 0
        assert index.rows_of(1).size == 0
        assert index.counts_of(np.asarray([1, 2])).tolist() == [0, 0]
        assert index.counts_of(np.empty(0, dtype=np.int64)).size == 0


class TestGroupListsByKey:
    def test_matches_setdefault_loop(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 12, size=200)
        values = rng.integers(0, 1000, size=200)
        expected: dict[int, list[int]] = {}
        for k, v in zip(keys.tolist(), values.tolist()):
            expected.setdefault(int(k), []).append(int(v))
        grouped = group_lists_by_key(keys, values)
        assert grouped == expected
        # First-occurrence key order, exactly like the dict the loop builds.
        assert list(grouped) == list(expected)

    def test_empty(self):
        assert group_lists_by_key(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)) == {}
