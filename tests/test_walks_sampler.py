"""Tests for repro.walks.sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.churn import NoChurn, ScheduledChurn
from repro.net.network import DynamicNetwork
from repro.util.rng import RngStream
from repro.walks.sampler import NodeSampler, ReceivedSample
from repro.walks.soup import SampleDelivery


def make_net(adversary=None, n=32):
    return DynamicNetwork(n, degree=4, adversary=adversary, adversary_rng=RngStream(0))


def delivery(dests, sources, round_index=0):
    return SampleDelivery(
        round_index=round_index,
        destination_uids=np.asarray(dests, dtype=np.int64),
        source_uids=np.asarray(sources, dtype=np.int64),
        birth_rounds=np.zeros(len(dests), dtype=np.int32),
    )


class TestIngest:
    def test_records_samples_for_alive_destinations(self):
        net = make_net()
        sampler = NodeSampler(net)
        count = sampler.ingest(delivery([1, 1, 2], [10, 11, 12]))
        assert count == 3
        assert sampler.sample_count(1) == 2
        assert sampler.sample_count(2, round_index=0) == 1
        assert sampler.sample_count(3) == 0

    def test_drops_samples_for_dead_destinations(self):
        adv = ScheduledChurn({0: [5]}, n_slots=32)
        net = make_net(adversary=adv)
        net.begin_round()
        net.end_round()
        sampler = NodeSampler(net)
        count = sampler.ingest(delivery([5], [10]))
        assert count == 0

    def test_received_sample_age(self):
        sample = ReceivedSample(source_uid=1, birth_round=0, delivered_round=3)
        assert sample.age(10) == 7


class TestExpiry:
    def test_old_samples_expire(self):
        net = make_net()
        sampler = NodeSampler(net, retention=2)
        sampler.ingest(delivery([1], [10], round_index=0))
        sampler.ingest(delivery([1], [11], round_index=5))
        sampler.expire(current_round=5)
        assert sampler.sample_count(1, round_index=0) == 0
        assert sampler.sample_count(1, round_index=5) == 1

    def test_dead_node_state_dropped(self):
        adv = ScheduledChurn({1: [7]}, n_slots=32)
        net = make_net(adversary=adv)
        sampler = NodeSampler(net)
        sampler.ingest(delivery([7], [10], round_index=0))
        net.begin_round()
        net.end_round()
        net.begin_round()  # churns uid 7
        net.end_round()
        sampler.expire(current_round=1)
        assert sampler.sample_count(7) == 0


class TestQueries:
    def test_sample_sources_alive_filter(self):
        adv = ScheduledChurn({0: [10]}, n_slots=32)
        net = make_net(adversary=adv)
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1, 1], [10, 11], round_index=0))
        net.begin_round()  # uid 10 churned out
        net.end_round()
        assert sampler.sample_sources(1, alive_only=True) == [11]
        assert sorted(sampler.sample_sources(1, alive_only=False)) == [10, 11]

    def test_max_age_window(self):
        net = make_net()
        sampler = NodeSampler(net, retention=10)
        sampler.ingest(delivery([1], [10], round_index=0))
        sampler.ingest(delivery([1], [11], round_index=4))
        recent = sampler.samples_of(1, max_age=2)
        assert [s.source_uid for s in recent] == [11]

    def test_draw_distinct_sources(self, rng):
        net = make_net()
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1] * 6, [2, 2, 3, 4, 5, 1], round_index=0))
        picked = sampler.draw_distinct_sources(1, 10, rng)
        # distinct, excludes self (uid 1), no duplicates
        assert sorted(picked) == [2, 3, 4, 5]
        limited = sampler.draw_distinct_sources(1, 2, rng)
        assert len(limited) == 2 and len(set(limited)) == 2

    def test_draw_with_exclusions(self, rng):
        net = make_net()
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1, 1, 1], [2, 3, 4], round_index=0))
        picked = sampler.draw_distinct_sources(1, 5, rng, exclude=[2, 3])
        assert picked == [4]

    def test_nodes_with_samples(self):
        net = make_net()
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1, 2], [5, 6], round_index=0))
        assert sampler.nodes_with_samples() == 2
        assert sampler.nodes_with_samples(round_index=1) == 0
        assert sampler.last_round_ingested == 0

    def test_invalid_retention(self):
        with pytest.raises(ValueError):
            NodeSampler(make_net(), retention=0)
