"""Tests for repro.walks.sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.churn import NoChurn, ScheduledChurn
from repro.net.network import DynamicNetwork
from repro.util.rng import RngStream
from repro.walks.sampler import NodeSampler, ReceivedSample
from repro.walks.soup import SampleDelivery


def make_net(adversary=None, n=32):
    return DynamicNetwork(n, degree=4, adversary=adversary, adversary_rng=RngStream(0))


def delivery(dests, sources, round_index=0):
    return SampleDelivery(
        round_index=round_index,
        destination_uids=np.asarray(dests, dtype=np.int64),
        source_uids=np.asarray(sources, dtype=np.int64),
        birth_rounds=np.zeros(len(dests), dtype=np.int32),
    )


class TestIngest:
    def test_records_samples_for_alive_destinations(self):
        net = make_net()
        sampler = NodeSampler(net)
        count = sampler.ingest(delivery([1, 1, 2], [10, 11, 12]))
        assert count == 3
        assert sampler.sample_count(1) == 2
        assert sampler.sample_count(2, round_index=0) == 1
        assert sampler.sample_count(3) == 0

    def test_drops_samples_for_dead_destinations(self):
        adv = ScheduledChurn({0: [5]}, n_slots=32)
        net = make_net(adversary=adv)
        net.begin_round()
        net.end_round()
        sampler = NodeSampler(net)
        count = sampler.ingest(delivery([5], [10]))
        assert count == 0

    def test_received_sample_age(self):
        sample = ReceivedSample(source_uid=1, birth_round=0, delivered_round=3)
        assert sample.age(10) == 7


class TestExpiry:
    def test_old_samples_expire(self):
        net = make_net()
        sampler = NodeSampler(net, retention=2)
        sampler.ingest(delivery([1], [10], round_index=0))
        sampler.ingest(delivery([1], [11], round_index=5))
        sampler.expire(current_round=5)
        assert sampler.sample_count(1, round_index=0) == 0
        assert sampler.sample_count(1, round_index=5) == 1

    def test_dead_node_state_dropped(self):
        adv = ScheduledChurn({1: [7]}, n_slots=32)
        net = make_net(adversary=adv)
        sampler = NodeSampler(net)
        sampler.ingest(delivery([7], [10], round_index=0))
        net.begin_round()
        net.end_round()
        net.begin_round()  # churns uid 7
        net.end_round()
        sampler.expire(current_round=1)
        assert sampler.sample_count(7) == 0


class TestQueries:
    def test_sample_sources_alive_filter(self):
        adv = ScheduledChurn({0: [10]}, n_slots=32)
        net = make_net(adversary=adv)
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1, 1], [10, 11], round_index=0))
        net.begin_round()  # uid 10 churned out
        net.end_round()
        assert sampler.sample_sources(1, alive_only=True) == [11]
        assert sorted(sampler.sample_sources(1, alive_only=False)) == [10, 11]

    def test_max_age_window(self):
        net = make_net()
        sampler = NodeSampler(net, retention=10)
        sampler.ingest(delivery([1], [10], round_index=0))
        sampler.ingest(delivery([1], [11], round_index=4))
        recent = sampler.samples_of(1, max_age=2)
        assert [s.source_uid for s in recent] == [11]

    def test_draw_distinct_sources(self, rng):
        net = make_net()
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1] * 6, [2, 2, 3, 4, 5, 1], round_index=0))
        picked = sampler.draw_distinct_sources(1, 10, rng)
        # distinct, excludes self (uid 1), no duplicates
        assert sorted(picked) == [2, 3, 4, 5]
        limited = sampler.draw_distinct_sources(1, 2, rng)
        assert len(limited) == 2 and len(set(limited)) == 2

    def test_draw_with_exclusions(self, rng):
        net = make_net()
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1, 1, 1], [2, 3, 4], round_index=0))
        picked = sampler.draw_distinct_sources(1, 5, rng, exclude=[2, 3])
        assert picked == [4]

    def test_draw_from_pool_consumes_rng_like_draw(self):
        net = make_net()
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1] * 6, [2, 3, 4, 5, 6, 7], round_index=0))
        pool = sampler.distinct_source_pool(1)
        assert pool.tolist() == [2, 3, 4, 5, 6, 7]
        direct = sampler.draw_distinct_sources(1, 3, np.random.default_rng(5))
        via_pool = NodeSampler.draw_from_pool(pool, 3, np.random.default_rng(5))
        assert direct == via_pool
        # Short and empty pools never touch the RNG (the whole pool returns).
        assert NodeSampler.draw_from_pool(pool, 10, None) == pool.tolist()
        assert NodeSampler.draw_from_pool(None, 3, None) == []

    def test_distinct_source_pools_batches_many_uids(self):
        net = make_net()
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1, 1, 2, 2, 2], [3, 3, 4, 1, 5], round_index=0))
        sampler.ingest(delivery([2, 3], [6, 2], round_index=1))
        pools = sampler.distinct_source_pools([1, 2, 3, 9])
        assert [pool.tolist() for pool in pools] == [[3], [4, 1, 5, 6], [2], []]

    def test_nodes_with_samples(self):
        net = make_net()
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1, 2], [5, 6], round_index=0))
        assert sampler.nodes_with_samples() == 2
        assert sampler.nodes_with_samples(round_index=1) == 0
        assert sampler.last_round_ingested == 0

    def test_invalid_retention(self):
        with pytest.raises(ValueError):
            NodeSampler(make_net(), retention=0)


class TestBulkQueries:
    def test_sample_counts_matches_scalar(self):
        net = make_net()
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1, 1, 2, 5], [9, 8, 7, 6], round_index=0))
        sampler.ingest(delivery([1, 5], [3, 4], round_index=1))
        uids = [0, 1, 2, 5, 31]
        for r in (None, 0, 1, 2):
            bulk = sampler.sample_counts(uids, round_index=r)
            assert bulk.tolist() == [sampler.sample_count(u, round_index=r) for u in uids]

    def test_sample_counts_zero_for_dead_uid(self):
        adv = ScheduledChurn({0: [2]}, n_slots=32)
        net = make_net(adversary=adv)
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1, 2], [9, 8], round_index=0))
        net.begin_round()  # churns uid 2 out
        net.end_round()
        assert sampler.sample_counts([1, 2], round_index=0).tolist() == [1, 0]

    def test_sources_by_destination_matches_per_uid(self):
        adv = ScheduledChurn({0: [9]}, n_slots=32)
        net = make_net(adversary=adv)
        sampler = NodeSampler(net)
        sampler.ingest(delivery([1, 2, 1, 3], [9, 10, 11, 9], round_index=0))
        net.begin_round()  # churns source uid 9 out
        net.end_round()
        for alive_only in (True, False):
            grouped = sampler.sources_by_destination(0, alive_only=alive_only)
            expected = {
                u: sampler.sample_sources(u, round_index=0, alive_only=alive_only)
                for u in (1, 2, 3)
            }
            assert {u: v.tolist() for u, v in grouped.items()} == expected

    def test_sources_by_destination_empty_round(self):
        sampler = NodeSampler(make_net())
        assert sampler.sources_by_destination(3) == {}


class _ReferenceSampler:
    """The pre-columnar per-node-window implementation, kept as a test oracle.

    Verbatim semantics of the seed's dict-of-lists ``NodeSampler`` (uid ->
    round -> list of ``ReceivedSample``); the columnar rewrite must be
    observationally identical to it through the engine's round protocol
    (churn, then ingest, then expire, then queries).
    """

    def __init__(self, network, retention=4):
        self.network = network
        self.retention = retention
        self._samples = {}
        self._last_round_ingested = -1

    def ingest(self, delivery):
        round_index = delivery.round_index
        self._last_round_ingested = max(self._last_round_ingested, round_index)
        recorded = 0
        for dest, src, birth in zip(
            delivery.destination_uids.tolist(),
            delivery.source_uids.tolist(),
            delivery.birth_rounds.tolist(),
        ):
            if not self.network.is_alive(int(dest)):
                continue
            bucket = self._samples.setdefault(int(dest), {}).setdefault(round_index, [])
            bucket.append(
                ReceivedSample(source_uid=int(src), birth_round=int(birth), delivered_round=round_index)
            )
            recorded += 1
        return recorded

    def expire(self, current_round):
        cutoff = current_round - self.retention
        dead = []
        for uid, rounds in self._samples.items():
            if not self.network.is_alive(uid):
                dead.append(uid)
                continue
            for r in [r for r in rounds if r < cutoff]:
                del rounds[r]
        for uid in dead:
            del self._samples[uid]

    def samples_of(self, uid, round_index=None, max_age=None):
        rounds = self._samples.get(int(uid))
        if not rounds:
            return []
        if round_index is not None:
            return list(rounds.get(round_index, []))
        if max_age is None:
            return [s for bucket in rounds.values() for s in bucket]
        cutoff = self._last_round_ingested - max_age
        return [s for r, bucket in rounds.items() if r >= cutoff for s in bucket]

    def sample_count(self, uid, round_index=None):
        return len(self.samples_of(uid, round_index=round_index))

    def sample_sources(self, uid, round_index=None, alive_only=True, max_age=None):
        sources = [
            s.source_uid for s in self.samples_of(uid, round_index=round_index, max_age=max_age)
        ]
        if alive_only:
            sources = [s for s in sources if self.network.is_alive(s)]
        return sources

    def draw_distinct_sources(self, uid, k, rng, exclude=None, round_index=None, max_age=None):
        excluded = set(int(e) for e in exclude) if exclude else set()
        pool, seen = [], set()
        for source in self.sample_sources(uid, round_index=round_index, max_age=max_age):
            if source in seen or source in excluded or source == uid:
                continue
            seen.add(source)
            pool.append(source)
        if len(pool) <= k:
            return pool
        idx = rng.choice(len(pool), size=k, replace=False)
        return [pool[int(i)] for i in idx]

    def nodes_with_samples(self, round_index=None):
        return sum(
            1
            for uid in self._samples
            if self.network.is_alive(uid) and self.sample_count(uid, round_index=round_index) > 0
        )


class TestColumnarEquivalence:
    """The columnar sampler is byte-identical to the reference per-uid windows."""

    N = 48
    RETENTION = 3

    def _run_scenario(self, schedule, rounds, empty_rounds=(), seed=0):
        """Drive both samplers through identical churn + delivery streams.

        Every round follows the engine's ordering (churn -> ingest -> expire)
        and cross-checks the full query surface over all slots' uids.
        """
        gen = np.random.default_rng(seed)
        adv_a = ScheduledChurn(schedule, n_slots=self.N) if schedule else None
        adv_b = ScheduledChurn(schedule, n_slots=self.N) if schedule else None
        net_a = DynamicNetwork(self.N, degree=4, adversary=adv_a, adversary_rng=RngStream(7))
        net_b = DynamicNetwork(self.N, degree=4, adversary=adv_b, adversary_rng=RngStream(7))
        columnar = NodeSampler(net_a, retention=self.RETENTION)
        reference = _ReferenceSampler(net_b, retention=self.RETENTION)

        ever_seen = set(net_a.alive_uids().tolist())
        for r in range(rounds):
            net_a.begin_round()
            report = net_b.begin_round()
            assert net_a.alive_uids().tolist() == net_b.alive_uids().tolist()
            alive = net_a.alive_uids()
            ever_seen.update(alive.tolist())
            if r in empty_rounds:
                batches = [delivery([], [], round_index=r)]
            else:
                size = int(gen.integers(1, 4 * self.N))
                # Some destinations are drawn from ever-seen uids so dead
                # destinations appear in the stream and must be dropped.
                dests = gen.choice(np.asarray(sorted(ever_seen)), size=size)
                srcs = gen.choice(np.asarray(sorted(ever_seen)), size=size)
                births = gen.integers(0, r + 1, size=size)
                batch = SampleDelivery(
                    round_index=r,
                    destination_uids=dests.astype(np.int64),
                    source_uids=srcs.astype(np.int64),
                    birth_rounds=births.astype(np.int32),
                )
                # Occasionally split the round into two ingests to cover the
                # column-append path.
                if size > 1 and gen.integers(0, 2):
                    cut = size // 2
                    batches = [
                        SampleDelivery(r, dests[:cut], srcs[:cut], births[:cut].astype(np.int32)),
                        SampleDelivery(r, dests[cut:], srcs[cut:], births[cut:].astype(np.int32)),
                    ]
                else:
                    batches = [batch]
            for batch in batches:
                assert columnar.ingest(batch) == reference.ingest(batch)
            columnar.expire(r)
            reference.expire(r)
            net_a.end_round()
            net_b.end_round()
            self._check_equivalence(columnar, reference, sorted(ever_seen), r)

    def _check_equivalence(self, columnar, reference, uids, r):
        assert columnar.last_round_ingested == reference._last_round_ingested
        for round_index in (None, r, r - 1, r - self.RETENTION - 1):
            assert columnar.nodes_with_samples(round_index) == reference.nodes_with_samples(
                round_index
            )
            bulk = columnar.sample_counts(uids, round_index=round_index)
            assert bulk.tolist() == [
                reference.sample_count(u, round_index=round_index) for u in uids
            ]
        for uid in uids:
            assert columnar.samples_of(uid) == reference.samples_of(uid)
            assert columnar.samples_of(uid, round_index=r) == reference.samples_of(
                uid, round_index=r
            )
            assert columnar.samples_of(uid, max_age=1) == reference.samples_of(uid, max_age=1)
            assert columnar.sample_count(uid) == reference.sample_count(uid)
            for alive_only in (True, False):
                assert columnar.sample_sources(
                    uid, round_index=r, alive_only=alive_only
                ) == reference.sample_sources(uid, round_index=r, alive_only=alive_only)
            draw_a = columnar.draw_distinct_sources(
                uid, 3, np.random.default_rng(uid), exclude=[uids[0]]
            )
            draw_b = reference.draw_distinct_sources(
                uid, 3, np.random.default_rng(uid), exclude=[uids[0]]
            )
            assert draw_a == draw_b
        # The bulk pool gather must agree with the per-uid pools (and hence,
        # via draw_from_pool, with the reference draws) for every window kind.
        for window in ({"max_age": 2}, {"round_index": r}, {}):
            batched = columnar.distinct_source_pools(uids, **window)
            for uid, pool in zip(uids, batched):
                assert pool.tolist() == columnar.distinct_source_pool(uid, **window).tolist()

    def test_no_churn(self):
        self._run_scenario(schedule={}, rounds=8, seed=1)

    def test_churn_drops_dead_destinations(self):
        # Heavy scripted churn: slots rotate through new uids, so the delivery
        # stream constantly addresses dead uids and queries hit churned nodes.
        schedule = {r: [(5 * r + i) % self.N for i in range(5)] for r in range(1, 10)}
        self._run_scenario(schedule=schedule, rounds=10, seed=2)

    def test_retention_cutoff_and_empty_rounds(self):
        self._run_scenario(schedule={3: [0, 1, 2]}, rounds=9, empty_rounds={2, 3, 6}, seed=3)
