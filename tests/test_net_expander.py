"""Tests for repro.net.expander: spectral gap, connectivity, conductance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.expander import (
    estimate_conductance,
    is_connected,
    normalized_adjacency,
    spectral_gap,
    verify_topology,
)
from repro.net.topology import RegularTopology


@pytest.fixture
def topo(rng) -> RegularTopology:
    return RegularTopology.random(128, 8, rng)


class TestNormalizedAdjacency:
    def test_doubly_stochastic(self, topo):
        mat = normalized_adjacency(topo, sparse=False)
        assert np.allclose(mat.sum(axis=0), 1.0)
        assert np.allclose(mat.sum(axis=1), 1.0)
        assert np.allclose(mat, mat.T)

    def test_sparse_matches_dense(self, topo):
        dense = normalized_adjacency(topo, sparse=False)
        sparse = normalized_adjacency(topo, sparse=True).toarray()
        assert np.allclose(dense, sparse)


class TestSpectralGap:
    def test_union_of_matchings_is_expander(self, topo):
        lam = spectral_gap(topo, method="dense")
        assert 0 <= lam < 0.95

    def test_sparse_and_dense_agree(self, topo):
        dense = spectral_gap(topo, method="dense")
        sparse = spectral_gap(topo, method="sparse")
        assert abs(dense - sparse) < 1e-6

    def test_unknown_method_raises(self, topo):
        with pytest.raises(ValueError):
            spectral_gap(topo, method="magic")

    def test_higher_degree_gives_smaller_lambda(self, rng):
        lam3 = np.mean([spectral_gap(RegularTopology.random(128, 3, rng)) for _ in range(3)])
        lam12 = np.mean([spectral_gap(RegularTopology.random(128, 12, rng)) for _ in range(3)])
        assert lam12 < lam3


class TestConnectivity:
    def test_random_topology_connected(self, topo):
        assert is_connected(topo)

    def test_disconnected_detected(self):
        # Two disjoint 2-cycles on 4 slots (a valid 1-regular-per-port table).
        neighbors = np.array([[1], [0], [3], [2]], dtype=np.int32)
        topo = RegularTopology(neighbors=neighbors)
        assert not is_connected(topo)


class TestConductance:
    def test_estimate_positive_for_expander(self, topo, rng):
        estimate = estimate_conductance(topo, rng, trials=8)
        assert estimate > 0.1


class TestVerifyTopology:
    def test_full_report(self, topo, rng):
        report = verify_topology(topo, rng=rng, compute_spectrum=True, compute_conductance=True)
        assert report.connected
        assert report.is_expander
        assert report.lambda_second is not None and report.lambda_second < 0.95
        assert report.conductance_estimate is not None

    def test_structural_only(self, topo):
        report = verify_topology(topo, compute_spectrum=False)
        assert report.lambda_second is None
        assert report.is_expander  # falls back to connectivity
