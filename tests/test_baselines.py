"""Tests for the baseline schemes (flooding, birthday, Chord, random-probe)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.birthday import BirthdayReplicationStore
from repro.baselines.chord import ChordDHT, _hash_to_ring, _in_interval
from repro.baselines.flooding import FloodingStore
from repro.baselines.random_probe import RandomProbeSearch
from repro.core.protocol import P2PStorageSystem
from repro.net.churn import NoChurn, UniformRandomChurn
from repro.net.network import DynamicNetwork
from repro.util.rng import RngStream


def run_baseline_rounds(system, baselines, rounds):
    """Run system rounds, feeding the churn report to each baseline."""
    for _ in range(rounds):
        system.run_round()
        for baseline in baselines:
            baseline.step(system.last_churn_report)


class TestFlooding:
    def test_flood_saturates_without_churn(self):
        system = P2PStorageSystem(n=64, churn_rate=0, seed=1)
        system.run_rounds(1)
        store = FloodingStore(system.network, system.rng.protocol.spawn("f"))
        item = store.store(system.random_alive_node(require_samples=False), b"flooded")
        run_baseline_rounds(system, [store], 3 * math.ceil(math.log2(64)))
        assert store.replica_count(item.item_id) == 64
        assert store.is_available(item.item_id)
        assert store.stored_bytes(item.item_id) == 64 * 7
        assert store.total_messages() >= 64

    def test_flood_search_one_hop(self):
        system = P2PStorageSystem(n=64, churn_rate=0, seed=2)
        system.run_rounds(1)
        store = FloodingStore(system.network, system.rng.protocol.spawn("f"))
        item = store.store(system.random_alive_node(require_samples=False), b"x")
        run_baseline_rounds(system, [store], 12)
        assert store.search(system.random_alive_node(require_samples=False), item.item_id) is not None

    def test_flood_requires_alive_origin(self):
        system = P2PStorageSystem(n=64, seed=3)
        system.run_rounds(1)
        store = FloodingStore(system.network)
        with pytest.raises(ValueError):
            store.store(10**9, b"x")


class TestBirthday:
    def test_placement_count_scales(self):
        system = P2PStorageSystem(n=256, churn_rate=0, seed=4)
        system.run_rounds(1)
        store = BirthdayReplicationStore(system.network, system.rng.protocol.spawn("b"))
        assert store.placement_count >= math.sqrt(256)
        item = store.store(system.random_alive_node(require_samples=False), b"b")
        assert store.replica_count(item.item_id) == item.initial_replicas

    def test_replicas_decay_without_maintenance(self):
        system = P2PStorageSystem(n=64, churn_rate=8, seed=5)
        system.run_rounds(1)
        store = BirthdayReplicationStore(system.network, system.rng.protocol.spawn("b"))
        item = store.store(system.random_alive_node(require_samples=False), b"decays")
        initial = store.replica_count(item.item_id)
        run_baseline_rounds(system, [store], 30)
        assert store.replica_count(item.item_id) < initial

    def test_search_hits_existing_data_node(self):
        system = P2PStorageSystem(n=128, churn_rate=0, seed=6)
        system.run_rounds(1)
        store = BirthdayReplicationStore(system.network, system.rng.protocol.spawn("b"))
        item = store.store(system.random_alive_node(require_samples=False), b"hit")
        assert store.search(system.random_alive_node(require_samples=False), item.item_id) is not None

    def test_half_life_formula(self):
        system = P2PStorageSystem(n=64, churn_rate=0, seed=7)
        store = BirthdayReplicationStore(system.network, system.rng.protocol.spawn("b"))
        assert store.expected_half_life(0) == math.inf
        assert store.expected_half_life(8) == pytest.approx(math.log(2) / -math.log(1 - 8 / 64))


class TestChord:
    def test_ring_helpers(self):
        assert _in_interval(5, 3, 7, 16)
        assert not _in_interval(2, 3, 7, 16)
        assert _in_interval(1, 14, 3, 16)  # wrap-around
        assert 0 <= _hash_to_ring(42, 16) < (1 << 16)

    def test_store_and_lookup_without_churn(self):
        system = P2PStorageSystem(n=64, churn_rate=0, seed=8)
        system.run_rounds(1)
        dht = ChordDHT(system.network, system.rng.protocol.spawn("c"))
        origin = system.random_alive_node(require_samples=False)
        assert dht.store(origin, item_key=99, data=b"chord data")
        result = dht.lookup(system.random_alive_node(require_samples=False), 99)
        assert result.success
        assert result.hops <= dht.max_hops
        assert dht.replica_count(99) >= 1
        assert dht.success_rate() == 1.0
        assert dht.mean_hops() >= 0

    def test_lookup_missing_key_fails(self):
        system = P2PStorageSystem(n=64, churn_rate=0, seed=9)
        system.run_rounds(1)
        dht = ChordDHT(system.network, system.rng.protocol.spawn("c"))
        result = dht.lookup(system.random_alive_node(require_samples=False), 12345)
        assert not result.success

    def test_churn_degrades_or_repairs(self):
        system = P2PStorageSystem(n=64, churn_rate=4, seed=10)
        system.run_rounds(1)
        dht = ChordDHT(system.network, system.rng.protocol.spawn("c"))
        origin = system.random_alive_node(require_samples=False)
        dht.store(origin, item_key=7, data=b"x")
        run_baseline_rounds(system, [dht], 20)
        # The DHT should still be internally consistent: all routing state
        # points at known nodes and lookups terminate.
        result = dht.lookup(system.random_alive_node(require_samples=False), 7)
        assert result.hops <= dht.max_hops


class TestRandomProbe:
    def test_store_and_eventual_find_without_churn(self):
        system = P2PStorageSystem(n=64, churn_rate=0, seed=11)
        system.warm_up()
        search = RandomProbeSearch(
            system.network, system.sampler, system.rng.protocol.spawn("p"), copies=8, timeout=200
        )
        item = search.store(system.random_alive_node(), b"probe me")
        query = search.search(system.random_alive_node(), item.item_id)
        for _ in range(100):
            system.run_round()
            search.step(system.last_churn_report)
            if query.status != "pending":
                break
        assert query.status in ("succeeded", "failed")
        if query.status == "succeeded":
            assert query.latency is not None and query.probes_sent > 0

    def test_timeout(self):
        system = P2PStorageSystem(n=64, churn_rate=0, seed=12)
        system.warm_up()
        search = RandomProbeSearch(
            system.network, system.sampler, system.rng.protocol.spawn("p"), copies=1, timeout=2
        )
        query = search.search(system.random_alive_node(), item_id=999)  # item never stored
        run_baseline_rounds(system, [search], 5)
        assert query.status == "failed"
        assert search.success_rate() == 0.0
