"""Tests for repro.core.retrieval (Algorithm 4)."""

from __future__ import annotations

import pytest

from repro.core.protocol import P2PStorageSystem


class TestRetrievalBasics:
    def test_retrieve_succeeds_without_churn(self, churn_free_system):
        system = churn_free_system
        item = system.store(b"find me")
        system.run_rounds(3)
        op = system.retrieve(item.item_id)
        system.run_until_finished(op)
        assert op.succeeded
        assert op.latency is not None and op.latency >= 0
        assert op.holder_ids, "holders must be reported on success"
        assert all(h in system.storage.holders_of(item.item_id) or not system.network.is_alive(h) for h in op.holder_ids)

    def test_retrieval_reports_latency_within_timeout(self, churn_free_system):
        system = churn_free_system
        item = system.store(b"quick find")
        system.run_rounds(2)
        op = system.retrieve(item.item_id)
        system.run_until_finished(op)
        assert op.latency <= system.params.retrieval_timeout + 4

    def test_retrieve_missing_item_times_out(self, churn_free_system):
        system = churn_free_system
        op = system.retrieve(item_id=424242)
        system.run_until_finished(op)
        assert op.status == "failed"
        assert not op.succeeded
        assert op.latency is not None

    def test_retrieve_requires_alive_requester(self, churn_free_system):
        with pytest.raises(ValueError):
            churn_free_system.retrieval.retrieve(10**9, 1)

    def test_search_committee_dissolves_after_completion(self, churn_free_system):
        system = churn_free_system
        item = system.store(b"x")
        op = system.retrieve(item.item_id)
        system.run_until_finished(op)
        assert op.committee.dissolved

    def test_probes_are_charged(self, churn_free_system):
        system = churn_free_system
        item = system.store(b"charged probes")
        before = system.ledger.total_messages
        op = system.retrieve(item.item_id)
        system.run_until_finished(op)
        assert system.ledger.total_messages > before
        assert op.probes_sent > 0


class TestRetrievalUnderChurn:
    def test_retrieval_succeeds_with_light_churn(self):
        system = P2PStorageSystem(n=128, churn_rate=2, seed=41)
        system.warm_up()
        item = system.store(b"churn-resilient item")
        system.run_rounds(10)
        ops = [system.retrieve(item.item_id) for _ in range(3)]
        system.run_until_finished(ops)
        assert sum(op.succeeded for op in ops) >= 2

    def test_service_statistics(self):
        system = P2PStorageSystem(n=64, churn_rate=1, seed=42)
        system.warm_up()
        item = system.store(b"stats item")
        system.run_rounds(5)
        op1 = system.retrieve(item.item_id)
        op2 = system.retrieve(999_999)
        system.run_until_finished([op1, op2])
        service = system.retrieval
        assert len(service.finished_operations()) == 2
        assert 0.0 <= service.success_rate() <= 1.0
        assert service.pending_operations() == []
        if op1.succeeded:
            assert service.latencies()

    def test_multiple_concurrent_retrievals(self, churn_free_system):
        system = churn_free_system
        items = [system.store(bytes([i]) * 8) for i in range(3)]
        system.run_rounds(2)
        ops = [system.retrieve(item.item_id) for item in items]
        system.run_until_finished(ops)
        assert all(op.succeeded for op in ops)
        found = {op.item_id for op in ops if op.succeeded}
        assert found == {item.item_id for item in items}
