"""Tests for repro.core.params: derived quantities and their scaling."""

from __future__ import annotations

import math

import pytest

from repro.core.params import ProtocolParameters


class TestDerivedValues:
    def test_log_n(self):
        p = ProtocolParameters.for_network(1024)
        assert p.log_n == pytest.approx(math.log(1024))

    def test_walks_and_length_scale_with_log_n(self):
        small = ProtocolParameters.for_network(64)
        large = ProtocolParameters.for_network(65536)
        assert large.walks_per_node > small.walks_per_node
        assert large.walk_length > small.walk_length
        assert large.committee_size > small.committee_size

    def test_committee_at_least_three(self):
        assert ProtocolParameters.for_network(8).committee_size >= 3

    def test_tau_is_half_walk_length(self):
        p = ProtocolParameters.for_network(1024)
        assert p.tau == max(1, p.walk_length // 2)

    def test_refresh_periods(self):
        p = ProtocolParameters.for_network(1024)
        assert p.committee_refresh_period >= p.landmark_refresh_period
        assert p.landmark_lifetime >= 2

    def test_target_landmarks_scales_as_sqrt_n(self):
        p256 = ProtocolParameters.for_network(256)
        p4096 = ProtocolParameters.for_network(4096)
        assert p256.target_landmarks == pytest.approx(math.sqrt(256), abs=1)
        assert p4096.target_landmarks / p256.target_landmarks == pytest.approx(4.0, rel=0.1)

    def test_landmark_cap_exceeds_target(self):
        p = ProtocolParameters.for_network(1024)
        assert p.landmark_cap > p.target_landmarks

    def test_tree_depth_reaches_target(self):
        p = ProtocolParameters.for_network(4096)
        f = p.landmark_fanout
        per_root = (f ** (p.tree_depth + 1) - 1) / (f - 1)
        assert per_root * p.committee_size >= p.target_landmarks

    def test_tree_depth_paper_is_small_at_laptop_n(self):
        p = ProtocolParameters.for_network(1024)
        assert p.tree_depth_paper() <= p.tree_depth

    def test_erasure_parameters(self):
        p = ProtocolParameters.for_network(1024)
        assert p.erasure_total_pieces == p.committee_size
        assert 2 <= p.erasure_required_pieces < p.erasure_total_pieces
        assert p.erasure_redundancy >= 2

    def test_forwarding_cap_and_timeout(self):
        p = ProtocolParameters.for_network(1024)
        assert p.forwarding_cap >= 2 * p.walks_per_node
        assert p.retrieval_timeout >= p.walk_length // 2

    def test_churn_limit_matches_module_function(self):
        from repro.net.churn import paper_churn_limit

        p = ProtocolParameters.for_network(2048, delta=0.75)
        assert p.churn_limit() == paper_churn_limit(2048, 0.75)


class TestOverridesAndValidation:
    def test_with_overrides(self):
        p = ProtocolParameters.for_network(512)
        q = p.with_overrides(alpha=2.0)
        assert q.alpha == 2.0 and q.n == 512
        assert q.walks_per_node > p.walks_per_node

    def test_summary_contains_all_keys(self):
        summary = ProtocolParameters.for_network(512).summary()
        for key in ("walk_length", "committee_size", "target_landmarks", "paper_churn_limit"):
            assert key in summary

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            ProtocolParameters.for_network(4)

    def test_rejects_bad_constants(self):
        with pytest.raises(ValueError):
            ProtocolParameters.for_network(64, alpha=0)
        with pytest.raises(ValueError):
            ProtocolParameters.for_network(64, delta=-1)
        with pytest.raises(ValueError):
            ProtocolParameters.for_network(64, landmark_fanout=0)

    def test_frozen(self):
        p = ProtocolParameters.for_network(64)
        with pytest.raises(AttributeError):
            p.n = 128  # type: ignore[misc]
