"""Tests for repro.net.network: membership, churn, messaging, round structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.churn import ScheduledChurn, UniformRandomChurn
from repro.net.messages import Message, MessageKind
from repro.net.network import DynamicNetwork
from repro.util.rng import RngStream


def make_network(n=32, degree=4, adversary=None, seed=0):
    return DynamicNetwork(
        n_slots=n,
        degree=degree,
        adversary=adversary,
        adversary_rng=RngStream(seed, name="adv"),
    )


class TestMembership:
    def test_initial_population(self):
        net = make_network()
        assert np.array_equal(net.alive_uids(), np.arange(32))
        assert net.is_alive(0) and not net.is_alive(500)
        assert net.uid_at(5) == 5 and net.slot_of(5) == 5

    def test_churn_replaces_uids(self):
        adv = ScheduledChurn({0: [0, 1], 2: [0]}, n_slots=32)
        net = make_network(adversary=adv)
        report = net.begin_round()
        net.end_round()
        assert report.count == 2
        assert not net.is_alive(0) and not net.is_alive(1)
        assert net.is_alive(32) and net.is_alive(33)  # fresh uids
        assert net.uid_at(0) in (32, 33)
        assert net.birth_round(32) == 0

    def test_population_size_constant_under_churn(self):
        adv = UniformRandomChurn(32, 8, np.random.default_rng(1))
        net = make_network(adversary=adv)
        for _ in range(10):
            net.begin_round()
            net.end_round()
        assert net.alive_uids().size == 32
        assert len(set(net.alive_uids().tolist())) == 32
        assert net.total_churned == 80

    def test_age_and_birth(self):
        net = make_network()
        net.begin_round()
        net.end_round()
        net.begin_round()
        net.end_round()
        assert net.age(0) == 1
        assert net.age(9999) is None

    def test_slot_lookups(self):
        net = make_network()
        net.begin_round()
        assert net.slot_of_or_none(0) == 0
        assert net.slot_of_or_none(4242) is None
        assert net.slots_of([0, 1, 4242]) == [0, 1]
        assert net.alive_count([0, 1, 4242]) == 2
        with pytest.raises(KeyError):
            net.slot_of(4242)


class TestRoundStructure:
    def test_begin_twice_raises(self):
        net = make_network()
        net.begin_round()
        with pytest.raises(RuntimeError):
            net.begin_round()

    def test_end_without_begin_raises(self):
        net = make_network()
        with pytest.raises(RuntimeError):
            net.end_round()

    def test_topology_available_only_in_round(self):
        net = make_network()
        with pytest.raises(RuntimeError):
            _ = net.topology
        net.begin_round()
        assert net.topology.n_slots == 32

    def test_neighbors_of_uid(self):
        net = make_network()
        net.begin_round()
        nbrs = net.neighbors_of_uid(0)
        assert len(nbrs) == 4
        assert all(net.is_alive(u) for u in nbrs)
        assert net.neighbors_of_uid(9999) == []


class TestMessaging:
    def test_message_delivered_next_round(self):
        net = make_network()
        net.begin_round()
        msg = Message(sender=1, recipient=2, kind=MessageKind.GENERIC)
        assert net.send(msg) is True
        delivered = net.end_round()
        assert delivered == 1
        assert net.peek_inbox(2)[0].sender == 1
        assert [m.sender for m in net.inbox(2)] == [1]
        assert net.inbox(2) == []  # consumed

    def test_message_to_dead_node_lost(self):
        adv = ScheduledChurn({1: [2]}, n_slots=32)
        net = make_network(adversary=adv)
        net.begin_round()
        net.send(Message(sender=1, recipient=2))
        net.end_round()
        net.begin_round()  # slot 2's occupant (uid 2) churned out now
        net.send(Message(sender=1, recipient=2))
        delivered = net.end_round()
        assert delivered == 0
        assert net.inbox(2) == []

    def test_send_from_dead_uid_raises(self):
        adv = ScheduledChurn({0: [3]}, n_slots=32)
        net = make_network(adversary=adv)
        net.begin_round()
        with pytest.raises(ValueError):
            net.send(Message(sender=3, recipient=1))

    def test_send_outside_round_raises(self):
        net = make_network()
        with pytest.raises(RuntimeError):
            net.send(Message(sender=0, recipient=1))

    def test_bandwidth_charged(self):
        net = make_network()
        net.begin_round()
        net.send(Message(sender=0, recipient=1, id_count=3, payload_bytes=10))
        net.end_round()
        assert net.ledger.total_messages == 1
        assert net.ledger.total_bits > 0

    def test_mailbox_of_churned_node_cleared(self):
        adv = ScheduledChurn({1: [5]}, n_slots=32)
        net = make_network(adversary=adv)
        net.begin_round()
        net.send(Message(sender=0, recipient=5))
        net.end_round()
        net.begin_round()  # uid 5 churned out; its mailbox must be gone
        net.end_round()
        assert net.inbox(5) == []


class TestAdversaryValidation:
    def test_out_of_range_slots_rejected(self):
        class Bad:
            oblivious = True

            def slots_for_round(self, r):
                return np.array([999])

            def describe(self):
                return "bad"

        net = make_network(adversary=Bad())
        with pytest.raises(ValueError):
            net.begin_round()

    def test_duplicate_slots_rejected(self):
        class Dup:
            oblivious = True

            def slots_for_round(self, r):
                return np.array([1, 1])

            def describe(self):
                return "dup"

        net = make_network(adversary=Dup())
        with pytest.raises(ValueError):
            net.begin_round()


class TestBulkSlotLookup:
    def test_slots_of_uids_matches_scalar_lookup(self):
        adversary = UniformRandomChurn(32, 4, np.random.default_rng(9))
        net = make_network(adversary=adversary)
        for _ in range(5):
            net.begin_round()
            net.end_round()
        # Alive, dead and duplicate uids, in arbitrary order.
        query = np.array([0, 31, 7, 1000, 7, 50, 3], dtype=np.int64)
        slots, alive = net.slots_of_uids(query)
        assert slots.shape == query.shape and alive.shape == query.shape
        for uid, slot, is_alive in zip(query.tolist(), slots.tolist(), alive.tolist()):
            expected = net.slot_of_or_none(int(uid))
            assert is_alive == (expected is not None)
            if expected is not None:
                assert slot == expected

    def test_slots_of_uids_empty(self):
        net = make_network()
        slots, alive = net.slots_of_uids(np.empty(0, dtype=np.int64))
        assert slots.size == 0 and alive.size == 0

    def test_slots_of_uids_all_alive_initial(self):
        net = make_network()
        query = np.arange(32, dtype=np.int64)
        slots, alive = net.slots_of_uids(query)
        assert alive.all()
        assert np.array_equal(net.uids_at(slots), query)

    def test_alive_mask_matches_is_alive(self):
        adversary = UniformRandomChurn(32, 4, np.random.default_rng(9))
        net = make_network(adversary=adversary)
        for _ in range(5):
            net.begin_round()
            net.end_round()
            query = np.array([0, 31, 7, 1000, 7, 50, 3], dtype=np.int64)
            mask = net.alive_mask(query)
            assert mask.tolist() == [net.is_alive(int(u)) for u in query.tolist()]

    def test_alive_mask_empty(self):
        net = make_network()
        assert net.alive_mask(np.empty(0, dtype=np.int64)).size == 0
