"""Tests for repro.core.committee (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.committee import Committee, plan_refreshes


class TestCreation:
    def test_create_from_samples(self, churn_free_system):
        system = churn_free_system
        creator = system.random_alive_node()
        committee = Committee.create(system.ctx, creator_uid=creator, task="storage", item_id=1)
        assert 1 <= committee.size <= system.params.committee_size
        assert committee.task == "storage"
        assert committee.item_id == 1
        assert committee.generation == 0
        assert not committee.dissolved
        assert committee.events[0].kind == "created"

    def test_members_are_distinct_and_alive(self, churn_free_system):
        system = churn_free_system
        committee = Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="search")
        assert len(set(committee.members)) == len(committee.members)
        assert committee.alive_members() == committee.members

    def test_creation_charges_bandwidth(self, churn_free_system):
        system = churn_free_system
        before = system.ledger.total_messages
        Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="storage")
        assert system.ledger.total_messages > before

    def test_creator_without_samples_gets_small_committee(self, churn_free_system):
        system = churn_free_system
        # A brand-new committee from a node with samples always has >= 1 member;
        # the degenerate path (no samples at all) still yields the creator itself.
        creator = system.random_alive_node(require_samples=False)
        committee = Committee.create(system.ctx, creator_uid=creator, task="storage")
        assert committee.size >= 1


class TestGoodness:
    def test_is_good_thresholds(self, churn_free_system):
        system = churn_free_system
        committee = Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="storage")
        if committee.size >= system.params.committee_size // 2:
            assert committee.is_good(epsilon=0.5)
        assert committee.alive_fraction() == pytest.approx(1.0)
        assert committee.contains(committee.members[0])
        assert not committee.contains(-1)


class TestMaintenance:
    def test_refresh_changes_generation(self, churn_free_system):
        system = churn_free_system
        committee = Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="storage")
        period = system.params.committee_refresh_period
        events = []
        for _ in range(period + 1):
            system.run_round()
            event = committee.step(system.round_index)
            if event is not None:
                events.append(event)
        assert committee.generation >= 1
        assert any(e.kind in ("reformed", "kept") for e in events)

    def test_no_refresh_between_periods(self, churn_free_system):
        system = churn_free_system
        committee = Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="storage")
        system.run_round()
        assert committee.step(system.round_index) is None

    def test_handover_callback_invoked(self, churn_free_system):
        system = churn_free_system
        calls = []

        def on_handover(old, new, leader, round_index):
            calls.append((tuple(old), tuple(new), leader, round_index))

        committee = Committee.create(
            system.ctx,
            creator_uid=system.random_alive_node(),
            task="storage",
            on_handover=on_handover,
        )
        for _ in range(system.params.committee_refresh_period + 1):
            system.run_round()
            committee.step(system.round_index)
        assert calls, "handover callback should fire at the first refresh"
        old, new, leader, _ = calls[0]
        assert leader in old or leader in new

    def test_committee_survives_churn_with_maintenance(self):
        from repro.core.protocol import P2PStorageSystem

        system = P2PStorageSystem(n=64, churn_rate=2, seed=3)
        system.warm_up()
        committee = Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="storage")
        for _ in range(4 * system.params.committee_refresh_period):
            system.run_round()
            committee.step(system.round_index)
        assert not committee.dissolved
        assert len(committee.alive_members()) >= 1

    def test_dissolve(self, churn_free_system):
        system = churn_free_system
        committee = Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="search")
        committee.dissolve(system.round_index)
        assert committee.dissolved
        assert committee.step(system.round_index + 100) is None
        # Dissolving twice is a no-op.
        committee.dissolve(system.round_index)
        assert committee.events[-1].kind == "dissolved"

    def test_dead_committee_reports_death(self, churn_free_system):
        system = churn_free_system
        committee = Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="storage")
        # Simulate total wipe-out by replacing the roster with dead uids.
        committee.members = [10**9, 10**9 + 1]
        system.run_rounds(system.params.committee_refresh_period + 1)
        event = committee.step(system.round_index)
        # The step may not fall exactly on the timer; force the refresh round.
        if event is None:
            timer_round = committee._timer.next_fire(system.round_index)
            while system.round_index < timer_round:
                system.run_round()
            event = committee.step(system.round_index)
        assert event is not None and event.kind == "died"
        assert committee.dissolved


class TestBatchedRefreshPlanning:
    """plan_refreshes batches the pure queries of a round's refreshes."""

    def _due_committees(self, system, count=6):
        committees = [
            Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="storage")
            for _ in range(count)
        ]
        period = system.params.committee_refresh_period
        created = committees[0].created_round
        # Advance to the committees' common refresh round.
        while not committees[0].refresh_due(system.round_index + 1):
            system.run_round()
            if system.round_index > created + 2 * period:  # pragma: no cover - safety
                raise AssertionError("refresh round never arrived")
        return committees, system.round_index + 1

    def test_batched_plan_equals_per_committee_plans(self):
        from repro.core.protocol import P2PStorageSystem

        system = P2PStorageSystem(n=128, churn_rate=2, seed=17)
        system.warm_up()
        committees, refresh_round = self._due_committees(system)
        batched = plan_refreshes(system.ctx, committees, refresh_round)
        for committee in committees:
            single = plan_refreshes(system.ctx, [committee], refresh_round)[committee.committee_id]
            plan = batched[committee.committee_id]
            assert plan.survivors == single.survivors == committee.alive_members()
            assert plan.counts == single.counts
            assert plan.leader == single.leader
            if plan.pool is None:
                assert single.pool is None
            else:
                assert plan.pool.tolist() == single.pool.tolist()

    def test_planned_and_unplanned_refresh_are_identical(self):
        """Stepping with a pre-batched plan consumes the RNG identically."""
        from repro.core.protocol import P2PStorageSystem

        def build(seed):
            system = P2PStorageSystem(n=128, churn_rate=2, seed=seed)
            system.warm_up()
            return system

        system_a = build(23)
        system_b = build(23)
        committees_a, round_a = self._due_committees(system_a, count=4)
        committees_b, round_b = self._due_committees(system_b, count=4)
        assert round_a == round_b
        plans = plan_refreshes(system_a.ctx, committees_a, round_a)
        events_a = [c.step(round_a, plan=plans[c.committee_id]) for c in committees_a]
        events_b = [c.step(round_b) for c in committees_b]  # inline (unbatched) path
        for committee_a, committee_b, event_a, event_b in zip(
            committees_a, committees_b, events_a, events_b
        ):
            assert committee_a.members == committee_b.members
            assert (event_a is None) == (event_b is None)
            if event_a is not None:
                assert event_a.kind == event_b.kind
                assert event_a.details == event_b.details

    def test_empty_roster_plan_has_no_leader(self, churn_free_system):
        system = churn_free_system
        committee = Committee.create(system.ctx, creator_uid=system.random_alive_node(), task="storage")
        committee.members = [10**9]  # only a dead uid
        plan = plan_refreshes(system.ctx, [committee], system.round_index + 1)[committee.committee_id]
        assert plan.survivors == []
        assert plan.leader is None and plan.pool is None

    def test_plan_refreshes_empty_input(self, churn_free_system):
        assert plan_refreshes(churn_free_system.ctx, [], 5) == {}


class TestBatchedCreation:
    """create_many batches the sample gather of consecutive creations.

    The batched path must be a drop-in for a loop of ``Committee.create``
    calls: same rosters, same bandwidth charges, same protocol-RNG draws --
    the twin-system pattern proves byte-identity, not mere similarity.
    """

    def _twin_systems(self):
        from repro.core.protocol import P2PStorageSystem

        def build():
            system = P2PStorageSystem(n=128, churn_rate=2, seed=23)
            system.warm_up()
            return system

        return build(), build()

    def test_create_many_matches_consecutive_creates(self):
        system_a, system_b = self._twin_systems()
        creators = [system_a.random_alive_node() for _ in range(5)]
        assert creators == [system_b.random_alive_node() for _ in range(5)]

        singles = [
            Committee.create(system_a.ctx, creator_uid=uid, task="storage", item_id=i)
            for i, uid in enumerate(creators)
        ]
        batched = Committee.create_many(
            system_b.ctx, creators, task="storage", item_ids=list(range(len(creators)))
        )

        assert [c.members for c in batched] == [c.members for c in singles]
        assert [c.item_id for c in batched] == [c.item_id for c in singles]
        assert [c.creator_uid for c in batched] == [c.creator_uid for c in singles]
        assert system_a.ledger.summary() == system_b.ledger.summary()
        state_a = system_a.ctx.rng.generator.bit_generator.state
        state_b = system_b.ctx.rng.generator.bit_generator.state
        assert state_a == state_b

    def test_create_many_validates_lengths(self, churn_free_system):
        system = churn_free_system
        creator = system.random_alive_node()
        with pytest.raises(ValueError):
            Committee.create_many(system.ctx, [creator, creator], task="storage", item_ids=[1])
        with pytest.raises(ValueError):
            Committee.create_many(system.ctx, [creator], task="storage", on_handovers=[None, None])

    def test_create_many_empty_input(self, churn_free_system):
        assert Committee.create_many(churn_free_system.ctx, [], task="storage") == []
