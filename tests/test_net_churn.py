"""Tests for repro.net.churn: adversary schedules and the paper's churn bound."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.net.churn import (
    AdaptiveAdversary,
    BurstChurn,
    NoChurn,
    ScheduledChurn,
    SequentialSweepChurn,
    UniformRandomChurn,
    paper_churn_limit,
)


class TestPaperChurnLimit:
    def test_formula(self):
        n, delta = 4096, 0.5
        expected = 4 * n / (math.log(n) ** 1.5)
        assert paper_churn_limit(n, delta) == int(min(expected, n // 2))

    def test_monotone_in_n(self):
        assert paper_churn_limit(8192) > paper_churn_limit(1024)

    def test_capped_at_half(self):
        assert paper_churn_limit(16, delta=0.01) <= 8

    def test_small_n(self):
        assert paper_churn_limit(2) == 0


class TestNoChurn:
    def test_always_empty(self):
        adv = NoChurn()
        assert adv.slots_for_round(0).size == 0
        assert adv.slots_for_round(100).size == 0
        assert adv.oblivious
        assert "no churn" in adv.describe()


class TestUniformRandomChurn:
    def test_rate_and_uniqueness(self, rng):
        adv = UniformRandomChurn(100, 10, rng)
        slots = adv.slots_for_round(0)
        assert slots.size == 10
        assert np.unique(slots).size == 10
        assert slots.min() >= 0 and slots.max() < 100

    def test_zero_rate(self, rng):
        assert UniformRandomChurn(100, 0, rng).slots_for_round(3).size == 0

    def test_rejects_rate_above_n(self, rng):
        with pytest.raises(ValueError):
            UniformRandomChurn(10, 11, rng)

    def test_committed_schedule_reproducible(self):
        a = UniformRandomChurn(100, 5, np.random.default_rng(3))
        b = UniformRandomChurn(100, 5, np.random.default_rng(3))
        for r in range(5):
            assert np.array_equal(np.sort(a.slots_for_round(r)), np.sort(b.slots_for_round(r)))


class TestSequentialSweepChurn:
    def test_covers_everything_once_per_cycle(self, rng):
        adv = SequentialSweepChurn(20, 5, rng)
        seen = np.concatenate([adv.slots_for_round(r) for r in range(4)])
        assert np.unique(seen).size == 20

    def test_zero_rate(self, rng):
        assert SequentialSweepChurn(20, 0, rng).slots_for_round(0).size == 0


class TestBurstChurn:
    def test_quiet_between_bursts(self, rng):
        adv = BurstChurn(100, rate=2, period=5, rng=rng)
        assert adv.slots_for_round(1).size == 0
        assert adv.slots_for_round(5).size == 10  # rate * period

    def test_burst_capped_at_half(self, rng):
        adv = BurstChurn(20, rate=10, period=10, rng=rng)
        assert adv.slots_for_round(0).size <= 10


class TestScheduledChurn:
    def test_exact_schedule(self):
        adv = ScheduledChurn({3: [1, 2, 5]}, n_slots=10)
        assert np.array_equal(adv.slots_for_round(3), np.array([1, 2, 5]))
        assert adv.slots_for_round(4).size == 0

    def test_rejects_invalid_slots(self):
        with pytest.raises(ValueError):
            ScheduledChurn({0: [99]}, n_slots=10)


class TestAdaptiveAdversary:
    def test_not_oblivious(self, rng):
        adv = AdaptiveAdversary(50, 3, rng)
        assert not adv.oblivious
        assert "ADAPTIVE" in adv.describe()

    def test_targets_probe_slots_first(self, rng):
        adv = AdaptiveAdversary(50, 3, rng, target_probe=lambda: [7, 8])
        slots = adv.slots_for_round(0)
        assert slots.size == 3
        assert 7 in slots and 8 in slots

    def test_without_probe_falls_back_to_random(self, rng):
        adv = AdaptiveAdversary(50, 4, rng)
        assert adv.slots_for_round(0).size == 4

    def test_probe_can_be_set_later(self, rng):
        adv = AdaptiveAdversary(50, 1, rng)
        adv.set_target_probe(lambda: [13])
        assert adv.slots_for_round(0)[0] == 13
