"""Tests for repro.core.storage (Algorithm 3 and Section 4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import P2PStorageSystem


class TestStoreReplication:
    def test_store_places_theta_log_n_copies(self, churn_free_system):
        system = churn_free_system
        item = system.store(b"payload-bytes")
        assert system.storage.is_available(item.item_id)
        replicas = system.storage.replica_count(item.item_id)
        assert 1 <= replicas <= system.params.committee_size
        assert system.storage.read(item.item_id) == b"payload-bytes"

    def test_store_builds_landmarks_immediately(self, churn_free_system):
        system = churn_free_system
        item = system.store(b"x" * 64)
        assert system.storage.landmark_count(item.item_id) >= system.storage.replica_count(item.item_id)
        assert system.storage.is_findable(item.item_id)

    def test_storage_landmark_predicate(self, churn_free_system):
        system = churn_free_system
        item = system.store(b"x")
        holder = system.storage.holders_of(item.item_id)[0]
        assert system.storage.is_storage_landmark(item.item_id, holder)
        assert not system.storage.is_storage_landmark(item.item_id, 10**9)
        assert not system.storage.is_storage_landmark(999_999, holder)

    def test_stored_bytes_accounting(self, churn_free_system):
        system = churn_free_system
        item = system.store(b"a" * 100)
        assert system.storage.stored_bytes(item.item_id) == 100 * system.storage.replica_count(item.item_id)

    def test_store_requires_alive_owner(self, churn_free_system):
        with pytest.raises(ValueError):
            churn_free_system.storage.store(10**9, b"x")

    def test_store_requires_bytes(self, churn_free_system):
        with pytest.raises(TypeError):
            churn_free_system.storage.store(churn_free_system.random_alive_node(), "not bytes")  # type: ignore[arg-type]

    def test_duplicate_item_id_rejected(self, churn_free_system):
        system = churn_free_system
        owner = system.random_alive_node()
        system.storage.store(owner, b"x", item_id=777)
        with pytest.raises(ValueError):
            system.storage.store(owner, b"y", item_id=777)

    def test_invalid_mode_rejected(self, churn_free_system):
        with pytest.raises(ValueError):
            churn_free_system.storage.store(churn_free_system.random_alive_node(), b"x", mode="magic")


class TestMaintenanceUnderChurn:
    def test_item_survives_many_refresh_periods(self):
        system = P2PStorageSystem(n=64, churn_rate=2, seed=21)
        system.warm_up()
        item = system.store(b"persistent data")
        system.run_rounds(4 * system.params.committee_refresh_period)
        assert system.storage.is_available(item.item_id)
        assert system.storage.read(item.item_id) == b"persistent data"
        assert system.storage.items[item.item_id].handover_count >= 3

    def test_replica_count_stays_bounded(self):
        system = P2PStorageSystem(n=64, churn_rate=2, seed=22)
        system.warm_up()
        item = system.store(b"bounded")
        max_replicas = 0
        for _ in range(3 * system.params.committee_refresh_period):
            system.run_round()
            max_replicas = max(max_replicas, system.storage.replica_count(item.item_id))
        assert max_replicas <= system.params.committee_size

    def test_loss_detected_under_extreme_churn(self):
        # Half the network replaced every round: data cannot survive long.
        system = P2PStorageSystem(n=64, churn_rate=32, seed=23)
        system.warm_up()
        item = system.store(b"doomed")
        system.run_rounds(6 * system.params.committee_refresh_period)
        assert not system.storage.is_available(item.item_id) or system.storage.items[item.item_id].lost is False
        # Either the item was (correctly) marked lost, or it survived; if marked
        # lost the loss event must be recorded consistently.
        if system.storage.items[item.item_id].lost:
            assert item.item_id in system.storage.loss_events
            assert system.storage.read(item.item_id) is None

    def test_snapshot_shape(self, churn_free_system):
        system = churn_free_system
        system.store(b"a")
        system.store(b"b")
        snapshots = system.storage.snapshot(system.round_index)
        assert len(snapshots) == 2
        assert all(s.available for s in snapshots)


class TestErasureMode:
    def test_store_erasure_distributes_pieces(self):
        system = P2PStorageSystem(n=64, churn_rate=0, seed=31, storage_mode="erasure")
        system.warm_up()
        item = system.store(b"erasure coded payload" * 4)
        record = system.storage.items[item.item_id]
        assert record.mode == "erasure"
        assert len(record.pieces) >= record.coder.required_pieces
        assert system.storage.read(item.item_id) == b"erasure coded payload" * 4

    def test_erasure_uses_fewer_bytes_than_replication(self):
        data = bytes(1000)
        replicated = P2PStorageSystem(n=64, churn_rate=0, seed=32, storage_mode="replicate")
        replicated.warm_up()
        erasure = P2PStorageSystem(n=64, churn_rate=0, seed=32, storage_mode="erasure")
        erasure.warm_up()
        item_r = replicated.store(data)
        item_e = erasure.store(data)
        if replicated.storage.replica_count(item_r.item_id) >= 3:
            assert erasure.storage.stored_bytes(item_e.item_id) < replicated.storage.stored_bytes(item_r.item_id)

    def test_erasure_survives_churn_via_handover(self):
        system = P2PStorageSystem(n=64, churn_rate=1, seed=33, storage_mode="erasure")
        system.warm_up()
        item = system.store(b"survives with pieces" * 3)
        system.run_rounds(3 * system.params.committee_refresh_period)
        if system.storage.is_available(item.item_id):
            assert system.storage.read(item.item_id) == b"survives with pieces" * 3

    def test_invalid_service_mode(self, churn_free_system):
        from repro.core.storage import StorageService

        with pytest.raises(ValueError):
            StorageService(churn_free_system.ctx, mode="bogus")
