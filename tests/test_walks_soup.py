"""Tests for repro.walks.soup: token conservation, churn kills, delivery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.churn import NoChurn, ScheduledChurn, UniformRandomChurn
from repro.net.network import DynamicNetwork
from repro.util.rng import RngStream
from repro.walks.soup import WalkSoup


def make_net(n=64, degree=6, adversary=None, seed=1):
    return DynamicNetwork(n, degree=degree, adversary=adversary, adversary_rng=RngStream(seed))


def make_soup(net, walk_length=6, walks_per_node=2, seed=2, **kwargs):
    return WalkSoup(net, walk_length=walk_length, walks_per_node=walks_per_node, rng=RngStream(seed), **kwargs)


class TestInjection:
    def test_inject_from_all(self):
        net = make_net()
        soup = make_soup(net, walks_per_node=3)
        net.begin_round()
        injected = soup.inject_from_all(0)
        assert injected == 64 * 3
        assert soup.in_flight == injected
        net.end_round()

    def test_inject_from_uids_skips_dead(self):
        net = make_net()
        soup = make_soup(net)
        net.begin_round()
        count = soup.inject_from_uids(np.array([0, 1, 9999]), 0, per_node=2)
        assert count == 4
        net.end_round()

    def test_inject_empty(self):
        net = make_net()
        soup = make_soup(net)
        assert soup.inject(np.empty(0, dtype=np.int32), np.empty(0, dtype=np.int64), 0) == 0

    def test_inject_from_uids_empty_and_nonpositive(self):
        net = make_net()
        soup = make_soup(net)
        net.begin_round()
        assert soup.inject_from_uids(np.empty(0, dtype=np.int64), 0) == 0
        assert soup.inject_from_uids(np.array([0, 1]), 0, per_node=0) == 0
        assert soup.in_flight == 0
        net.end_round()

    def test_inject_from_uids_matches_python_loop_reference(self):
        """The vectorised injection pins the old per-uid loop's behaviour."""
        adv = UniformRandomChurn(64, 8, np.random.default_rng(3))
        net = make_net(adversary=adv)
        for _ in range(4):  # churn a few rounds so some original uids are dead
            net.begin_round()
            net.end_round()

        def reference(uids, per_node):
            slots, srcs = [], []
            for uid in np.asarray(uids).tolist():
                slot = net.slot_of_or_none(int(uid))
                if slot is not None:
                    slots.extend([slot] * per_node)
                    srcs.extend([int(uid)] * per_node)
            return np.asarray(slots, dtype=np.int32), np.asarray(srcs, dtype=np.int64)

        # A mix of alive, dead and repeated uids, unsorted on purpose.
        uids = np.array([63, 0, 5, 9999, 17, 5, 1_000_000, 2, 63], dtype=np.int64)
        for per_node in (1, 3):
            soup = make_soup(net)
            net.begin_round()
            expected_slots, expected_srcs = reference(uids, per_node)
            count = soup.inject_from_uids(uids, 0, per_node=per_node)
            net.end_round()
            assert count == expected_slots.size
            assert np.array_equal(soup._positions, expected_slots)
            assert np.array_equal(soup._sources, expected_srcs)


class TestConservationWithoutChurn:
    def test_every_walk_is_eventually_delivered(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net, walk_length=5, walks_per_node=2)
        delivered = 0
        for r in range(5):
            report = net.begin_round()
            soup.apply_churn(report)
            if r == 0:
                soup.inject_from_all(0, per_node=2)
            delivered += soup.step_and_collect(r).count
            net.end_round()
        assert delivered == 64 * 2
        assert soup.in_flight == 0
        assert soup.stats.survival_rate == 1.0

    def test_walks_deliver_exactly_after_walk_length_rounds(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net, walk_length=4)
        for r in range(4):
            report = net.begin_round()
            if r == 0:
                soup.inject_from_all(0, per_node=1)
            delivery = soup.step_and_collect(r)
            net.end_round()
            if r < 3:
                assert delivery.count == 0
        assert delivery.count == 64

    def test_delivery_sources_match_injection(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net, walk_length=3)
        deliveries = []
        for r in range(3):
            report = net.begin_round()
            if r == 0:
                soup.inject_from_all(0, per_node=1)
            deliveries.append(soup.step_and_collect(r))
            net.end_round()
        sources = np.sort(np.concatenate([d.source_uids for d in deliveries]))
        assert np.array_equal(sources, np.arange(64))


class TestChurnKills:
    def test_tokens_at_churned_slots_die(self):
        adv = ScheduledChurn({1: list(range(32))}, n_slots=64)
        net = make_net(adversary=adv)
        soup = make_soup(net, walk_length=10, walks_per_node=1)
        report = net.begin_round()
        soup.inject_from_all(0, per_node=1)
        soup.step_and_collect(0)
        net.end_round()
        report = net.begin_round()
        killed = soup.apply_churn(report)
        net.end_round()
        assert killed == soup.stats.killed_by_churn
        assert killed > 0
        assert soup.in_flight == 64 - killed

    def test_heavy_churn_reduces_survival(self):
        adv = UniformRandomChurn(64, 16, np.random.default_rng(0))
        net = make_net(adversary=adv)
        soup = make_soup(net, walk_length=8, walks_per_node=2)
        for r in range(8):
            report = net.begin_round()
            soup.apply_churn(report)
            if r == 0:
                soup.inject_from_all(0)
            soup.step_and_collect(r)
            net.end_round()
        assert soup.stats.survival_rate < 0.6


class TestDelivery:
    def test_by_destination_grouping(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net, walk_length=2)
        for r in range(2):
            report = net.begin_round()
            if r == 0:
                soup.inject_from_all(0, per_node=2)
            delivery = soup.step_and_collect(r)
            net.end_round()
        grouped = delivery.by_destination()
        assert sum(len(v) for v in grouped.values()) == delivery.count
        assert all(net.is_alive(d) for d in grouped)

    def test_advance_round_convenience(self):
        adv = UniformRandomChurn(64, 2, np.random.default_rng(5))
        net = make_net(adversary=adv)
        soup = make_soup(net, walk_length=4, walks_per_node=1)
        for _ in range(10):
            report = net.begin_round()
            soup.advance_round(report)
            net.end_round()
        assert soup.stats.generated == 64 * 10
        assert soup.stats.delivered > 0


class TestForwardingCap:
    def test_cap_holds_tokens(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net, walk_length=6, walks_per_node=4, enforce_forwarding_cap=True, forwarding_cap=2)
        report = net.begin_round()
        soup.inject_from_all(0, per_node=4)
        soup.step_and_collect(0)
        net.end_round()
        assert soup.stats.held_by_cap > 0

    def test_without_cap_nothing_held(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net, walk_length=6, walks_per_node=4)
        report = net.begin_round()
        soup.inject_from_all(0, per_node=4)
        soup.step_and_collect(0)
        net.end_round()
        assert soup.stats.held_by_cap == 0


class TestStatsAndHelpers:
    def test_expected_tokens_and_bits(self):
        net = make_net()
        soup = make_soup(net, walk_length=5, walks_per_node=3)
        assert soup.expected_tokens_per_node() == 15
        assert soup.estimated_bits_per_node_round() > 0

    def test_recommended_walk_length_grows_with_n(self):
        assert WalkSoup.recommended_walk_length(10_000) > WalkSoup.recommended_walk_length(100)
        assert WalkSoup.recommended_walk_length(3) >= 2

    def test_tokens_at_slot(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net)
        net.begin_round()
        soup.inject(np.array([5, 5, 7], dtype=np.int32), np.array([5, 5, 7], dtype=np.int64), 0)
        assert soup.tokens_at_slot(5) == 2
        assert soup.tokens_at_slot(6) == 0
        net.end_round()

    def test_invalid_parameters(self):
        net = make_net()
        with pytest.raises(ValueError):
            WalkSoup(net, walk_length=0, walks_per_node=1, rng=RngStream(0))
        with pytest.raises(ValueError):
            WalkSoup(net, walk_length=2, walks_per_node=0, rng=RngStream(0))


def _step_and_collect_reference(soup: WalkSoup, round_index: int):
    """The pre-trim step_and_collect, kept verbatim as the byte-identity oracle.

    The production implementation updates positions in place when every token
    moves and reuses the done mask as the keep buffer; this copy keeps the
    historical copy-then-scatter shape so the regression tests can prove the
    two are indistinguishable (deliveries, stats, internal arrays, RNG).
    """
    from repro.walks.soup import SampleDelivery

    topology = soup.network.topology
    n_tokens = soup._positions.size
    soup.stats.rounds += 1
    if n_tokens == 0:
        return SampleDelivery(
            round_index=round_index,
            destination_uids=np.empty(0, dtype=np.int64),
            source_uids=np.empty(0, dtype=np.int64),
            birth_rounds=np.empty(0, dtype=np.int32),
        )

    move_mask = np.ones(n_tokens, dtype=bool)
    if soup.enforce_forwarding_cap:
        move_mask = soup._forwarding_mask()
        soup.stats.held_by_cap += int(n_tokens - move_mask.sum())

    if soup.track_bandwidth:
        counts = np.bincount(soup._positions, minlength=soup.network.n_slots)
        soup.stats.max_tokens_per_node_round = max(
            soup.stats.max_tokens_per_node_round, int(counts.max())
        )
        soup.stats.tokens_per_node_round_sum += float(counts.mean())

    new_positions = soup._positions.copy()
    moving = np.nonzero(move_mask)[0]
    stepped = topology.step_walks(soup._positions[moving], soup._rng.generator)
    new_positions[moving] = stepped
    soup._positions = new_positions
    soup._steps[moving] += 1
    soup.stats.steps_taken += int(moving.size)

    done = soup._steps >= soup.walk_length
    n_done = int(done.sum())
    if n_done == 0:
        return SampleDelivery(
            round_index=round_index,
            destination_uids=np.empty(0, dtype=np.int64),
            source_uids=np.empty(0, dtype=np.int64),
            birth_rounds=np.empty(0, dtype=np.int32),
        )

    dest_slots = soup._positions[done]
    delivery = SampleDelivery(
        round_index=round_index,
        destination_uids=soup.network.uids_at(dest_slots),
        source_uids=soup._sources[done].copy(),
        birth_rounds=soup._births[done].copy(),
    )
    keep = ~done
    soup._positions = soup._positions[keep]
    soup._sources = soup._sources[keep]
    soup._births = soup._births[keep]
    soup._steps = soup._steps[keep]
    soup.stats.delivered += n_done
    return delivery


class TestStepAndCollectMatchesReference:
    """The allocation-trimmed step is byte-identical to the historical one."""

    def _twin_soups(self, churn_rate: int, seed: int, **soup_kwargs):
        def make():
            adversary = (
                UniformRandomChurn(64, churn_rate, np.random.default_rng(seed))
                if churn_rate
                else None
            )
            net = make_net(adversary=adversary, seed=seed)
            return net, make_soup(net, walk_length=5, walks_per_node=2, seed=seed + 1, **soup_kwargs)

        return make(), make()

    def _assert_deliveries_equal(self, a, b):
        assert a.round_index == b.round_index
        for field in ("destination_uids", "source_uids", "birth_rounds"):
            x, y = getattr(a, field), getattr(b, field)
            assert x.dtype == y.dtype
            assert np.array_equal(x, y)

    @pytest.mark.parametrize(
        "churn_rate,soup_kwargs",
        [
            (0, {}),
            (4, {}),
            (4, {"enforce_forwarding_cap": True, "forwarding_cap": 3}),
            (2, {"track_bandwidth": False}),
        ],
    )
    def test_rounds_byte_identical(self, churn_rate, soup_kwargs):
        (net_new, soup_new), (net_ref, soup_ref) = self._twin_soups(churn_rate, 9, **soup_kwargs)
        for r in range(14):
            report_new = net_new.begin_round()
            report_ref = net_ref.begin_round()
            soup_new.apply_churn(report_new)
            soup_ref.apply_churn(report_ref)
            soup_new.inject_from_all(r)
            soup_ref.inject_from_all(r)
            delivery_new = soup_new.step_and_collect(r)
            delivery_ref = _step_and_collect_reference(soup_ref, r)
            net_new.end_round()
            net_ref.end_round()
            self._assert_deliveries_equal(delivery_new, delivery_ref)
            assert soup_new.stats == soup_ref.stats
            for field in ("_positions", "_sources", "_births", "_steps"):
                assert np.array_equal(getattr(soup_new, field), getattr(soup_ref, field))
        # Identical RNG consumption throughout.
        assert soup_new._rng.generator.random() == soup_ref._rng.generator.random()

    def test_empty_soup_round(self):
        (net_new, soup_new), (net_ref, soup_ref) = self._twin_soups(0, 3)
        net_new.begin_round()
        net_ref.begin_round()
        delivery_new = soup_new.step_and_collect(0)
        delivery_ref = _step_and_collect_reference(soup_ref, 0)
        net_new.end_round()
        net_ref.end_round()
        self._assert_deliveries_equal(delivery_new, delivery_ref)
        assert soup_new.stats == soup_ref.stats
