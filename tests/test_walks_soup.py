"""Tests for repro.walks.soup: token conservation, churn kills, delivery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.churn import NoChurn, ScheduledChurn, UniformRandomChurn
from repro.net.network import DynamicNetwork
from repro.util.rng import RngStream
from repro.walks.soup import WalkSoup


def make_net(n=64, degree=6, adversary=None, seed=1):
    return DynamicNetwork(n, degree=degree, adversary=adversary, adversary_rng=RngStream(seed))


def make_soup(net, walk_length=6, walks_per_node=2, seed=2, **kwargs):
    return WalkSoup(net, walk_length=walk_length, walks_per_node=walks_per_node, rng=RngStream(seed), **kwargs)


class TestInjection:
    def test_inject_from_all(self):
        net = make_net()
        soup = make_soup(net, walks_per_node=3)
        net.begin_round()
        injected = soup.inject_from_all(0)
        assert injected == 64 * 3
        assert soup.in_flight == injected
        net.end_round()

    def test_inject_from_uids_skips_dead(self):
        net = make_net()
        soup = make_soup(net)
        net.begin_round()
        count = soup.inject_from_uids(np.array([0, 1, 9999]), 0, per_node=2)
        assert count == 4
        net.end_round()

    def test_inject_empty(self):
        net = make_net()
        soup = make_soup(net)
        assert soup.inject(np.empty(0, dtype=np.int32), np.empty(0, dtype=np.int64), 0) == 0

    def test_inject_from_uids_empty_and_nonpositive(self):
        net = make_net()
        soup = make_soup(net)
        net.begin_round()
        assert soup.inject_from_uids(np.empty(0, dtype=np.int64), 0) == 0
        assert soup.inject_from_uids(np.array([0, 1]), 0, per_node=0) == 0
        assert soup.in_flight == 0
        net.end_round()

    def test_inject_from_uids_matches_python_loop_reference(self):
        """The vectorised injection pins the old per-uid loop's behaviour."""
        adv = UniformRandomChurn(64, 8, np.random.default_rng(3))
        net = make_net(adversary=adv)
        for _ in range(4):  # churn a few rounds so some original uids are dead
            net.begin_round()
            net.end_round()

        def reference(uids, per_node):
            slots, srcs = [], []
            for uid in np.asarray(uids).tolist():
                slot = net.slot_of_or_none(int(uid))
                if slot is not None:
                    slots.extend([slot] * per_node)
                    srcs.extend([int(uid)] * per_node)
            return np.asarray(slots, dtype=np.int32), np.asarray(srcs, dtype=np.int64)

        # A mix of alive, dead and repeated uids, unsorted on purpose.
        uids = np.array([63, 0, 5, 9999, 17, 5, 1_000_000, 2, 63], dtype=np.int64)
        for per_node in (1, 3):
            soup = make_soup(net)
            net.begin_round()
            expected_slots, expected_srcs = reference(uids, per_node)
            count = soup.inject_from_uids(uids, 0, per_node=per_node)
            net.end_round()
            assert count == expected_slots.size
            assert np.array_equal(soup._positions, expected_slots)
            assert np.array_equal(soup._sources, expected_srcs)


class TestConservationWithoutChurn:
    def test_every_walk_is_eventually_delivered(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net, walk_length=5, walks_per_node=2)
        delivered = 0
        for r in range(5):
            report = net.begin_round()
            soup.apply_churn(report)
            if r == 0:
                soup.inject_from_all(0, per_node=2)
            delivered += soup.step_and_collect(r).count
            net.end_round()
        assert delivered == 64 * 2
        assert soup.in_flight == 0
        assert soup.stats.survival_rate == 1.0

    def test_walks_deliver_exactly_after_walk_length_rounds(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net, walk_length=4)
        for r in range(4):
            report = net.begin_round()
            if r == 0:
                soup.inject_from_all(0, per_node=1)
            delivery = soup.step_and_collect(r)
            net.end_round()
            if r < 3:
                assert delivery.count == 0
        assert delivery.count == 64

    def test_delivery_sources_match_injection(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net, walk_length=3)
        deliveries = []
        for r in range(3):
            report = net.begin_round()
            if r == 0:
                soup.inject_from_all(0, per_node=1)
            deliveries.append(soup.step_and_collect(r))
            net.end_round()
        sources = np.sort(np.concatenate([d.source_uids for d in deliveries]))
        assert np.array_equal(sources, np.arange(64))


class TestChurnKills:
    def test_tokens_at_churned_slots_die(self):
        adv = ScheduledChurn({1: list(range(32))}, n_slots=64)
        net = make_net(adversary=adv)
        soup = make_soup(net, walk_length=10, walks_per_node=1)
        report = net.begin_round()
        soup.inject_from_all(0, per_node=1)
        soup.step_and_collect(0)
        net.end_round()
        report = net.begin_round()
        killed = soup.apply_churn(report)
        net.end_round()
        assert killed == soup.stats.killed_by_churn
        assert killed > 0
        assert soup.in_flight == 64 - killed

    def test_heavy_churn_reduces_survival(self):
        adv = UniformRandomChurn(64, 16, np.random.default_rng(0))
        net = make_net(adversary=adv)
        soup = make_soup(net, walk_length=8, walks_per_node=2)
        for r in range(8):
            report = net.begin_round()
            soup.apply_churn(report)
            if r == 0:
                soup.inject_from_all(0)
            soup.step_and_collect(r)
            net.end_round()
        assert soup.stats.survival_rate < 0.6


class TestDelivery:
    def test_by_destination_grouping(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net, walk_length=2)
        for r in range(2):
            report = net.begin_round()
            if r == 0:
                soup.inject_from_all(0, per_node=2)
            delivery = soup.step_and_collect(r)
            net.end_round()
        grouped = delivery.by_destination()
        assert sum(len(v) for v in grouped.values()) == delivery.count
        assert all(net.is_alive(d) for d in grouped)

    def test_advance_round_convenience(self):
        adv = UniformRandomChurn(64, 2, np.random.default_rng(5))
        net = make_net(adversary=adv)
        soup = make_soup(net, walk_length=4, walks_per_node=1)
        for _ in range(10):
            report = net.begin_round()
            soup.advance_round(report)
            net.end_round()
        assert soup.stats.generated == 64 * 10
        assert soup.stats.delivered > 0


class TestForwardingCap:
    def test_cap_holds_tokens(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net, walk_length=6, walks_per_node=4, enforce_forwarding_cap=True, forwarding_cap=2)
        report = net.begin_round()
        soup.inject_from_all(0, per_node=4)
        soup.step_and_collect(0)
        net.end_round()
        assert soup.stats.held_by_cap > 0

    def test_without_cap_nothing_held(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net, walk_length=6, walks_per_node=4)
        report = net.begin_round()
        soup.inject_from_all(0, per_node=4)
        soup.step_and_collect(0)
        net.end_round()
        assert soup.stats.held_by_cap == 0


class TestStatsAndHelpers:
    def test_expected_tokens_and_bits(self):
        net = make_net()
        soup = make_soup(net, walk_length=5, walks_per_node=3)
        assert soup.expected_tokens_per_node() == 15
        assert soup.estimated_bits_per_node_round() > 0

    def test_recommended_walk_length_grows_with_n(self):
        assert WalkSoup.recommended_walk_length(10_000) > WalkSoup.recommended_walk_length(100)
        assert WalkSoup.recommended_walk_length(3) >= 2

    def test_tokens_at_slot(self):
        net = make_net(adversary=NoChurn())
        soup = make_soup(net)
        net.begin_round()
        soup.inject(np.array([5, 5, 7], dtype=np.int32), np.array([5, 5, 7], dtype=np.int64), 0)
        assert soup.tokens_at_slot(5) == 2
        assert soup.tokens_at_slot(6) == 0
        net.end_round()

    def test_invalid_parameters(self):
        net = make_net()
        with pytest.raises(ValueError):
            WalkSoup(net, walk_length=0, walks_per_node=1, rng=RngStream(0))
        with pytest.raises(ValueError):
            WalkSoup(net, walk_length=2, walks_per_node=0, rng=RngStream(0))
