"""Shared fixtures for the test suite.

Fixtures deliberately use small networks (n = 64..128) so the whole suite
runs in seconds; the larger, statistically meaningful configurations live in
``benchmarks/`` and the experiment modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.context import ProtocolContext
from repro.core.params import ProtocolParameters
from repro.core.protocol import P2PStorageSystem
from repro.net.churn import UniformRandomChurn
from repro.net.network import DynamicNetwork
from repro.util.rng import RngStream, SplitRng
from repro.util.simlog import SimulationLog
from repro.walks.sampler import NodeSampler
from repro.walks.soup import WalkSoup


@pytest.fixture
def rng() -> np.random.Generator:
    """A plain seeded NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def split_rng() -> SplitRng:
    """An adversary/protocol RNG split with a fixed seed."""
    return SplitRng(seed=2023)


@pytest.fixture
def small_network(split_rng: SplitRng) -> DynamicNetwork:
    """A 64-node dynamic network with 2 churn replacements per round."""
    adversary = UniformRandomChurn(64, 2, split_rng.adversary.generator)
    return DynamicNetwork(
        n_slots=64,
        degree=6,
        adversary=adversary,
        adversary_rng=split_rng.adversary.spawn("topology"),
    )


@pytest.fixture
def static_network(split_rng: SplitRng) -> DynamicNetwork:
    """A 64-node network without churn."""
    return DynamicNetwork(n_slots=64, degree=6, adversary_rng=split_rng.adversary.spawn("topo"))


@pytest.fixture
def warmed_system() -> P2PStorageSystem:
    """A small, warmed-up end-to-end system with light churn."""
    system = P2PStorageSystem(n=64, churn_rate=1, seed=7)
    system.warm_up()
    return system


@pytest.fixture
def churn_free_system() -> P2PStorageSystem:
    """A small, warmed-up system with no churn (deterministic liveness)."""
    system = P2PStorageSystem(n=64, churn_rate=0, seed=11)
    system.warm_up()
    return system


@pytest.fixture
def protocol_context(warmed_system: P2PStorageSystem) -> ProtocolContext:
    """The shared protocol context of the warmed system."""
    return warmed_system.ctx
