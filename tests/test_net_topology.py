"""Tests for repro.net.topology: matchings, regularity, walk stepping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.topology import RegularTopology, TopologySequence, random_matching, union_of_matchings


class TestRandomMatching:
    def test_is_involution_without_fixed_points(self, rng):
        partner = random_matching(100, rng)
        idx = np.arange(100)
        assert np.array_equal(partner[partner], idx)
        assert np.all(partner != idx)

    def test_requires_even(self, rng):
        with pytest.raises(ValueError):
            random_matching(7, rng)

    def test_distribution_varies(self, rng):
        a = random_matching(50, rng)
        b = random_matching(50, rng)
        assert not np.array_equal(a, b)


class TestUnionOfMatchings:
    def test_shape_and_range(self, rng):
        table = union_of_matchings(64, 5, rng)
        assert table.shape == (64, 5)
        assert table.min() >= 0 and table.max() < 64

    def test_each_port_is_matching(self, rng):
        table = union_of_matchings(32, 4, rng)
        idx = np.arange(32)
        for j in range(4):
            col = table[:, j]
            assert np.array_equal(col[col], idx)
            assert np.all(col != idx)


class TestRegularTopology:
    def test_random_is_regular(self, rng):
        topo = RegularTopology.random(64, 6, rng)
        assert topo.n_slots == 64 and topo.degree == 6
        assert topo.is_regular()
        assert np.all(topo.degree_sequence() == 6)

    def test_adjacency_matrix_symmetric_and_regular(self, rng):
        topo = RegularTopology.random(32, 4, rng)
        adj = topo.adjacency_matrix()
        assert np.allclose(adj, adj.T)
        assert np.allclose(adj.sum(axis=1), 4)

    def test_neighbors_of(self, rng):
        topo = RegularTopology.random(16, 3, rng)
        nbrs = topo.neighbors_of(0)
        assert nbrs.shape == (3,)
        # port symmetry: I appear among each neighbour's row at the same port
        for j, v in enumerate(nbrs):
            assert topo.neighbors[int(v), j] == 0

    def test_step_walks_moves_to_neighbors(self, rng):
        topo = RegularTopology.random(64, 6, rng)
        positions = np.array([0, 5, 10, 63], dtype=np.int32)
        stepped = topo.step_walks(positions, rng)
        assert stepped.shape == positions.shape
        for before, after in zip(positions, stepped):
            assert after in topo.neighbors_of(int(before))

    def test_step_walks_empty(self, rng):
        topo = RegularTopology.random(16, 3, rng)
        out = topo.step_walks(np.empty(0, dtype=np.int32), rng)
        assert out.size == 0

    def test_edges_iteration_count(self, rng):
        topo = RegularTopology.random(20, 4, rng)
        edges = list(topo.edges())
        # 4-regular multigraph on 20 slots: 40 undirected edges (with multiplicity).
        assert len(edges) == 40

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            RegularTopology(neighbors=np.zeros(10, dtype=np.int32))


class TestTopologySequence:
    def test_generates_in_order(self, rng):
        seq = TopologySequence(32, 4, rng, regenerate_every=1)
        t0 = seq.topology_for_round(0)
        t1 = seq.topology_for_round(1)
        assert t0.round_index == 0 and t1.round_index == 1
        assert not np.array_equal(t0.neighbors, t1.neighbors)

    def test_same_round_cached(self, rng):
        seq = TopologySequence(32, 4, rng)
        a = seq.topology_for_round(0)
        b = seq.topology_for_round(0)
        assert a is b

    def test_static_mode_keeps_edges(self, rng):
        seq = TopologySequence(32, 4, rng, regenerate_every=0)
        a = seq.topology_for_round(0)
        b = seq.topology_for_round(5)
        assert np.array_equal(a.neighbors, b.neighbors)

    def test_committed_sequence_is_reproducible(self):
        seq1 = TopologySequence(32, 4, np.random.default_rng(1))
        seq2 = TopologySequence(32, 4, np.random.default_rng(1))
        for r in range(5):
            assert np.array_equal(
                seq1.topology_for_round(r).neighbors, seq2.topology_for_round(r).neighbors
            )
