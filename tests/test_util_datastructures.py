"""Tests for repro.util.datastructures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.datastructures import BoundedCounter, IndexedSet, RoundTimer, SlidingWindow


class TestIndexedSet:
    def test_add_and_contains(self):
        s = IndexedSet([1, 2, 3])
        s.add(4)
        assert 4 in s and 1 in s and 99 not in s
        assert len(s) == 4

    def test_add_is_idempotent(self):
        s = IndexedSet()
        s.add(1)
        s.add(1)
        assert len(s) == 1

    def test_discard_present_and_absent(self):
        s = IndexedSet([1, 2, 3])
        assert s.discard(2) is True
        assert s.discard(2) is False
        assert sorted(s) == [1, 3]

    def test_discard_last_element(self):
        s = IndexedSet([5])
        assert s.discard(5)
        assert len(s) == 0

    def test_sample_without_replacement_unique(self, rng):
        s = IndexedSet(range(50))
        sample = s.sample(rng, k=20, replace=False)
        assert len(sample) == len(set(sample)) == 20
        assert all(x in s for x in sample)

    def test_sample_more_than_size_returns_all(self, rng):
        s = IndexedSet(range(5))
        assert sorted(s.sample(rng, k=50)) == list(range(5))

    def test_sample_with_replacement_allows_duplicates(self, rng):
        s = IndexedSet([1])
        assert s.sample(rng, k=3, replace=True) == [1, 1, 1]

    def test_sample_one_empty(self, rng):
        assert IndexedSet().sample_one(rng) is None
        assert IndexedSet().sample(rng, 3) == []

    def test_sample_roughly_uniform(self, rng):
        s = IndexedSet(range(10))
        counts = np.zeros(10)
        for _ in range(5000):
            counts[s.sample_one(rng)] += 1
        assert counts.min() > 300  # each element ~500 expected


class TestSlidingWindow:
    def test_eviction(self):
        w = SlidingWindow(maxlen=3)
        w.extend([1, 2, 3, 4])
        assert w.items() == [2, 3, 4]
        assert len(w) == 3

    def test_push_and_clear(self):
        w = SlidingWindow(2)
        w.push("a")
        assert list(w) == ["a"]
        w.clear()
        assert len(w) == 0

    def test_rejects_nonpositive_maxlen(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)


class TestBoundedCounter:
    def test_increment_within_limit(self):
        c = BoundedCounter(limit=3)
        assert c.try_increment() and c.try_increment(2)
        assert c.remaining == 0

    def test_increment_beyond_limit_fails(self):
        c = BoundedCounter(limit=1)
        assert c.try_increment()
        assert not c.try_increment()
        assert c.count == 1

    def test_reset(self):
        c = BoundedCounter(limit=1, count=1)
        c.reset()
        assert c.count == 0 and c.remaining == 1


class TestRoundTimer:
    def test_fires_on_period(self):
        t = RoundTimer(start=10, period=5)
        assert t.fires_at(10) and t.fires_at(15) and t.fires_at(25)
        assert not t.fires_at(12)
        assert not t.fires_at(9)

    def test_periods_elapsed(self):
        t = RoundTimer(start=0, period=4)
        assert t.periods_elapsed(0) == 0
        assert t.periods_elapsed(7) == 1
        assert t.periods_elapsed(8) == 2
        assert t.periods_elapsed(-1) == 0

    def test_next_fire(self):
        t = RoundTimer(start=3, period=4)
        assert t.next_fire(0) == 3
        assert t.next_fire(3) == 3
        assert t.next_fire(4) == 7
        assert t.next_fire(7) == 7

    def test_offset(self):
        t = RoundTimer(start=0, period=10, offset=2)
        assert t.fires_at(2) and t.fires_at(12)
        assert not t.fires_at(10)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            RoundTimer(start=0, period=0)
