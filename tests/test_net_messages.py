"""Tests for repro.net.messages: construction and size accounting."""

from __future__ import annotations

from repro.net.messages import (
    CommitteeInvite,
    CommitteeRoster,
    ItemTransfer,
    LandmarkRecruit,
    LookupHit,
    LookupProbe,
    Message,
    MessageKind,
    PieceTransfer,
    StoreAck,
    StoreRequest,
    WalkCountReport,
)


def test_base_message_defaults():
    msg = Message(sender=1, recipient=2)
    assert msg.kind is MessageKind.GENERIC
    assert msg.id_count == 2
    assert msg.payload_bytes == 0


def test_committee_invite_carries_roster():
    msg = CommitteeInvite.create(
        sender=1, recipient=2, roster=(2, 3, 4), committee_id=7, generation=1, task="storage", item_id=9
    )
    assert msg.kind is MessageKind.COMMITTEE_INVITE
    assert msg.payload["roster"] == (2, 3, 4)
    assert msg.payload["task"] == "storage"
    assert msg.id_count == 2 + 3


def test_committee_roster():
    msg = CommitteeRoster.create(sender=1, recipient=2, roster=(5, 6), committee_id=3)
    assert msg.payload["committee_id"] == 3
    assert msg.id_count == 4


def test_walk_count_report():
    msg = WalkCountReport.create(sender=1, recipient=2, walk_count=17, committee_id=3)
    assert msg.payload["walk_count"] == 17
    assert msg.kind is MessageKind.WALK_COUNT_REPORT


def test_landmark_recruit_size_scales_with_roster():
    small = LandmarkRecruit.create(1, 2, committee_roster=(3,), item_id=1, depth=1, expires_round=10, role="storage")
    large = LandmarkRecruit.create(1, 2, committee_roster=tuple(range(10)), item_id=1, depth=1, expires_round=10, role="storage")
    assert large.id_count > small.id_count
    assert small.payload["role"] == "storage"


def test_store_request_and_ack():
    req = StoreRequest.create(sender=1, recipient=2, item_id=5, payload_bytes=100, piece_index=3)
    ack = StoreAck.create(sender=2, recipient=1, item_id=5)
    assert req.payload_bytes == 100
    assert req.payload["piece_index"] == 3
    assert ack.payload["item_id"] == 5


def test_lookup_probe_and_hit():
    probe = LookupProbe.create(sender=1, recipient=2, item_id=5, origin=9)
    hit = LookupHit.create(sender=2, recipient=9, item_id=5, holder_ids=(10, 11))
    assert probe.payload["origin"] == 9
    assert hit.payload["holder_ids"] == (10, 11)
    assert hit.id_count == 3 + 2


def test_transfers_account_payload():
    item = ItemTransfer.create(sender=1, recipient=2, item_id=5, size_bytes=512)
    piece = PieceTransfer.create(sender=1, recipient=2, item_id=5, piece_index=2, size_bytes=64)
    assert item.payload_bytes == 512
    assert piece.payload_bytes == 64
    assert piece.payload["piece_index"] == 2


def test_messages_are_frozen():
    msg = Message(sender=1, recipient=2)
    try:
        msg.sender = 5  # type: ignore[misc]
        raised = False
    except AttributeError:
        raised = True
    assert raised
