"""Unit tests for the benchmark-regression comparator (repro.util.benchcompare).

CI's benchmark gate runs :mod:`benchmarks.compare_baseline` against the
committed ``BENCH_pr5.json``; these tests pin the comparator's semantics with
synthetic summary documents so the gate's behaviour is itself regression
protected.
"""

from __future__ import annotations

import json

import pytest

from repro.util.benchcompare import (
    DEFAULT_MAX_SLOWDOWN,
    MAX_SLOWDOWN_ENV,
    compare,
    compare_files,
    main,
    resolve_max_slowdown,
)


def _doc(**means):
    return {"benchmarks": [{"name": k, "mean_seconds": v} for k, v in means.items()]}


class TestCompare:
    def test_identical_summaries_pass(self):
        doc = _doc(a=0.2, b=1.5)
        result = compare(doc, doc)
        assert result.ok
        assert result.regressions == []
        assert "PASS" in result.report()

    def test_slowdown_beyond_threshold_fails(self):
        result = compare(_doc(a=0.2), _doc(a=0.3))
        assert not result.ok
        (name, base, cur, ratio) = result.regressions[0]
        assert name == "a"
        assert base == pytest.approx(0.2)
        assert cur == pytest.approx(0.3)
        assert ratio == pytest.approx(1.5)
        assert "FAIL a" in result.report()

    def test_slowdown_within_threshold_passes(self):
        result = compare(_doc(a=0.2), _doc(a=0.2 * 1.2))
        assert result.ok

    def test_speedup_passes(self):
        result = compare(_doc(a=0.5), _doc(a=0.1))
        assert result.ok

    def test_fast_benchmarks_below_floor_are_skipped(self):
        # 1 ms baseline doubling to 2 ms is noise, not a regression.
        result = compare(_doc(tiny=0.001), _doc(tiny=0.002))
        assert result.ok
        assert "SKIP tiny" in result.report()

    def test_new_and_removed_benchmarks_never_fail(self):
        result = compare(_doc(gone=0.4), _doc(new=0.4))
        assert result.ok
        report = result.report()
        assert "SKIP gone" in report
        assert "NEW  new" in report

    def test_custom_threshold(self):
        base, cur = _doc(a=0.2), _doc(a=0.35)
        assert not compare(base, cur, max_slowdown=1.25).ok
        assert compare(base, cur, max_slowdown=2.0).ok

    def test_malformed_documents_rejected(self):
        with pytest.raises(ValueError, match="benchmarks"):
            compare({}, _doc(a=0.2))
        with pytest.raises(ValueError, match="malformed"):
            compare({"benchmarks": [{"name": "a"}]}, _doc(a=0.2))


class TestEnvOverride:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(MAX_SLOWDOWN_ENV, raising=False)
        assert resolve_max_slowdown() == DEFAULT_MAX_SLOWDOWN

    def test_env_value_used(self, monkeypatch):
        monkeypatch.setenv(MAX_SLOWDOWN_ENV, "1.5")
        assert resolve_max_slowdown() == pytest.approx(1.5)

    def test_bad_env_values_rejected(self, monkeypatch):
        monkeypatch.setenv(MAX_SLOWDOWN_ENV, "fast")
        with pytest.raises(ValueError, match="float"):
            resolve_max_slowdown()
        monkeypatch.setenv(MAX_SLOWDOWN_ENV, "0.5")
        with pytest.raises(ValueError, match=">= 1.0"):
            resolve_max_slowdown()


class TestCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return path

    def test_compare_files_and_main_pass(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc(a=0.2))
        cur = self._write(tmp_path, "cur.json", _doc(a=0.21))
        assert compare_files(base, cur).ok
        code = main(["--baseline", str(base), "--current", str(cur)])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_main_fails_on_regression(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc(a=0.2))
        cur = self._write(tmp_path, "cur.json", _doc(a=0.5))
        code = main(["--baseline", str(base), "--current", str(cur), "--max-slowdown", "1.25"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
