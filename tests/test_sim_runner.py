"""Tests for repro.sim.runner: parallel trial execution, grids, sweeps.

The determinism tests are the load-bearing ones: the whole point of
``TrialRunner`` is that ``workers=4`` produces byte-identical payloads to
``workers=1``, so every experiment can be parallelised without changing a
single reported number.  Trial functions used with workers > 1 live at module
level so they can be pickled into worker processes.
"""

from __future__ import annotations

import pickle
from functools import partial

import pytest

from repro.experiments import exp01_soup_mixing, exp05_storage_availability
from repro.sim.experiment import ExperimentConfig, run_trials
from repro.sim.runner import (
    CellResult,
    GridSpec,
    Sweep,
    SweepCell,
    SweepResult,
    TrialRunner,
    WorkerError,
)


def _echo_trial(config: ExperimentConfig, seed: int) -> dict:
    return {"seed": seed, "n": config.n, "churn": config.resolved_churn_rate()}


def _failing_trial(config: ExperimentConfig, seed: int) -> dict:
    if seed == 2:
        raise ValueError(f"boom at seed {seed}")
    return {"seed": seed}


def _payload_bytes(results) -> list:
    """Serialise each payload separately (timings legitimately differ across
    runs, and pickling payloads one-by-one avoids cross-payload memo
    references that would make byte comparison identity-sensitive)."""
    return [pickle.dumps(r.payload) for r in results]


class TestTrialRunner:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            TrialRunner(workers=0)

    def test_workers_none_uses_cpu_count(self):
        assert TrialRunner(workers=None).workers >= 1

    def test_sequential_and_parallel_results_in_seed_order(self):
        config = ExperimentConfig(name="T", n=64, seeds=(5, 3, 8))
        for workers in (1, 3):
            results = TrialRunner(workers=workers).run(config, _echo_trial)
            assert [r.seed for r in results] == [5, 3, 8]
            assert [r.payload["seed"] for r in results] == [5, 3, 8]
            assert all(r.elapsed_seconds >= 0 for r in results)

    def test_explicit_seeds_override_config(self):
        config = ExperimentConfig(name="T", n=64, seeds=(0, 1))
        results = TrialRunner(workers=2).run(config, _echo_trial, seeds=(9, 7))
        assert [r.seed for r in results] == [9, 7]

    def test_non_picklable_trial_falls_back_to_sequential(self):
        config = ExperimentConfig(name="T", n=64, seeds=(0, 1, 2))
        captured = []

        def closure_trial(c, s):
            captured.append(s)
            return {"seed": s}

        results = TrialRunner(workers=4).run(config, closure_trial)
        # A closure cannot cross a process boundary; the fallback ran it
        # in-process (hence the side effect is visible) with correct results.
        assert captured == [0, 1, 2]
        assert [r.payload["seed"] for r in results] == [0, 1, 2]

    def test_empty_seed_list(self):
        config = ExperimentConfig(name="T", n=64, seeds=())
        assert TrialRunner(workers=2).run(config, _echo_trial) == []


class TestWorkerErrorPropagation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_trial_error_becomes_worker_error(self, workers):
        config = ExperimentConfig(name="T-fail", n=64, seeds=(0, 1, 2, 3))
        with pytest.raises(WorkerError) as excinfo:
            TrialRunner(workers=workers).run(config, _failing_trial)
        assert excinfo.value.config_name == "T-fail"
        assert excinfo.value.seed == 2
        assert "ValueError" in str(excinfo.value)
        assert "boom at seed 2" in str(excinfo.value)

    def test_remote_traceback_attached(self):
        config = ExperimentConfig(name="T-fail", n=64, seeds=(2,))
        with pytest.raises(WorkerError) as excinfo:
            TrialRunner(workers=2).run(config, _failing_trial)
        assert "_failing_trial" in excinfo.value.remote_traceback


class TestRunTrialsIntegration:
    def test_run_trials_uses_config_workers(self):
        config = ExperimentConfig(name="T", n=64, seeds=(0, 1, 2), workers=2)
        results = run_trials(config, _echo_trial)
        assert [r.seed for r in results] == [0, 1, 2]

    def test_run_trials_workers_argument_overrides(self):
        config = ExperimentConfig(name="T", n=64, seeds=(0, 1), workers=1)
        sequential = run_trials(config, _echo_trial)
        parallel = run_trials(config, _echo_trial, workers=2)
        assert _payload_bytes(sequential) == _payload_bytes(parallel)

    def test_invalid_workers_rejected_by_config(self):
        with pytest.raises(ValueError):
            ExperimentConfig(name="T", n=64, workers=0)


class TestGridSpec:
    def test_product_expansion_order(self):
        grid = GridSpec.product({"n": (64, 128), "storage_mode": ("replicate", "erasure")})
        assert grid.overrides() == [
            {"n": 64, "storage_mode": "replicate"},
            {"n": 64, "storage_mode": "erasure"},
            {"n": 128, "storage_mode": "replicate"},
            {"n": 128, "storage_mode": "erasure"},
        ]
        assert len(grid) == 4

    def test_expand_applies_with_overrides(self):
        base = ExperimentConfig(name="T", n=64)
        grid = GridSpec.product({"churn_fraction": (0.02, 0.1)})
        configs = grid.expand(base)
        assert configs == [
            base.with_overrides(churn_fraction=0.02),
            base.with_overrides(churn_fraction=0.1),
        ]

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            GridSpec.from_cells([{"churn_rate": 5}, {"churn_rate": 5}])
        with pytest.raises(ValueError, match="duplicate"):
            GridSpec.product({"n": (64, 64)})

    def test_duplicate_cells_rejected_regardless_of_key_order(self):
        with pytest.raises(ValueError, match="duplicate"):
            GridSpec.from_cells(
                [
                    {"churn_rate": 5, "adversary": "uniform"},
                    {"adversary": "uniform", "churn_rate": 5},
                ]
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            GridSpec.product({"not_a_field": (1, 2)})

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            GridSpec.from_cells([])
        with pytest.raises(ValueError):
            GridSpec.product({})
        with pytest.raises(ValueError):
            GridSpec.product({"n": ()})

    def test_coordinated_cells_preserved(self):
        cells = [{"churn_rate": 0, "adversary": "none"}, {"churn_rate": 5, "adversary": "uniform"}]
        grid = GridSpec.from_cells(cells)
        assert grid.overrides() == cells


class TestSweep:
    def test_sweep_groups_trials_per_cell(self):
        base = ExperimentConfig(name="T", n=64, seeds=(0, 1, 2))
        grid = GridSpec.product({"churn_rate": (0, 2, 4)})
        result = Sweep(base, grid, _echo_trial).run(TrialRunner(workers=2))
        assert len(result) == 3
        assert result.total_trials == 9
        for cell_result, rate in zip(result, (0, 2, 4)):
            assert isinstance(cell_result, CellResult)
            assert cell_result.cell.config.churn_rate == rate
            assert [t.seed for t in cell_result.trials] == [0, 1, 2]
            assert all(p["churn"] == rate for p in cell_result.payloads())
            assert cell_result.elapsed_seconds >= 0
        assert result.elapsed_seconds >= 0

    def test_sweep_default_runner_uses_base_workers(self):
        base = ExperimentConfig(name="T", n=64, seeds=(0,), workers=2)
        grid = GridSpec.product({"churn_rate": (0, 1)})
        result = Sweep(base, grid, _echo_trial).run()
        assert result.total_trials == 2

    def test_sweep_parallel_matches_sequential(self):
        base = ExperimentConfig(name="T", n=64, seeds=(0, 1))
        grid = GridSpec.product({"churn_rate": (0, 3), "n": (64, 128)})
        sequential = Sweep(base, grid, _echo_trial).run(TrialRunner(workers=1))
        parallel = Sweep(base, grid, _echo_trial).run(TrialRunner(workers=4))
        for cell_seq, cell_par in zip(sequential, parallel):
            assert cell_seq.cell == cell_par.cell
            assert _payload_bytes(cell_seq.trials) == _payload_bytes(cell_par.trials)


class TestSweepSerialization:
    def test_sweep_result_round_trips_through_json(self):
        base = ExperimentConfig(name="T", n=64, seeds=(0, 1))
        grid = GridSpec.from_cells(
            [{"churn_rate": 0, "adversary": "none"}, {"churn_rate": 3, "adversary": "uniform"}]
        )
        result = Sweep(base, grid, _echo_trial).run(TrialRunner(workers=1))
        restored = SweepResult.from_json(result.to_json())
        assert len(restored) == len(result)
        for cell_restored, cell_original in zip(restored, result):
            assert cell_restored.cell == cell_original.cell
            assert cell_restored.payloads() == cell_original.payloads()
        # Re-serialising the restored object is byte-stable.
        assert restored.to_json() == result.to_json()

    def test_sweep_cell_round_trip_preserves_override_order(self):
        cell = SweepCell(
            index=2,
            overrides=(("churn_rate", 5), ("adversary", "uniform")),
            config=ExperimentConfig(name="T", n=64, churn_rate=5),
        )
        restored = SweepCell.from_json_dict(cell.to_json_dict())
        assert restored == cell
        assert restored.override_dict() == {"churn_rate": 5, "adversary": "uniform"}

    def test_cell_result_round_trip(self):
        base = ExperimentConfig(name="T", n=64, seeds=(0,))
        result = Sweep(base, GridSpec.product({"churn_rate": (1,)}), _echo_trial).run()
        cell = result.cells[0]
        restored = CellResult.from_json_dict(cell.to_json_dict())
        assert restored.cell == cell.cell
        assert restored.payloads() == cell.payloads()


class TestSeedDeterminism:
    """Parallel and sequential runs must produce byte-identical payloads."""

    def test_e5_style_storage_trial_deterministic(self):
        config = ExperimentConfig(
            name="E5-mini", n=64, seeds=(0, 1, 2, 3), measure_rounds=10, items=2, churn_fraction=0.05
        )
        sequential = TrialRunner(workers=1).run(config, exp05_storage_availability._trial)
        parallel = TrialRunner(workers=4).run(config, exp05_storage_availability._trial)
        assert _payload_bytes(sequential) == _payload_bytes(parallel)

    def test_e1_style_soup_trial_deterministic(self):
        config = ExperimentConfig(name="E1-mini", n=64, seeds=(0, 1, 2, 3), measure_rounds=0)
        trial = partial(exp01_soup_mixing._trial, walks_per_source=4)
        sequential = TrialRunner(workers=1).run(config, trial)
        parallel = TrialRunner(workers=4).run(config, trial)
        assert _payload_bytes(sequential) == _payload_bytes(parallel)

    def test_repeated_parallel_runs_identical(self):
        config = ExperimentConfig(name="E1-mini", n=64, seeds=(0, 1), measure_rounds=0)
        trial = partial(exp01_soup_mixing._trial, walks_per_source=2)
        first = TrialRunner(workers=2).run(config, trial)
        second = TrialRunner(workers=2).run(config, trial)
        assert _payload_bytes(first) == _payload_bytes(second)


def _bulky_trial(config: ExperimentConfig, seed: int) -> dict:
    """A trial whose payload pickles well past any tiny spill threshold."""
    return {"seed": seed, "blob": list(range(5000))}


class TestPayloadSpilling:
    """Large payloads travel via spill files, not the pool pipe -- same bytes."""

    CONFIG = ExperimentConfig(name="T-spill", n=64, seeds=(0, 1, 2, 3))

    def test_spilled_payloads_identical_to_sequential(self, tmp_path):
        sequential = TrialRunner(workers=1).run(self.CONFIG, _bulky_trial)
        spilled = TrialRunner(workers=2, spill_bytes=512, spill_dir=tmp_path).run(
            self.CONFIG, _bulky_trial
        )
        assert [t.payload for t in spilled] == [t.payload for t in sequential]
        # Spill files are consumed and removed by the parent.
        assert list(tmp_path.glob("payload-*")) == []

    def test_below_threshold_payloads_do_not_spill(self, tmp_path):
        runner = TrialRunner(workers=2, spill_bytes=10**9, spill_dir=tmp_path)
        results = runner.run(self.CONFIG, _bulky_trial)
        assert len(results) == len(self.CONFIG.seeds)
        assert list(tmp_path.glob("payload-*")) == []

    def test_spill_disabled_with_zero_threshold(self, tmp_path):
        runner = TrialRunner(workers=2, spill_bytes=0, spill_dir=tmp_path)
        assert runner._resolve_spill_dir() is None
        results = runner.run(self.CONFIG, _bulky_trial)
        assert [t.seed for t in results] == list(self.CONFIG.seeds)

    def test_env_knob_sets_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_BYTES", "123")
        assert TrialRunner(workers=2).spill_bytes == 123
        monkeypatch.setenv("REPRO_SPILL_BYTES", "garbage")
        from repro.sim.runner import DEFAULT_SPILL_BYTES

        assert TrialRunner(workers=2).spill_bytes == DEFAULT_SPILL_BYTES
        # Explicit argument wins over the environment.
        monkeypatch.setenv("REPRO_SPILL_BYTES", "123")
        assert TrialRunner(workers=2, spill_bytes=77).spill_bytes == 77

    def test_spill_lands_in_active_store_run_dir(self, tmp_path):
        """With a store active, spill files live under <run>/spill."""
        from repro.sim.store import ResultStore, use_store

        store = ResultStore.create(tmp_path / "run", {})
        runner = TrialRunner(workers=2, spill_bytes=512)
        with use_store(store):
            spill_dir = runner._resolve_spill_dir()
            results = runner.run(self.CONFIG, _bulky_trial)
        assert spill_dir == store.root / "spill"
        assert [t.seed for t in results] == list(self.CONFIG.seeds)
        sequential = TrialRunner(workers=1).run(self.CONFIG, _bulky_trial)
        assert [t.payload for t in results] == [t.payload for t in sequential]


def _bulky_or_failing_trial(config: ExperimentConfig, seed: int) -> dict:
    if seed == 3:
        raise ValueError("boom")
    return {"seed": seed, "blob": list(range(5000))}


class TestSpillErrorCleanup:
    def test_sibling_spill_files_removed_when_a_trial_fails(self, tmp_path):
        """A WorkerError must not leak completed siblings' spill files."""
        config = ExperimentConfig(name="T-spill-err", n=64, seeds=(0, 1, 2, 3))
        runner = TrialRunner(workers=2, spill_bytes=512, spill_dir=tmp_path)
        with pytest.raises(WorkerError):
            runner.run(config, _bulky_or_failing_trial)
        assert list(tmp_path.glob("payload-*")) == []
