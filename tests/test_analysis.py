"""Tests for repro.analysis: statistics, the paper's bounds, result tables."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.stats import (
    linear_fit,
    log_fit_slope,
    mean_ci,
    percentile,
    success_fraction,
    wilson_interval,
)
from repro.analysis.tables import ResultTable, format_value
from repro.analysis.theory import PaperBounds


class TestStats:
    def test_mean_ci_contains_mean(self):
        ci = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert ci.lower <= ci.mean <= ci.upper
        assert ci.mean == pytest.approx(2.5)
        assert ci.count == 4

    def test_mean_ci_small_samples(self):
        assert math.isnan(mean_ci([]).mean)
        single = mean_ci([5.0])
        assert single.lower == single.upper == 5.0

    def test_wilson_interval_bounds(self):
        lo, hi = wilson_interval(5, 10)
        assert 0 <= lo <= 0.5 <= hi <= 1
        lo0, hi0 = wilson_interval(0, 10)
        assert lo0 == 0.0 and hi0 < 0.5
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_success_fraction(self):
        frac, (lo, hi), trials = success_fraction([True, True, False, True])
        assert frac == 0.75 and trials == 4
        assert lo <= frac <= hi

    def test_percentile(self):
        assert percentile(range(101), 90) == pytest.approx(90.0)
        assert math.isnan(percentile([], 50))

    def test_linear_fit(self):
        slope, intercept = linear_fit([1, 2, 3], [2, 4, 6])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(0.0, abs=1e-9)

    def test_log_fit_slope(self):
        ns = [100, 1000, 10000]
        ys = [3 * math.log(n) for n in ns]
        assert log_fit_slope(ns, ys) == pytest.approx(3.0)


class TestPaperBounds:
    def test_basic_quantities(self):
        bounds = PaperBounds(4096, delta=0.5)
        assert bounds.k == 1.5
        assert bounds.churn_limit() == pytest.approx(4 * 4096 / math.log(4096) ** 1.5)
        assert bounds.mixing_time() == pytest.approx(2 * math.log(4096))
        lo, hi = bounds.hit_probability_window()
        assert lo < hi < 1

    def test_core_bound_becomes_meaningful_for_large_delta_and_n(self):
        small = PaperBounds(1024, delta=0.5)
        assert small.core_size_lower_bound() < 0  # vacuous at laptop n (documented)
        # With a larger delta the log exponent grows and the bound turns positive.
        huge = PaperBounds(10**18, delta=4.0)
        assert huge.core_size_lower_bound() > 0.5 * 10**18
        # And the relative slack shrinks monotonically with n.
        assert (
            PaperBounds(10**12, delta=4.0).core_size_lower_bound() / 10**12
            < huge.core_size_lower_bound() / 10**18
        )

    def test_landmark_bounds_order(self):
        bounds = PaperBounds(10_000)
        assert bounds.landmark_lower_bound() < bounds.landmark_upper_bound()
        assert bounds.landmark_lower_bound() == pytest.approx(100.0)

    def test_committee_lifetime_is_polynomial(self):
        bounds = PaperBounds(1 << 16)
        assert bounds.expected_committee_lifetime_refreshes() > 1000

    def test_erasure_blowup(self):
        assert PaperBounds(1024).erasure_blowup(h=4) == pytest.approx(2.0)
        assert math.isinf(PaperBounds(1024).erasure_blowup(h=2))

    def test_summary_keys(self):
        summary = PaperBounds(2048).summary()
        for key in ("churn_limit", "committee_size", "landmark_lower_bound", "retrieval_rounds"):
            assert key in summary

    def test_conjectured_ceiling(self):
        bounds = PaperBounds(1024)
        assert bounds.conjectured_churn_ceiling() == pytest.approx(1024 / math.log(1024))
        assert bounds.conjectured_churn_ceiling() > bounds.churn_limit() / 4


class TestResultTable:
    def make_table(self):
        table = ResultTable(title="demo", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a=2, b=float("nan"))
        table.add_note("a note")
        return table

    def test_add_and_column(self):
        table = self.make_table()
        assert table.column("a") == [1, 2]
        assert not table.is_empty()

    def test_text_rendering(self):
        text = self.make_table().to_text()
        assert "demo" in text and "a note" in text and "2.5" in text

    def test_markdown_rendering(self):
        md = self.make_table().to_markdown()
        assert md.startswith("### demo")
        assert "| a | b |" in md

    def test_csv_rendering(self):
        csv_text = self.make_table().to_csv()
        assert csv_text.splitlines()[0] == "a,b"
        assert len(csv_text.splitlines()) == 3

    def test_merge(self):
        merged = ResultTable.merge("m", [self.make_table(), self.make_table()])
        assert len(merged.rows) == 4
        with pytest.raises(ValueError):
            ResultTable.merge("m", [self.make_table(), ResultTable(title="x", columns=["c"])])

    def test_merge_empty(self):
        assert ResultTable.merge("m", []).is_empty()

    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"
        assert format_value(0.000012345) == "1.234e-05" or "e-05" in format_value(0.000012345)
        assert format_value(3) == "3"


class TestResultTableJson:
    def test_round_trip_with_notes(self):
        table = ResultTable(title="demo", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_note("first note")
        table.add_note("second note")
        restored = ResultTable.from_json(table.to_json())
        assert restored == table
        assert restored.notes == ["first note", "second note"]

    def test_round_trip_mixed_value_types(self):
        table = ResultTable(title="mixed", columns=["name", "count", "rate", "ok", "missing"])
        table.add_row(name="alpha", count=3, rate=0.25, ok=True, missing=None)
        table.add_row(name="beta", count=0, rate=1.5e-7, ok=False)
        restored = ResultTable.from_json(table.to_json())
        assert restored == table
        assert restored.to_text() == table.to_text()
        assert restored.to_markdown() == table.to_markdown()
        # Types survive, not just renderings.
        assert isinstance(restored.rows[0]["count"], int)
        assert isinstance(restored.rows[0]["rate"], float)
        assert restored.rows[0]["ok"] is True and restored.rows[0]["missing"] is None

    def test_round_trip_nan_renders_identically(self):
        table = ResultTable(title="nan", columns=["x"])
        table.add_row(x=float("nan"))
        restored = ResultTable.from_json(table.to_json())
        assert restored.to_text() == table.to_text()  # nan != nan, so compare renderings

    def test_round_trip_numpy_values_become_plain(self):
        import numpy as np

        table = ResultTable(title="np", columns=["x", "flag"])
        table.add_row(x=np.float64(0.75), flag=np.bool_(False))
        restored = ResultTable.from_json(table.to_json())
        assert restored.rows == [{"x": 0.75, "flag": False}]
        assert restored.to_text() == table.to_text()

    def test_merge_output_round_trips(self):
        parts = []
        for offset in (0, 10):
            table = ResultTable(title=f"part{offset}", columns=["a", "b"])
            table.add_row(a=offset + 1, b=0.5)
            table.add_note(f"note {offset}")
            parts.append(table)
        merged = ResultTable.merge("merged", parts)
        restored = ResultTable.from_json(merged.to_json())
        assert restored == merged
        assert len(restored.rows) == 2 and len(restored.notes) == 2
