"""Flooding baseline (the paper's "naive solution").

Section 4's introduction describes the obvious robust scheme: flood the item
through the network and store it at a linear number of nodes.  Retrieval is
then trivial (ask any neighbour) and persistence is essentially certain, but
the cost is Theta(n) messages per store, Theta(n) copies of every item, and
per-node bandwidth proportional to the item size times its degree -- exactly
what the paper's committee/landmark construction avoids.

The baseline is implemented against the same :class:`DynamicNetwork`
substrate so that experiment E9 can compare message counts, storage bytes and
availability under identical churn schedules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.net.network import ChurnReport, DynamicNetwork
from repro.util.rng import RngStream

__all__ = ["FloodedItem", "FloodingStore"]

_flood_item_counter = itertools.count(1)


@dataclass
class FloodedItem:
    """Book-keeping for one flooded item."""

    item_id: int
    data: bytes
    origin_uid: int
    created_round: int
    holders: Set[int] = field(default_factory=set)
    frontier: Set[int] = field(default_factory=set)
    flood_complete_round: Optional[int] = None
    messages_sent: int = 0

    @property
    def size_bytes(self) -> int:
        """Original item size in bytes."""
        return len(self.data)


class FloodingStore:
    """Store and search by flooding over the current round's edges.

    A store floods the item hop-by-hop: in each round every node that already
    holds the item forwards it to all of its current neighbours that do not.
    Because the topology is an expander, the flood covers the network in
    O(log n) rounds; every alive holder keeps a full copy forever (new nodes
    joining after the flood do *not* receive the item, matching the paper's
    observation that even flooding cannot reach nodes that join later without
    continuous re-flooding).

    Searching is modelled as: the query succeeds in the first round in which
    the requester or any of its current neighbours holds a copy -- i.e. one
    round whenever the flood has saturated the network.
    """

    def __init__(self, network: DynamicNetwork, rng: Optional[RngStream] = None) -> None:
        self.network = network
        self.rng = rng if rng is not None else RngStream(0, name="flooding")
        self.items: Dict[int, FloodedItem] = {}

    # ------------------------------------------------------------------ store
    def store(self, origin_uid: int, data: bytes) -> FloodedItem:
        """Begin flooding ``data`` from ``origin_uid``."""
        if not self.network.is_alive(origin_uid):
            raise ValueError(f"origin {origin_uid} is not in the network")
        item = FloodedItem(
            item_id=next(_flood_item_counter),
            data=bytes(data),
            origin_uid=origin_uid,
            created_round=self.network.round_index,
        )
        item.holders.add(origin_uid)
        item.frontier.add(origin_uid)
        self.items[item.item_id] = item
        return item

    # ------------------------------------------------------------------ per-round driver
    def step(self, report: ChurnReport) -> None:
        """Advance every flood by one round and account churn losses."""
        churned = set(int(u) for u in report.churned_out_uids.tolist())
        for item in self.items.values():
            if churned:
                item.holders -= churned
                item.frontier -= churned
            if not item.frontier:
                continue
            new_frontier: Set[int] = set()
            for holder in list(item.frontier):
                if not self.network.is_alive(holder):
                    continue
                for neighbor in self.network.neighbors_of_uid(holder):
                    # Forwarding the full item to each neighbour: Theta(d) item-sized
                    # messages per frontier node per round.
                    self.network.ledger.charge(
                        report.round_index, holder, ids=2, payload_bytes=item.size_bytes
                    )
                    item.messages_sent += 1
                    if neighbor not in item.holders:
                        item.holders.add(neighbor)
                        new_frontier.add(neighbor)
            item.frontier = new_frontier
            if not new_frontier and item.flood_complete_round is None:
                item.flood_complete_round = report.round_index

    # ------------------------------------------------------------------ queries
    def replica_count(self, item_id: int) -> int:
        """Alive nodes currently holding a copy."""
        item = self.items[item_id]
        return sum(1 for u in item.holders if self.network.is_alive(u))

    def is_available(self, item_id: int) -> bool:
        """Whether at least one copy survives."""
        return self.replica_count(item_id) >= 1

    def stored_bytes(self, item_id: int) -> int:
        """Bytes stored network-wide (n copies once the flood saturates)."""
        item = self.items[item_id]
        return self.replica_count(item_id) * item.size_bytes

    def search(self, requester_uid: int, item_id: int) -> Optional[int]:
        """One-shot search: returns the uid of a holder reachable in one hop, else None."""
        item = self.items.get(item_id)
        if item is None or not self.network.is_alive(requester_uid):
            return None
        if requester_uid in item.holders:
            return requester_uid
        # Ask all current neighbours (d messages).
        for neighbor in self.network.neighbors_of_uid(requester_uid):
            self.network.ledger.charge(self.network.round_index, requester_uid, ids=3)
            if neighbor in item.holders and self.network.is_alive(neighbor):
                return neighbor
        return None

    def total_messages(self) -> int:
        """Flood messages sent across all items."""
        return sum(item.messages_sent for item in self.items.values())
