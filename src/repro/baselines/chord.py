"""A Chord-style structured DHT baseline under churn.

The related-work discussion (Section 1.3) contrasts the paper's unstructured
scheme with DHTs such as Chord [55]: DHTs give O(log n) lookups in stable or
mildly dynamic networks, but their invariants (correct successor pointers and
finger tables) need continuous stabilisation and break down under heavy
adversarial churn.  This baseline implements a deliberately simple Chord
variant on top of the same churn schedule so that experiment E9 can show the
crossover: at low churn Chord lookups succeed quickly, while at the paper's
churn rates the routing state decays faster than the (rate-limited)
stabiliser can repair it and lookups start failing -- whereas the paper's
committee/landmark scheme keeps working.

Design notes (all standard Chord, simplified):

* Identifier space: ``2**id_bits`` points on a ring; node ids are hashes of
  their uid, item keys are hashes of the item id.
* Each node keeps a successor list of length ``successor_list_len`` and a
  finger table of ``id_bits`` entries.
* Every round a limited number of nodes run one stabilisation step
  (refreshing successors and one finger each), modelling the per-round
  bandwidth cap: the whole network cannot rebuild all state instantly.
* New nodes join by looking up their own id through an alive bootstrap node;
  keys are *not* proactively re-replicated (plain Chord stores a key only on
  its successor, with ``replication`` immediate successors as backups).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.net.network import ChurnReport, DynamicNetwork
from repro.util.rng import RngStream

__all__ = ["ChordNodeState", "ChordLookupResult", "ChordDHT"]


def _hash_to_ring(value: int, id_bits: int) -> int:
    """Deterministically hash an integer onto the ring [0, 2**id_bits)."""
    digest = hashlib.sha256(str(int(value)).encode()).digest()
    return int.from_bytes(digest[:8], "big") % (1 << id_bits)


def _in_interval(x: int, a: int, b: int, ring: int) -> bool:
    """Whether x lies in the half-open ring interval (a, b]."""
    x, a, b = x % ring, a % ring, b % ring
    if a < b:
        return a < x <= b
    if a > b:
        return x > a or x <= b
    return True  # a == b: full circle


@dataclass
class ChordNodeState:
    """Routing state of one alive Chord node."""

    uid: int
    ring_id: int
    successors: List[int] = field(default_factory=list)
    predecessor: Optional[int] = None
    fingers: Dict[int, int] = field(default_factory=dict)
    keys: Dict[int, bytes] = field(default_factory=dict)
    next_finger_to_fix: int = 0


@dataclass(frozen=True)
class ChordLookupResult:
    """Outcome of one lookup."""

    key: int
    success: bool
    hops: int
    holder_uid: Optional[int]


class ChordDHT:
    """A simplified Chord DHT sharing the dynamic-network churn schedule.

    Parameters
    ----------
    network:
        The dynamic network (only membership/churn and the ledger are used;
        Chord maintains its own overlay links, which is exactly why it is a
        *structured* scheme).
    rng:
        Protocol-side RNG.
    id_bits:
        Ring size is ``2**id_bits``.
    successor_list_len:
        Number of successors each node tracks.
    replication:
        Keys are stored on the responsible node and this many further successors.
    stabilize_fraction:
        Fraction of alive nodes that run one stabilisation step per round
        (models the per-round bandwidth budget).
    max_hops:
        Lookup hop limit before declaring failure.
    """

    def __init__(
        self,
        network: DynamicNetwork,
        rng: RngStream,
        id_bits: int = 24,
        successor_list_len: int = 4,
        replication: int = 3,
        stabilize_fraction: float = 0.25,
        max_hops: int = 64,
    ) -> None:
        self.network = network
        self.rng = rng
        self.id_bits = id_bits
        self.ring = 1 << id_bits
        self.successor_list_len = successor_list_len
        self.replication = replication
        self.stabilize_fraction = stabilize_fraction
        self.max_hops = max_hops
        self.nodes: Dict[int, ChordNodeState] = {}
        self.lookups: List[ChordLookupResult] = []
        self._bootstrap_ring()

    # ------------------------------------------------------------------ construction
    def _bootstrap_ring(self) -> None:
        """Build a perfect ring over the initial population (a freshly stabilised DHT)."""
        uids = [int(u) for u in self.network.alive_uids().tolist()]
        states = [ChordNodeState(uid=u, ring_id=_hash_to_ring(u, self.id_bits)) for u in uids]
        states.sort(key=lambda s: s.ring_id)
        count = len(states)
        for i, state in enumerate(states):
            succs = [states[(i + j + 1) % count].uid for j in range(self.successor_list_len)]
            state.successors = succs
            state.predecessor = states[(i - 1) % count].uid
            self.nodes[state.uid] = state
        for state in states:
            self._rebuild_fingers(state)

    def _rebuild_fingers(self, state: ChordNodeState) -> None:
        """Recompute the full finger table of ``state`` from global knowledge.

        Used only at bootstrap; afterwards fingers are refreshed one per
        stabilisation step via lookups, as in the real protocol.
        """
        for k in range(self.id_bits):
            target = (state.ring_id + (1 << k)) % self.ring
            owner = self._global_successor_of(target)
            if owner is not None:
                state.fingers[k] = owner

    def _global_successor_of(self, ring_point: int) -> Optional[int]:
        """The alive node whose id is the first at or after ``ring_point`` (global view)."""
        alive = [s for s in self.nodes.values() if self.network.is_alive(s.uid)]
        if not alive:
            return None
        alive.sort(key=lambda s: s.ring_id)
        for state in alive:
            if state.ring_id >= ring_point:
                return state.uid
        return alive[0].uid

    # ------------------------------------------------------------------ per-round driver
    def step(self, report: ChurnReport) -> None:
        """Handle churn (joins/leaves) and run the rate-limited stabiliser."""
        round_index = report.round_index
        for uid in report.churned_out_uids.tolist():
            self.nodes.pop(int(uid), None)
        for uid in report.churned_in_uids.tolist():
            self._join(int(uid), round_index)
        self._stabilize_some(round_index)

    def _join(self, uid: int, round_index: int) -> None:
        """A new node joins through a random alive bootstrap node."""
        state = ChordNodeState(uid=uid, ring_id=_hash_to_ring(uid, self.id_bits))
        self.nodes[uid] = state
        alive = [u for u in self.nodes if self.network.is_alive(u) and u != uid]
        if not alive:
            state.successors = [uid]
            return
        bootstrap = int(self.rng.generator.choice(alive))
        result = self._route(bootstrap, state.ring_id, round_index)
        if result is not None:
            state.successors = [result]
        else:
            state.successors = [bootstrap]
        self.network.ledger.charge(round_index, uid, ids=4)

    def _stabilize_some(self, round_index: int) -> None:
        """A random ``stabilize_fraction`` of nodes run one stabilisation step."""
        alive = [u for u in self.nodes if self.network.is_alive(u)]
        if not alive:
            return
        count = max(1, int(len(alive) * self.stabilize_fraction))
        chosen = self.rng.generator.choice(alive, size=min(count, len(alive)), replace=False)
        for uid in chosen.tolist():
            self._stabilize_node(int(uid), round_index)

    def _stabilize_node(self, uid: int, round_index: int) -> None:
        """One Chord stabilisation step: prune dead successors, learn from the live one, fix a finger."""
        state = self.nodes.get(uid)
        if state is None:
            return
        state.successors = [s for s in state.successors if self.network.is_alive(s) and s in self.nodes]
        self.network.ledger.charge(round_index, uid, ids=2 + len(state.successors))
        if not state.successors:
            # Lost every successor: fall back to a finger or give up until a later step.
            candidates = [f for f in state.fingers.values() if self.network.is_alive(f) and f in self.nodes]
            if candidates:
                state.successors = [candidates[0]]
            return
        succ = self.nodes.get(state.successors[0])
        if succ is not None:
            merged = [succ.uid] + succ.successors
            state.successors = list(dict.fromkeys(
                [s for s in ([state.successors[0]] + merged) if self.network.is_alive(s)]
            ))[: self.successor_list_len]
            if succ.predecessor is None or _in_interval(
                state.ring_id, self.nodes[succ.uid].ring_id - 1, succ.ring_id, self.ring
            ):
                succ.predecessor = state.uid
        # Fix one finger via routing.
        k = state.next_finger_to_fix
        state.next_finger_to_fix = (k + 1) % self.id_bits
        target = (state.ring_id + (1 << k)) % self.ring
        owner = self._route(uid, target, round_index, charge=False)
        if owner is not None:
            state.fingers[k] = owner

    # ------------------------------------------------------------------ routing / storage
    def _closest_preceding(self, state: ChordNodeState, key: int) -> Optional[int]:
        """Closest alive routing entry of ``state`` preceding ``key``."""
        best: Optional[int] = None
        best_dist = self.ring + 1
        candidates = list(state.fingers.values()) + state.successors
        for cand in candidates:
            cand_state = self.nodes.get(cand)
            if cand_state is None or not self.network.is_alive(cand):
                continue
            if _in_interval(cand_state.ring_id, state.ring_id, key, self.ring):
                dist = (key - cand_state.ring_id) % self.ring
                if dist < best_dist:
                    best = cand
                    best_dist = dist
        return best

    def _route(self, start_uid: int, key: int, round_index: int, charge: bool = True) -> Optional[int]:
        """Route greedily from ``start_uid`` towards ``key``; returns the responsible uid or None."""
        current = start_uid
        for _ in range(self.max_hops):
            state = self.nodes.get(current)
            if state is None or not self.network.is_alive(current):
                return None
            if charge:
                self.network.ledger.charge(round_index, current, ids=3)
            succ = next((s for s in state.successors if self.network.is_alive(s) and s in self.nodes), None)
            if succ is None:
                return None
            succ_state = self.nodes[succ]
            if _in_interval(key, state.ring_id, succ_state.ring_id, self.ring):
                return succ
            nxt = self._closest_preceding(state, key)
            if nxt is None or nxt == current:
                return succ
            current = nxt
        return None

    def store(self, origin_uid: int, item_key: int, data: bytes) -> bool:
        """Store ``data`` under ``item_key`` on its successor plus ``replication`` backups."""
        round_index = max(self.network.round_index, 0)
        key = _hash_to_ring(item_key, self.id_bits)
        owner = self._route(origin_uid, key, round_index)
        if owner is None:
            return False
        placed = 0
        current = owner
        for _ in range(self.replication + 1):
            state = self.nodes.get(current)
            if state is None:
                break
            state.keys[item_key] = bytes(data)
            self.network.ledger.charge(round_index, origin_uid, ids=3, payload_bytes=len(data))
            placed += 1
            nxt = next((s for s in state.successors if s in self.nodes), None)
            if nxt is None:
                break
            current = nxt
        return placed > 0

    def lookup(self, requester_uid: int, item_key: int) -> ChordLookupResult:
        """Look up ``item_key`` from ``requester_uid``; record and return the outcome."""
        round_index = max(self.network.round_index, 0)
        key = _hash_to_ring(item_key, self.id_bits)
        current = requester_uid
        hops = 0
        result: ChordLookupResult
        visited: Set[int] = set()
        while hops < self.max_hops:
            state = self.nodes.get(current)
            if state is None or not self.network.is_alive(current) or current in visited:
                result = ChordLookupResult(key=item_key, success=False, hops=hops, holder_uid=None)
                self.lookups.append(result)
                return result
            visited.add(current)
            self.network.ledger.charge(round_index, current, ids=3)
            if item_key in state.keys:
                result = ChordLookupResult(key=item_key, success=True, hops=hops, holder_uid=current)
                self.lookups.append(result)
                return result
            succ = next((s for s in state.successors if self.network.is_alive(s) and s in self.nodes), None)
            if succ is not None and _in_interval(key, state.ring_id, self.nodes[succ].ring_id, self.ring):
                nxt = succ
            else:
                nxt = self._closest_preceding(state, key) or succ
            if nxt is None:
                result = ChordLookupResult(key=item_key, success=False, hops=hops, holder_uid=None)
                self.lookups.append(result)
                return result
            current = nxt
            hops += 1
        result = ChordLookupResult(key=item_key, success=False, hops=hops, holder_uid=None)
        self.lookups.append(result)
        return result

    # ------------------------------------------------------------------ reporting
    def replica_count(self, item_key: int) -> int:
        """Alive nodes currently holding ``item_key``."""
        return sum(
            1
            for state in self.nodes.values()
            if item_key in state.keys and self.network.is_alive(state.uid)
        )

    def success_rate(self) -> float:
        """Fraction of recorded lookups that succeeded."""
        if not self.lookups:
            return 0.0
        return sum(1 for l in self.lookups if l.success) / len(self.lookups)

    def mean_hops(self) -> float:
        """Mean hops over successful lookups."""
        hops = [l.hops for l in self.lookups if l.success]
        return float(np.mean(hops)) if hops else float("nan")
