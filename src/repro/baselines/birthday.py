"""Birthday-paradox replication baseline (no maintenance).

Section 4 sketches the "well known solution" the paper improves on: the
storing node samples Theta(sqrt(n log n)) random nodes ("data nodes") and
places a copy of the item on each; a searcher samples Theta(sqrt(n log n))
random nodes and, by the birthday paradox, hits a data node with high
probability.  The paper points out the two problems this scheme has under
churn: (i) the data-node population decays because nothing replenishes it,
and (ii) replenishing it naively requires global coordination (estimating how
many data nodes remain).

This baseline implements exactly that scheme -- one-shot placement on
``placement_multiplier * sqrt(n ln n)`` random nodes, no maintenance -- so
experiment E9 can show its availability decaying within O(log^{1+delta} n)
rounds at the paper's churn rate while the committee-based scheme persists.
Searches draw fresh random samples (modelling the searcher's own walk soup)
and succeed if any sample is a surviving data node.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.net.network import ChurnReport, DynamicNetwork
from repro.util.rng import RngStream

__all__ = ["BirthdayItem", "BirthdayReplicationStore"]

_birthday_item_counter = itertools.count(1)


@dataclass
class BirthdayItem:
    """Book-keeping for one birthday-replicated item."""

    item_id: int
    data: bytes
    origin_uid: int
    created_round: int
    data_nodes: Set[int] = field(default_factory=set)
    initial_replicas: int = 0

    @property
    def size_bytes(self) -> int:
        """Original item size in bytes."""
        return len(self.data)


class BirthdayReplicationStore:
    """sqrt(n)-scale one-shot replication without maintenance.

    Parameters
    ----------
    network:
        The shared dynamic-network substrate.
    rng:
        Protocol-side RNG stream (placement and search samples).
    placement_multiplier:
        Copies placed are ``ceil(placement_multiplier * sqrt(n * ln n))``.
    search_samples:
        Random nodes probed per search attempt (defaults to the same count).
    """

    def __init__(
        self,
        network: DynamicNetwork,
        rng: RngStream,
        placement_multiplier: float = 1.0,
        search_samples: Optional[int] = None,
    ) -> None:
        self.network = network
        self.rng = rng
        self.placement_multiplier = float(placement_multiplier)
        n = network.n_slots
        self.placement_count = max(4, math.ceil(self.placement_multiplier * math.sqrt(n * math.log(n))))
        self.search_samples = self.placement_count if search_samples is None else int(search_samples)
        self.items: Dict[int, BirthdayItem] = {}

    # ------------------------------------------------------------------ store
    def store(self, origin_uid: int, data: bytes) -> BirthdayItem:
        """Place copies of ``data`` on ``placement_count`` uniformly random alive nodes."""
        if not self.network.is_alive(origin_uid):
            raise ValueError(f"origin {origin_uid} is not in the network")
        item = BirthdayItem(
            item_id=next(_birthday_item_counter),
            data=bytes(data),
            origin_uid=origin_uid,
            created_round=self.network.round_index,
        )
        alive = self.network.alive_uids()
        count = min(self.placement_count, alive.size)
        chosen = self.rng.generator.choice(alive, size=count, replace=False)
        for uid in chosen.tolist():
            item.data_nodes.add(int(uid))
            self.network.ledger.charge(
                self.network.round_index, origin_uid, ids=3, payload_bytes=item.size_bytes
            )
        item.initial_replicas = len(item.data_nodes)
        self.items[item.item_id] = item
        return item

    # ------------------------------------------------------------------ per-round driver
    def step(self, report: ChurnReport) -> None:
        """Account churn: data nodes that leave take their copy with them (no replacement)."""
        churned = set(int(u) for u in report.churned_out_uids.tolist())
        if not churned:
            return
        for item in self.items.values():
            item.data_nodes -= churned

    # ------------------------------------------------------------------ queries
    def replica_count(self, item_id: int) -> int:
        """Surviving data nodes of the item."""
        item = self.items[item_id]
        return sum(1 for u in item.data_nodes if self.network.is_alive(u))

    def is_available(self, item_id: int) -> bool:
        """Whether at least one copy survives."""
        return self.replica_count(item_id) >= 1

    def stored_bytes(self, item_id: int) -> int:
        """Bytes stored network-wide."""
        item = self.items[item_id]
        return self.replica_count(item_id) * item.size_bytes

    def search(self, requester_uid: int, item_id: int) -> Optional[int]:
        """One search attempt: probe ``search_samples`` random nodes, return a hit or None."""
        item = self.items.get(item_id)
        if item is None or not self.network.is_alive(requester_uid):
            return None
        alive = self.network.alive_uids()
        count = min(self.search_samples, alive.size)
        probes = self.rng.generator.choice(alive, size=count, replace=False)
        for uid in probes.tolist():
            self.network.ledger.charge(self.network.round_index, requester_uid, ids=3)
            if int(uid) in item.data_nodes:
                return int(uid)
        return None

    def expected_half_life(self, churn_rate: int) -> float:
        """Rounds until half the initial replicas are expected to be churned out.

        With ``churn_rate`` uniform replacements per round the survival
        probability of one replica after ``t`` rounds is
        ``(1 - churn_rate/n)^t``; the half-life is ``ln 2 / -ln(1 - rate/n)``.
        """
        n = self.network.n_slots
        if churn_rate <= 0:
            return math.inf
        per_round = 1.0 - churn_rate / n
        if per_round <= 0:
            return 0.0
        return math.log(2.0) / -math.log(per_round)
