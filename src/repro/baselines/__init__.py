"""Baseline storage/search schemes the paper compares against (or improves on)."""

from repro.baselines.birthday import BirthdayItem, BirthdayReplicationStore
from repro.baselines.chord import ChordDHT, ChordLookupResult, ChordNodeState
from repro.baselines.flooding import FloodedItem, FloodingStore
from repro.baselines.random_probe import RandomProbeItem, RandomProbeQuery, RandomProbeSearch

__all__ = [
    "BirthdayItem",
    "BirthdayReplicationStore",
    "ChordDHT",
    "ChordLookupResult",
    "ChordNodeState",
    "FloodedItem",
    "FloodingStore",
    "RandomProbeItem",
    "RandomProbeQuery",
    "RandomProbeSearch",
]
