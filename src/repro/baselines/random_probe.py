"""Unstructured random-probe search baseline.

The simplest unstructured search (Section 1.3's "unstructured schemes", e.g.
Gnutella-style random walks without any storage-side assistance): the item is
replicated on Theta(log n) random nodes exactly as the paper's committee does,
but the searcher gets **no landmarks** -- it simply probes nodes sampled by
its own random walks, one batch per round, until it happens to probe a
holder.  Because only Theta(log n) of the n nodes hold the item, the expected
number of probes is Theta(n / log n), i.e. the searcher needs
Theta(n / log^2 n) rounds at Theta(log n) probes per round -- far above the
O(log n) rounds the paper achieves with the sqrt(n)-landmark rendezvous.

Experiment E9 runs this baseline on the same substrate to exhibit that gap.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.net.network import ChurnReport, DynamicNetwork
from repro.util.rng import RngStream
from repro.walks.sampler import NodeSampler

__all__ = ["RandomProbeItem", "RandomProbeQuery", "RandomProbeSearch"]

_rp_item_counter = itertools.count(1)
_rp_query_counter = itertools.count(1)


@dataclass
class RandomProbeItem:
    """An item replicated on a fixed set of holders (no maintenance, no landmarks)."""

    item_id: int
    data: bytes
    holders: Set[int] = field(default_factory=set)


@dataclass
class RandomProbeQuery:
    """One in-flight random-probe search."""

    query_id: int
    requester_uid: int
    item_id: int
    start_round: int
    status: str = "pending"  # pending | succeeded | failed
    finish_round: Optional[int] = None
    probes_sent: int = 0

    @property
    def latency(self) -> Optional[int]:
        """Rounds from issue to completion."""
        if self.finish_round is None:
            return None
        return self.finish_round - self.start_round


class RandomProbeSearch:
    """Search by probing walk samples directly, with no landmark rendezvous.

    Parameters
    ----------
    network, sampler:
        The shared substrate (the baseline reuses the same walk soup samples
        as the paper's protocol, so the only difference is the missing
        committee/landmark machinery).
    rng:
        Protocol-side RNG stream.
    copies:
        Replicas placed per stored item (Theta(log n) to match the paper).
    timeout:
        Rounds after which a query is declared failed.
    """

    def __init__(
        self,
        network: DynamicNetwork,
        sampler: NodeSampler,
        rng: RngStream,
        copies: int,
        timeout: int,
    ) -> None:
        self.network = network
        self.sampler = sampler
        self.rng = rng
        self.copies = int(copies)
        self.timeout = int(timeout)
        self.items: Dict[int, RandomProbeItem] = {}
        self.queries: Dict[int, RandomProbeQuery] = {}

    # ------------------------------------------------------------------ store / search
    def store(self, origin_uid: int, data: bytes) -> RandomProbeItem:
        """Replicate ``data`` on ``copies`` uniformly random alive nodes."""
        if not self.network.is_alive(origin_uid):
            raise ValueError(f"origin {origin_uid} is not in the network")
        item = RandomProbeItem(item_id=next(_rp_item_counter), data=bytes(data))
        alive = self.network.alive_uids()
        chosen = self.rng.generator.choice(alive, size=min(self.copies, alive.size), replace=False)
        for uid in chosen.tolist():
            item.holders.add(int(uid))
            self.network.ledger.charge(
                max(self.network.round_index, 0), origin_uid, ids=3, payload_bytes=len(data)
            )
        self.items[item.item_id] = item
        return item

    def search(self, requester_uid: int, item_id: int) -> RandomProbeQuery:
        """Issue a search for ``item_id`` from ``requester_uid``."""
        query = RandomProbeQuery(
            query_id=next(_rp_query_counter),
            requester_uid=requester_uid,
            item_id=item_id,
            start_round=self.network.round_index,
        )
        self.queries[query.query_id] = query
        return query

    # ------------------------------------------------------------------ per-round driver
    def step(self, report: ChurnReport) -> None:
        """Advance holders (churn losses) and all pending queries by one round."""
        churned = set(int(u) for u in report.churned_out_uids.tolist())
        if churned:
            for item in self.items.values():
                item.holders -= churned
        round_index = report.round_index
        for query in self.queries.values():
            if query.status != "pending":
                continue
            item = self.items.get(query.item_id)
            if item is None:
                query.status = "failed"
                query.finish_round = round_index
                continue
            if not self.network.is_alive(query.requester_uid):
                query.status = "failed"
                query.finish_round = round_index
                continue
            samples = self.sampler.sample_sources(
                query.requester_uid, round_index=round_index, alive_only=True
            )
            for target in samples:
                self.network.ledger.charge(round_index, query.requester_uid, ids=3)
                query.probes_sent += 1
                if target in item.holders and self.network.is_alive(target):
                    query.status = "succeeded"
                    query.finish_round = round_index
                    break
            if query.status == "pending" and round_index - query.start_round >= self.timeout:
                query.status = "failed"
                query.finish_round = round_index

    # ------------------------------------------------------------------ reporting
    def success_rate(self) -> float:
        """Fraction of finished queries that succeeded."""
        finished = [q for q in self.queries.values() if q.status != "pending"]
        if not finished:
            return 0.0
        return sum(1 for q in finished if q.status == "succeeded") / len(finished)

    def latencies(self) -> List[int]:
        """Latencies of successful queries."""
        return [
            q.latency
            for q in self.queries.values()
            if q.status == "succeeded" and q.latency is not None
        ]

    def replica_count(self, item_id: int) -> int:
        """Surviving holders of an item."""
        item = self.items[item_id]
        return sum(1 for u in item.holders if self.network.is_alive(u))
