"""Pluggable dispatch-queue backends: where claims, leases and worker records live.

:mod:`repro.sim.dispatch` (PR 4) coordinates N workers through *claims* --
exclusive, heartbeated, stealable leases on task ids.  The protocol itself is
backend-agnostic; what varies is the medium the claims live in.  This module
extracts that medium behind :class:`DispatchBackend` and ships two
implementations:

:class:`FilesystemBackend`
    The original PR-4 medium: one ``claims/<task>.claim`` file per claim
    (``O_CREAT | O_EXCL`` exclusivity, atomic-rename steals), worker records
    under ``workers/`` and timing records under ``timings/``.  Works on any
    shared filesystem, including NFS.  Lease expiry is evaluated against
    **one clock -- the filesystem server's**: the claim's freshness is its
    file's mtime and "now" is the mtime of a probe file the reader touches,
    so cross-host wall-clock skew can neither prematurely expire a live
    worker's lease nor keep a crashed worker's lease alive.

:class:`SQLiteBackend`
    A single WAL-mode ``dispatch.sqlite`` database in the run directory.
    Claims, steals and batch claims are single ``BEGIN IMMEDIATE``
    transactions, which removes the thousands of claim-file creates a big
    sweep pays on the filesystem backend and makes lease expiry structurally
    single-clock: every timestamp compared comes from processes on the host
    that owns the database file (WAL mode requires a local filesystem, so
    the backend is single-host by construction -- use the filesystem backend
    for NFS fleets).

Only the *coordination* state moves between backends.  Result artifacts
(``cells/``, ``chunks/``, ``result.json``) are always plain files written by
:class:`~repro.sim.store.ResultStore`, which is what keeps a run's output
byte-identical no matter which backend scheduled it.

Backend selection is recorded in the run manifest (``dispatch.backend``) by
``repro-experiment dispatch --backend ...`` and resolved automatically by
:meth:`ResultStore.backend <repro.sim.store.ResultStore.backend>`, so late-
joining workers, ``status`` and ``report`` all read the same queue.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.util.serialization import dumps_artifact, jsonify
from repro.util.simlog import get_logger

__all__ = [
    "DispatchBackend",
    "FilesystemBackend",
    "SQLiteBackend",
    "BACKENDS",
    "TRANSIENT_ERRORS",
    "make_backend",
    "backend_from_manifest",
]

_logger = get_logger("backends")

#: Errors a heartbeat loop should swallow and retry on the next beat: both
#: filesystem hiccups and transient SQLite lock/busy conditions.
TRANSIENT_ERRORS = (OSError, sqlite3.Error)


class DispatchBackend:
    """The coordination surface :class:`~repro.sim.dispatch.DispatchWorker` needs.

    A claim document is a plain dict with at least ``task``, ``worker``,
    ``lease_seconds`` and ``heartbeat_at`` keys; backends additionally attach
    ``_heartbeat_age`` -- seconds since the last heartbeat, measured entirely
    in the *backend's* clock domain -- which is what :meth:`claim_expired`
    evaluates, making expiry immune to wall-clock skew between hosts.
    """

    #: Registry name, also recorded in run manifests.
    name = "abstract"

    # -------------------------------------------------------------- claims
    def try_claim(self, task_id: str, worker_id: str, lease_seconds: float) -> bool:
        """Atomically claim ``task_id``; False when someone already holds it."""
        raise NotImplementedError

    def claim_many(self, task_ids: Sequence[str], worker_id: str, lease_seconds: float) -> List[str]:
        """Claim every currently-unclaimed id in ``task_ids``; returns the ids won.

        The batched form of :meth:`try_claim`: one round-trip covers a chunk
        of tiny tasks (one transaction on SQLite).  Ids already claimed by
        peers are simply not in the returned list -- the caller falls back to
        its per-task steal logic for those.
        """
        raise NotImplementedError

    def read_claim(self, task_id: str) -> Optional[Dict[str, Any]]:
        """The claim document of ``task_id`` (None when unclaimed)."""
        raise NotImplementedError

    def heartbeat(self, task_id: str, worker_id: str) -> bool:
        """Refresh the lease of a claim this worker owns; False when it is gone/stolen."""
        raise NotImplementedError

    def steal(self, task_id: str, worker_id: str, lease_seconds: float) -> bool:
        """Take over an *expired* claim; True when this worker now owns the task."""
        raise NotImplementedError

    def release(self, task_id: str, worker_id: str) -> None:
        """Drop a claim this worker owns (missing or stolen claims are left alone)."""
        raise NotImplementedError

    def active_claims(self) -> List[Dict[str, Any]]:
        """Every live claim document, sorted by task id."""
        raise NotImplementedError

    def claim_expired(self, claim: Mapping[str, Any], now: Optional[float] = None) -> bool:
        """Whether a claim's lease ran out.

        Prefers the single-clock ``_heartbeat_age`` the backend attached at
        read time; bare dicts (or an explicit ``now``) fall back to the
        legacy wall-clock comparison for callers that construct their own
        claim documents.
        """
        lease = float(claim.get("lease_seconds", 0.0))
        if now is None and "_heartbeat_age" in claim:
            return float(claim["_heartbeat_age"]) > lease
        now = time.time() if now is None else now
        heartbeat = float(claim.get("heartbeat_at", 0.0))
        return now > heartbeat + lease

    # -------------------------------------------------------------- workers
    def worker_record(self, worker_id: str, **fields: Any) -> None:
        """Publish/refresh this worker's heartbeat record (for ``status``)."""
        raise NotImplementedError

    def worker_records(self) -> List[Dict[str, Any]]:
        """All published worker records, sorted by worker id."""
        raise NotImplementedError

    # -------------------------------------------------------------- timings
    def record_timing(self, task_id: str, worker_id: str, seconds: float, trials: int) -> None:
        """Record how long one task took on one worker (outside the compared surface)."""
        raise NotImplementedError

    def task_timings(self) -> List[Dict[str, Any]]:
        """All recorded task timings, sorted by task id."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any handles (connections); safe to call repeatedly."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------- filesystem
class FilesystemBackend(DispatchBackend):
    """Claim files under the run directory -- the PR-4 protocol, skew-hardened.

    Exclusivity comes from ``O_CREAT | O_EXCL`` on ``claims/<task>.claim``,
    steals from an atomic-rename tombstone, and every write goes through the
    store's fsynced atomic-rename helper.  Works on any shared filesystem.

    **One clock.** A claim's freshness is its file's **mtime** -- stamped by
    the filesystem (the NFS server, for a shared mount) whenever the owner
    heartbeats -- and "now" is the mtime of a probe file this reader touches
    in the same directory.  Both timestamps come from the same clock, so a
    reader host running ±5 minutes fast can no longer steal a live worker's
    lease (and a slow host can no longer keep a dead one alive).  The
    ``heartbeat_at`` wall-clock field is still written for humans, but expiry
    never compares it against the reader's ``time.time()``.
    """

    name = "filesystem"

    #: One retry (after this sleep) before a torn/unreadable claim is treated
    #: as expired -- a reader that catches a peer's heartbeat rewrite mid-
    #: flight must not synthesize a stealable claim out of the torn read.
    TORN_READ_RETRY_SECONDS = 0.1

    def __init__(self, store: Any) -> None:
        self.store = store

    # -------------------------------------------------------------- clock
    def _fs_now(self) -> float:
        """The claims directory's notion of "now": the mtime of a fresh probe touch.

        On a shared mount the mtime is stamped by the fileserver, i.e. the
        same clock that stamps every peer's heartbeat mtimes.
        """
        claims_dir = self.store.claims_dir
        claims_dir.mkdir(parents=True, exist_ok=True)
        probe = claims_dir / f".clock.{os.getpid()}"
        fd = os.open(probe, os.O_CREAT | os.O_WRONLY | os.O_TRUNC)
        try:
            os.write(fd, b".")
        finally:
            os.close(fd)
        return os.stat(probe).st_mtime

    # -------------------------------------------------------------- claims
    def try_claim(self, task_id: str, worker_id: str, lease_seconds: float) -> bool:
        self.store.claims_dir.mkdir(parents=True, exist_ok=True)
        now = time.time()
        document = dumps_artifact(
            {
                "task": task_id,
                "worker": worker_id,
                "acquired_at": now,
                "heartbeat_at": now,
                "lease_seconds": float(lease_seconds),
            }
        )
        try:
            fd = os.open(self.store.claim_path(task_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, document.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def claim_many(self, task_ids: Sequence[str], worker_id: str, lease_seconds: float) -> List[str]:
        # No cheaper primitive than one O_EXCL create per claim exists on a
        # plain filesystem; the batch form still saves the caller's per-task
        # bookkeeping (and is where the SQLite backend wins a transaction).
        return [task_id for task_id in task_ids if self.try_claim(task_id, worker_id, lease_seconds)]

    def read_claim(self, task_id: str) -> Optional[Dict[str, Any]]:
        path = self.store.claim_path(task_id)
        for attempt in (0, 1):
            try:
                mtime = os.stat(path).st_mtime
                text = path.read_text()
            except FileNotFoundError:
                return None
            try:
                claim = json.loads(text)
            except json.JSONDecodeError:
                if attempt == 0:
                    # Probably a peer's heartbeat rewrite caught mid-flight
                    # (non-atomic filesystems, hand-copied directories):
                    # give the writer one beat to finish before concluding
                    # the claim is damaged.
                    time.sleep(self.TORN_READ_RETRY_SECONDS)
                    continue
                # Still unreadable: surface it as an immediately-expired
                # claim so the task can be rescued by a steal.
                return {
                    "task": task_id,
                    "worker": "?",
                    "heartbeat_at": 0.0,
                    "lease_seconds": 0.0,
                    "_heartbeat_age": float("inf"),
                }
            claim["_heartbeat_age"] = max(0.0, self._fs_now() - mtime)
            return claim
        return None  # pragma: no cover - loop always returns

    def heartbeat(self, task_id: str, worker_id: str) -> bool:
        from repro.sim.store import _atomic_write_text  # local import: store imports this module

        claim = self.read_claim(task_id)
        if claim is None or claim.get("worker") != worker_id:
            return False
        claim.pop("_heartbeat_age", None)
        claim["heartbeat_at"] = time.time()
        # The atomic replace also refreshes the claim file's mtime, which is
        # the timestamp expiry actually runs on.
        _atomic_write_text(self.store.claim_path(task_id), dumps_artifact(claim))
        return True

    def steal(self, task_id: str, worker_id: str, lease_seconds: float) -> bool:
        claim = self.read_claim(task_id)
        if claim is None or not self.claim_expired(claim):
            return False
        path = self.store.claim_path(task_id)
        tombstone = path.with_name(f"{path.name}.stale.{worker_id}")
        try:
            os.rename(path, tombstone)
        except FileNotFoundError:
            return False  # another worker stole (or the owner released) first
        try:
            tombstone.unlink()
        except FileNotFoundError:  # pragma: no cover - nothing else touches the tombstone
            pass
        _logger.info(
            "claim %s of worker %s expired (lease %.1fs); reclaimed by %s",
            task_id,
            claim.get("worker"),
            float(claim.get("lease_seconds", 0.0)),
            worker_id,
        )
        return self.try_claim(task_id, worker_id, lease_seconds)

    def release(self, task_id: str, worker_id: str) -> None:
        claim = self.read_claim(task_id)
        if claim is not None and claim.get("worker") != worker_id:
            return  # stolen while we computed; the thief owns the file now
        try:
            self.store.claim_path(task_id).unlink()
        except FileNotFoundError:
            pass

    def active_claims(self) -> List[Dict[str, Any]]:
        claims_dir = self.store.claims_dir
        if not claims_dir.exists():
            return []
        out = []
        for path in sorted(claims_dir.glob("*.claim")):
            claim = self.read_claim(path.name[: -len(".claim")])
            if claim is not None:
                out.append(claim)
        return out

    # -------------------------------------------------------------- workers
    def worker_record(self, worker_id: str, **fields: Any) -> None:
        from repro.sim.store import _atomic_write_text

        workers_dir = self.store.workers_dir
        workers_dir.mkdir(parents=True, exist_ok=True)
        document = {"worker": worker_id, "heartbeat_at": time.time(), **jsonify(dict(fields))}
        _atomic_write_text(self.store.worker_path(worker_id), dumps_artifact(document))

    def worker_records(self) -> List[Dict[str, Any]]:
        workers_dir = self.store.workers_dir
        if not workers_dir.exists():
            return []
        out = []
        for path in sorted(workers_dir.glob("*.json")):
            try:
                out.append(json.loads(path.read_text()))
            except (json.JSONDecodeError, FileNotFoundError):
                continue
        return out

    # -------------------------------------------------------------- timings
    def record_timing(self, task_id: str, worker_id: str, seconds: float, trials: int) -> None:
        from repro.sim.store import _atomic_write_text

        timings_dir = self.store.timings_dir
        timings_dir.mkdir(parents=True, exist_ok=True)
        document = {
            "task": task_id,
            "worker": worker_id,
            "seconds": float(seconds),
            "trials": int(trials),
            "recorded_at": time.time(),
        }
        _atomic_write_text(timings_dir / f"{task_id}.json", dumps_artifact(document))

    def task_timings(self) -> List[Dict[str, Any]]:
        timings_dir = self.store.timings_dir
        if not timings_dir.exists():
            return []
        out = []
        for path in sorted(timings_dir.glob("*.json")):
            try:
                out.append(json.loads(path.read_text()))
            except (json.JSONDecodeError, FileNotFoundError):
                continue
        return out


# ---------------------------------------------------------------------- sqlite
class SQLiteBackend(DispatchBackend):
    """All coordination state in one WAL-mode SQLite database per run directory.

    ``claims``, ``workers`` and ``timings`` are tables; claim/steal/batch-
    claim are single ``BEGIN IMMEDIATE`` transactions, so a 500-cell sweep
    costs a handful of page writes instead of thousands of claim-file
    creates, and expiry (``heartbeat_at + lease_seconds < now``) is evaluated
    inside the steal transaction against timestamps that all come from
    processes on the database host -- one clock, structurally.

    WAL mode requires a local (non-NFS) filesystem, which makes this backend
    **single-host**: N worker processes on one machine.  For multi-host
    fleets sharing NFS, use :class:`FilesystemBackend`.

    Connections are opened lazily and never survive a ``fork()`` -- each
    process (and the run's daemon heartbeat thread, serialised by a lock)
    gets a connection bound to its own pid, so multiprocessing workers and
    SIGKILLed victims can never corrupt each other's transactions.
    """

    name = "sqlite"
    DB_NAME = "dispatch.sqlite"

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS claims (
        task          TEXT PRIMARY KEY,
        worker        TEXT NOT NULL,
        acquired_at   REAL NOT NULL,
        heartbeat_at  REAL NOT NULL,
        lease_seconds REAL NOT NULL
    );
    CREATE TABLE IF NOT EXISTS workers (
        worker        TEXT PRIMARY KEY,
        heartbeat_at  REAL NOT NULL,
        fields        TEXT NOT NULL DEFAULT '{}'
    );
    CREATE TABLE IF NOT EXISTS timings (
        task          TEXT PRIMARY KEY,
        worker        TEXT NOT NULL,
        seconds       REAL NOT NULL,
        trials        INTEGER NOT NULL,
        recorded_at   REAL NOT NULL
    );
    """

    def __init__(self, store: Any) -> None:
        self.store = store
        self.path = store.root / self.DB_NAME
        self._lock = threading.RLock()
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None or self._conn_pid != os.getpid():
            # A connection inherited across fork() must never be reused: the
            # child opens its own (the parent's stays with the parent).
            self.store.root.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.path, timeout=30.0, isolation_level=None, check_same_thread=False
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.executescript(self._SCHEMA)
            self._conn = conn
            self._conn_pid = os.getpid()
        return self._conn

    def _transaction(self, conn: sqlite3.Connection):
        """``BEGIN IMMEDIATE`` context: take the write lock up front, commit/rollback."""
        return _ImmediateTransaction(conn)

    # -------------------------------------------------------------- claims
    def try_claim(self, task_id: str, worker_id: str, lease_seconds: float) -> bool:
        return self.claim_many([task_id], worker_id, lease_seconds) == [task_id]

    def claim_many(self, task_ids: Sequence[str], worker_id: str, lease_seconds: float) -> List[str]:
        won: List[str] = []
        with self._lock:
            conn = self._connection()
            now = time.time()
            with self._transaction(conn):
                for task_id in task_ids:
                    cursor = conn.execute(
                        "INSERT OR IGNORE INTO claims"
                        " (task, worker, acquired_at, heartbeat_at, lease_seconds)"
                        " VALUES (?, ?, ?, ?, ?)",
                        (task_id, worker_id, now, now, float(lease_seconds)),
                    )
                    if cursor.rowcount == 1:
                        won.append(task_id)
        return won

    def read_claim(self, task_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            conn = self._connection()
            row = conn.execute("SELECT * FROM claims WHERE task = ?", (task_id,)).fetchone()
            now = time.time()
        if row is None:
            return None
        return self._claim_dict(row, now)

    @staticmethod
    def _claim_dict(row: sqlite3.Row, now: float) -> Dict[str, Any]:
        claim = dict(row)
        # All writers share the database host's clock (WAL = local fs), so
        # reader-minus-writer wall time *is* single-clock heartbeat age.
        claim["_heartbeat_age"] = max(0.0, now - float(claim["heartbeat_at"]))
        return claim

    def heartbeat(self, task_id: str, worker_id: str) -> bool:
        with self._lock:
            conn = self._connection()
            with self._transaction(conn):
                cursor = conn.execute(
                    "UPDATE claims SET heartbeat_at = ? WHERE task = ? AND worker = ?",
                    (time.time(), task_id, worker_id),
                )
                return cursor.rowcount == 1

    def steal(self, task_id: str, worker_id: str, lease_seconds: float) -> bool:
        with self._lock:
            conn = self._connection()
            now = time.time()
            with self._transaction(conn):
                # Expiry is checked and the takeover applied in ONE guarded
                # UPDATE: of several contenders exactly one sees the expired
                # row, the rest match zero rows -- the SQL analogue of the
                # filesystem backend's rename-to-tombstone.
                row = conn.execute(
                    "SELECT worker, lease_seconds FROM claims WHERE task = ?", (task_id,)
                ).fetchone()
                cursor = conn.execute(
                    "UPDATE claims SET worker = ?, acquired_at = ?, heartbeat_at = ?,"
                    " lease_seconds = ?"
                    " WHERE task = ? AND heartbeat_at + lease_seconds < ?",
                    (worker_id, now, now, float(lease_seconds), task_id, now),
                )
                stolen = cursor.rowcount == 1
        if stolen and row is not None:
            _logger.info(
                "claim %s of worker %s expired (lease %.1fs); reclaimed by %s",
                task_id,
                row["worker"],
                float(row["lease_seconds"]),
                worker_id,
            )
        return stolen

    def release(self, task_id: str, worker_id: str) -> None:
        with self._lock:
            conn = self._connection()
            with self._transaction(conn):
                # The owner guard makes releasing a stolen claim a no-op,
                # exactly like the filesystem backend.
                conn.execute(
                    "DELETE FROM claims WHERE task = ? AND worker = ?", (task_id, worker_id)
                )

    def active_claims(self) -> List[Dict[str, Any]]:
        with self._lock:
            conn = self._connection()
            rows = conn.execute("SELECT * FROM claims ORDER BY task").fetchall()
            now = time.time()
        return [self._claim_dict(row, now) for row in rows]

    # -------------------------------------------------------------- workers
    def worker_record(self, worker_id: str, **fields: Any) -> None:
        payload = json.dumps(jsonify(dict(fields)), sort_keys=True)
        with self._lock:
            conn = self._connection()
            with self._transaction(conn):
                conn.execute(
                    "INSERT OR REPLACE INTO workers (worker, heartbeat_at, fields)"
                    " VALUES (?, ?, ?)",
                    (worker_id, time.time(), payload),
                )

    def worker_records(self) -> List[Dict[str, Any]]:
        with self._lock:
            conn = self._connection()
            rows = conn.execute("SELECT * FROM workers ORDER BY worker").fetchall()
        out = []
        for row in rows:
            record = {"worker": row["worker"], "heartbeat_at": row["heartbeat_at"]}
            try:
                record.update(json.loads(row["fields"]))
            except json.JSONDecodeError:  # pragma: no cover - we wrote it
                pass
            out.append(record)
        return out

    # -------------------------------------------------------------- timings
    def record_timing(self, task_id: str, worker_id: str, seconds: float, trials: int) -> None:
        with self._lock:
            conn = self._connection()
            with self._transaction(conn):
                conn.execute(
                    "INSERT OR REPLACE INTO timings"
                    " (task, worker, seconds, trials, recorded_at)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (task_id, worker_id, float(seconds), int(trials), time.time()),
                )

    def task_timings(self) -> List[Dict[str, Any]]:
        with self._lock:
            conn = self._connection()
            rows = conn.execute("SELECT * FROM timings ORDER BY task").fetchall()
        return [dict(row) for row in rows]

    def close(self) -> None:
        with self._lock:
            if self._conn is not None and self._conn_pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._conn_pid = None


class _ImmediateTransaction:
    """``with`` block running ``BEGIN IMMEDIATE`` ... ``COMMIT``/``ROLLBACK``."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self.conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self.conn.execute("BEGIN IMMEDIATE")
        return self.conn

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is None:
            self.conn.execute("COMMIT")
        else:
            self.conn.execute("ROLLBACK")


# ---------------------------------------------------------------------- registry
BACKENDS: Dict[str, type] = {
    FilesystemBackend.name: FilesystemBackend,
    SQLiteBackend.name: SQLiteBackend,
}


def make_backend(store: Any, name: str) -> DispatchBackend:
    """Instantiate the backend registered under ``name`` for ``store``."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(f"unknown dispatch backend {name!r}; known: {sorted(BACKENDS)}") from None
    return cls(store)


def backend_from_manifest(store: Any) -> DispatchBackend:
    """The backend a run directory's manifest names (filesystem when unset/absent)."""
    try:
        manifest = store.manifest()
    except (FileNotFoundError, json.JSONDecodeError):
        manifest = {}
    name = (manifest.get("dispatch") or {}).get("backend", FilesystemBackend.name)
    return make_backend(store, name)
