"""Experiment configuration and Monte-Carlo runner.

All twelve experiments (E1-E12, see DESIGN.md) share the same scaffolding:

* an :class:`ExperimentConfig` describing the network (n, delta, degree),
  the adversary (kind and rate, usually expressed as a *fraction* of the
  paper's churn limit so it scales meaningfully with n), the storage mode,
  and the trial structure (seeds, warm-up rounds, measurement rounds);
* :func:`build_system` which turns a config + seed into a ready
  :class:`~repro.core.protocol.P2PStorageSystem`;
* :func:`run_trials` which maps a per-trial callable over the seeds and
  gathers the per-trial results, delegating to
  :class:`repro.sim.runner.TrialRunner` so trials run in parallel when the
  config's ``workers`` knob (or the explicit ``workers`` argument) says so.

Experiments keep their own logic (what to measure, which table to print) in
``repro.experiments.expNN_*``; this module only owns the shared plumbing.

:class:`ExperimentConfig` and :class:`TrialResult` round-trip through JSON
(``to_json``/``from_json``), which is what lets :class:`repro.sim.store.
ResultStore` persist per-cell artifacts and resume interrupted runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from functools import lru_cache
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.params import ProtocolParameters
from repro.core.protocol import P2PStorageSystem
from repro.net.churn import (
    AdaptiveAdversary,
    BurstChurn,
    ChurnAdversary,
    NoChurn,
    SequentialSweepChurn,
    UniformRandomChurn,
    paper_churn_limit,
)
from repro.util.rng import SplitRng
from repro.util.serialization import dumps_artifact, jsonify
from repro.util.validation import check_choice

__all__ = [
    "ExperimentConfig",
    "TrialResult",
    "build_adversary",
    "build_system",
    "default_warmup",
    "resolved_params",
    "run_trials",
    "resolve_churn_rate",
]

ADVERSARY_KINDS = ("none", "uniform", "sweep", "burst", "adaptive")
ENGINE_KINDS = ("lockstep", "events")


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one experiment run.

    Attributes
    ----------
    name:
        Experiment identifier (``"E5"`` etc.), used in tables and logs.
    n:
        Network size.
    delta:
        The paper's delta (churn exponent ``1 + delta``).
    degree:
        Topology degree.
    churn_fraction:
        Churn per round as a fraction of the paper's limit
        ``4 n / (ln n)^{1+delta}``.  Ignored when ``churn_rate`` is set.
    churn_rate:
        Absolute per-round churn (overrides ``churn_fraction`` when not None).
    adversary:
        One of ``"none"``, ``"uniform"``, ``"sweep"``, ``"burst"``, ``"adaptive"``.
    storage_mode:
        ``"replicate"`` or ``"erasure"``.
    seeds:
        Seeds for the independent Monte-Carlo trials.
    warmup_rounds:
        Rounds run before measurement starts (None = one walk length + 2).
    measure_rounds:
        Rounds of measurement after warm-up.
    items:
        Number of items stored in storage-centric experiments.
    item_size:
        Item payload size in bytes.
    param_overrides:
        Extra keyword overrides for :class:`ProtocolParameters`.
    engine:
        ``"lockstep"`` (the synchronous round engine) or ``"events"`` (the
        discrete-event :class:`~repro.sim.events.AsyncProtocolSystem`).
        Zero-latency event mode is byte-identical to lockstep.
    latency:
        Latency-model config dict for the event engine (see
        :mod:`repro.net.latency`); ``None`` means zero latency.  Setting a
        latency with ``engine="lockstep"`` is an error.
    workers:
        Worker processes used by :func:`run_trials` and sweeps (1 =
        sequential).  Parallel runs are seed-deterministic, so this knob
        never changes results -- only wall-clock time.
    observe:
        Observability switches (:mod:`repro.obs`): a mapping with optional
        boolean keys ``"trace"`` (stream Chrome-trace spans) and
        ``"telemetry"`` (record counters), or ``None`` for no observation.
        Like ``workers`` this is pure transport: it is excluded from cell
        keys and normalised away in canonical artifacts, because observation
        never changes a payload byte (``tests/test_obs.py`` proves it).
    """

    name: str
    n: int = 512
    delta: float = 0.5
    degree: int = 8
    churn_fraction: float = 0.05
    churn_rate: Optional[int] = None
    adversary: str = "uniform"
    storage_mode: str = "replicate"
    seeds: Sequence[int] = (0, 1, 2)
    warmup_rounds: Optional[int] = None
    measure_rounds: int = 40
    items: int = 4
    item_size: int = 256
    param_overrides: Dict[str, float] = field(default_factory=dict)
    engine: str = "lockstep"
    latency: Optional[Dict[str, Any]] = None
    workers: int = 1
    observe: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        check_choice(self.adversary, "adversary", ADVERSARY_KINDS)
        check_choice(self.storage_mode, "storage_mode", ("replicate", "erasure"))
        check_choice(self.engine, "engine", ENGINE_KINDS)
        if self.n < 16 or self.n % 2:
            raise ValueError("n must be an even integer >= 16")
        if self.churn_fraction < 0:
            raise ValueError("churn_fraction must be non-negative")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.latency is not None:
            if not isinstance(self.latency, Mapping):
                raise TypeError("latency must be a mapping (a latency-model JSON dict) or None")
            if self.engine == "lockstep":
                raise ValueError("latency requires engine='events' (lockstep has no latency)")
        if self.observe is not None:
            if not isinstance(self.observe, Mapping):
                raise TypeError("observe must be a mapping with 'trace'/'telemetry' keys, or None")
            unknown = set(self.observe) - {"trace", "telemetry"}
            if unknown:
                raise ValueError(f"unknown observe keys {sorted(unknown)}; known: ['telemetry', 'trace']")

    def resolved_churn_rate(self) -> int:
        """The absolute per-round churn this config implies."""
        return resolve_churn_rate(self)

    def with_overrides(self, **kwargs: Any) -> "ExperimentConfig":
        """Copy with fields replaced (used by sweeps)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------ serialization
    def to_json_dict(self) -> Dict[str, Any]:
        """All fields as plain JSON data (seeds become a list)."""
        return {f.name: jsonify(getattr(self, f.name)) for f in fields(self)}

    def to_json(self) -> str:
        """JSON document for on-disk artifacts."""
        return dumps_artifact(self.to_json_dict())

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_json_dict` output.

        Unknown keys are rejected (they would silently change semantics);
        ``seeds`` is normalised back to a tuple so round-tripped configs
        compare equal to the originals.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ExperimentConfig fields {sorted(unknown)}; known: {sorted(known)}")
        payload = dict(data)
        if "seeds" in payload:
            payload["seeds"] = tuple(int(seed) for seed in payload["seeds"])
        if "param_overrides" in payload:
            payload["param_overrides"] = dict(payload["param_overrides"])
        if payload.get("latency") is not None:
            payload["latency"] = dict(payload["latency"])
        if payload.get("observe") is not None:
            payload["observe"] = dict(payload["observe"])
        return cls(**payload)

    @classmethod
    def from_json(cls, document: str) -> "ExperimentConfig":
        """Inverse of :meth:`to_json`."""
        return cls.from_json_dict(json.loads(document))

    def summary_dict(self) -> Dict[str, Any]:
        """The fields that differ from the dataclass defaults (plus ``name``).

        This is what experiment reports render as their ``config:`` line --
        compact enough to read, complete enough to reproduce the run
        together with the defaults documented on the class.
        """
        import dataclasses

        summary: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "name":
                summary["name"] = value
                continue
            if f.default is not dataclasses.MISSING:
                default = f.default
            elif f.default_factory is not dataclasses.MISSING:
                default = f.default_factory()
            else:  # pragma: no cover - every field has a default today
                default = dataclasses.MISSING
            if value != default:
                summary[f.name] = value
        return jsonify(summary)


def resolve_churn_rate(config: ExperimentConfig) -> int:
    """Absolute churn per round: explicit rate, or fraction of the paper's limit."""
    if config.churn_rate is not None:
        return max(0, int(config.churn_rate))
    if config.adversary == "none" or config.churn_fraction == 0:
        return 0
    limit = paper_churn_limit(config.n, config.delta)
    return max(1, int(round(config.churn_fraction * limit)))


def build_adversary(config: ExperimentConfig, split: SplitRng) -> ChurnAdversary:
    """Construct the adversary described by ``config`` from the adversary RNG stream."""
    rate = resolve_churn_rate(config)
    rng = split.adversary.spawn("churn").generator
    if config.adversary == "none" or rate == 0:
        return NoChurn()
    if config.adversary == "uniform":
        return UniformRandomChurn(config.n, rate, rng)
    if config.adversary == "sweep":
        return SequentialSweepChurn(config.n, rate, rng)
    if config.adversary == "burst":
        return BurstChurn(config.n, rate, period=8, rng=rng)
    if config.adversary == "adaptive":
        return AdaptiveAdversary(config.n, rate, rng)
    raise ValueError(f"unknown adversary kind {config.adversary!r}")


def build_system(config: ExperimentConfig, seed: int) -> P2PStorageSystem:
    """Build a ready-to-run system for one trial of ``config``.

    The engine comes from ``config.engine`` unless overridden by an active
    :func:`repro.sim.events.force_engine` context (used by equivalence
    tests to run lockstep configs through the event engine unchanged).
    """
    from repro.sim.events import AsyncProtocolSystem, forced_engine  # local import: events imports protocol

    engine, latency = forced_engine()
    if engine is None:
        engine, latency = config.engine, config.latency
    split = SplitRng(seed)
    adversary = build_adversary(config, split)
    overrides = dict(config.param_overrides)
    overrides.setdefault("degree", config.degree)
    overrides.setdefault("delta", config.delta)
    params = ProtocolParameters.for_network(config.n, **overrides)
    if engine == "events":
        system: P2PStorageSystem = AsyncProtocolSystem(
            n=config.n,
            seed=seed,
            params=params,
            adversary=adversary,
            storage_mode=config.storage_mode,
            degree=config.degree,
            latency=latency,
        )
    else:
        system = P2PStorageSystem(
            n=config.n,
            seed=seed,
            params=params,
            adversary=adversary,
            storage_mode=config.storage_mode,
            degree=config.degree,
        )
    if isinstance(adversary, AdaptiveAdversary):
        # The (non-oblivious) ablation adversary targets the slots of the
        # nodes currently holding items or serving on storage committees.
        def probe() -> List[int]:
            slots: List[int] = []
            for item_id in system.storage.item_ids:
                item = system.storage.items[item_id]
                for uid in item.committee.alive_members():
                    slot = system.network.slot_of_or_none(uid)
                    if slot is not None:
                        slots.append(slot)
                for uid in system.storage.holders_of(item_id):
                    slot = system.network.slot_of_or_none(uid)
                    if slot is not None:
                        slots.append(slot)
            return slots

        adversary.set_target_probe(probe)
    return system


@dataclass(frozen=True)
class TrialResult:
    """Result of one seeded trial: arbitrary payload plus timing."""

    seed: int
    payload: Dict[str, Any]
    elapsed_seconds: float

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-data form (payload normalised via :func:`repro.util.serialization.jsonify`)."""
        return {
            "seed": int(self.seed),
            "payload": jsonify(self.payload),
            "elapsed_seconds": float(self.elapsed_seconds),
        }

    def to_json(self) -> str:
        """JSON document for on-disk artifacts."""
        return dumps_artifact(self.to_json_dict())

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "TrialResult":
        """Rebuild a trial result from :meth:`to_json_dict` output."""
        return cls(
            seed=int(data["seed"]),
            payload=dict(data["payload"]),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )

    @classmethod
    def from_json(cls, document: str) -> "TrialResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_json_dict(json.loads(document))


def run_trials(
    config: ExperimentConfig,
    trial: Callable[[ExperimentConfig, int], Dict[str, Any]],
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
) -> List[TrialResult]:
    """Run ``trial(config, seed)`` for every seed and collect the results.

    ``workers`` defaults to ``config.workers``; with more than one worker the
    trials run on a process pool (see :class:`repro.sim.runner.TrialRunner`).
    Results are returned in seed order either way, and parallel payloads are
    byte-identical to sequential ones.

    When a :class:`~repro.sim.store.ResultStore` is active (via
    :func:`repro.sim.store.use_store` or the ``repro-experiment --json-out``
    CLI), the whole seed batch is treated as one persisted cell: a completed
    batch is loaded from disk instead of re-run, and a fresh batch is written
    as a per-cell artifact so the run can be resumed later.
    """
    from repro.sim.runner import TrialRunner  # local import: runner imports this module
    from repro.sim.store import active_store  # local import: store imports this module

    seeds = config.seeds if seeds is None else tuple(seeds)
    store = active_store()
    if store is not None:
        key = store.cell_key(trial, config, seeds)
        cached = store.load_trials(key)
        if cached is not None:
            return cached
    runner = TrialRunner(workers=config.workers if workers is None else workers)
    if store is not None:
        from repro.sim.dispatch import CellSpec, active_dispatcher  # local import: dispatch imports this module

        dispatcher = active_dispatcher()
        if dispatcher is not None:
            # Distributed mode: the whole seed batch becomes claimable work
            # (chunked across workers when the seed list is large).
            spec = CellSpec(key=key, config=config, seeds=tuple(int(seed) for seed in seeds))
            return dispatcher.execute(trial, [spec], runner=runner)[key]
    results = runner.run(config, trial, seeds=seeds)
    if store is not None:
        from repro.sim.runner import persist_cell_telemetry

        store.save_cell(key, trial=trial, config=config, seeds=seeds, trials=results)
        persist_cell_telemetry(store, key, runner.last_counters)
    return results


@lru_cache(maxsize=256)
def _cached_params(n: int, delta: float, override_items: Tuple[Tuple[str, Any], ...]) -> ProtocolParameters:
    """Resolve :class:`ProtocolParameters` once per distinct (n, delta, overrides)."""
    return ProtocolParameters.for_network(n, delta=delta, **dict(override_items))


def resolved_params(config: ExperimentConfig) -> ProtocolParameters:
    """The protocol parameters implied by ``config`` (cached; parameters are immutable)."""
    try:
        return _cached_params(config.n, config.delta, tuple(sorted(config.param_overrides.items())))
    except TypeError:  # unhashable override value: resolve without the cache
        return ProtocolParameters.for_network(config.n, delta=config.delta, **config.param_overrides)


def default_warmup(config: ExperimentConfig) -> int:
    """Warm-up rounds: one walk length plus two unless overridden."""
    if config.warmup_rounds is not None:
        return config.warmup_rounds
    return resolved_params(config).walk_length + 2
