"""Experiment result containers.

An :class:`ExperimentResult` bundles everything one experiment run produced:
the configuration it was run with (a real :class:`~repro.sim.experiment.
ExperimentConfig`, plus a dict of experiment-specific derived settings), its
result tables, free-text findings, and wall-clock timing.  The experiment
registry uses it to print a uniform report and EXPERIMENTS.md is generated
from the same objects, so the numbers in the documentation always come from
code that can be re-run.

Results are durable: :meth:`ExperimentResult.to_json` /
:meth:`ExperimentResult.from_json` round-trip the whole report (config,
tables, findings) through JSON, and the ``repro-experiment run --json-out``
CLI writes exactly that document as ``result.json`` in the run directory.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.analysis.tables import ResultTable
from repro.sim.experiment import ExperimentConfig
from repro.util.serialization import dumps_artifact, dumps_compact, jsonify

__all__ = ["ExperimentResult", "timed_experiment"]


@dataclass
class ExperimentResult:
    """Everything produced by one experiment run.

    Attributes
    ----------
    experiment_id / title / claim:
        Identity of the experiment and the paper claim it exercises.
    tables:
        The measured result tables.
    findings:
        One-sentence measured findings.
    config:
        The :class:`ExperimentConfig` the run used (``None`` only for
        hand-assembled results); rendered via its JSON summary.
    config_summary:
        Experiment-specific *derived* settings that are not plain config
        fields (paper bounds, sweep axes, erasure parameters, ...).
    elapsed_seconds:
        Wall-clock duration stamped by :class:`timed_experiment`.
    """

    experiment_id: str
    title: str
    claim: str
    tables: List[ResultTable] = field(default_factory=list)
    findings: List[str] = field(default_factory=list)
    config: Optional[ExperimentConfig] = None
    config_summary: Dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def add_table(self, table: ResultTable) -> None:
        """Attach a result table."""
        self.tables.append(table)

    def add_finding(self, finding: str) -> None:
        """Attach a one-sentence measured finding."""
        self.findings.append(finding)

    # ------------------------------------------------------------------ rendering
    def config_text(self) -> str:
        """The ``config:`` line, rendered from the config's JSON serialization."""
        if self.config is not None:
            return dumps_compact(self.config.summary_dict())
        return dumps_compact(self.config_summary)

    def derived_text(self) -> Optional[str]:
        """The derived-settings line (None when there is nothing beyond the config)."""
        if self.config is not None and self.config_summary:
            return dumps_compact(self.config_summary)
        return None

    def to_text(self) -> str:
        """Terminal-friendly report."""
        lines = [
            f"{self.experiment_id}: {self.title}",
            f"claim: {self.claim}",
            f"config: {self.config_text()}",
        ]
        derived = self.derived_text()
        if derived is not None:
            lines.append(f"derived: {derived}")
        lines.append(f"elapsed: {self.elapsed_seconds:.2f}s")
        lines.append("")
        for table in self.tables:
            lines.append(table.to_text())
            lines.append("")
        if self.findings:
            lines.append("findings:")
            lines.extend(f"  - {finding}" for finding in self.findings)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Markdown report (used to assemble EXPERIMENTS.md)."""
        config_line = f"*Configuration:* `{self.config_text()}`"
        derived = self.derived_text()
        if derived is not None:
            config_line += f"  \n*Derived:* `{derived}`"
        lines = [
            f"## {self.experiment_id}: {self.title}",
            "",
            f"**Paper claim.** {self.claim}",
            "",
            f"{config_line}  \n*Elapsed:* {self.elapsed_seconds:.2f}s",
            "",
        ]
        for table in self.tables:
            lines.append(table.to_markdown())
            lines.append("")
        if self.findings:
            lines.append("**Measured findings.**")
            lines.extend(f"- {finding}" for finding in self.findings)
        return "\n".join(lines)

    # ------------------------------------------------------------------ serialization
    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-data form of the whole report."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "config": None if self.config is None else self.config.to_json_dict(),
            "config_summary": jsonify(self.config_summary),
            "tables": [table.to_json_dict() for table in self.tables],
            "findings": list(self.findings),
            "elapsed_seconds": float(self.elapsed_seconds),
        }

    def to_json(self) -> str:
        """JSON document for on-disk artifacts (``result.json``)."""
        return dumps_artifact(self.to_json_dict())

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a report from :meth:`to_json_dict` output."""
        config = data.get("config")
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            claim=data["claim"],
            tables=[ResultTable.from_json_dict(t) for t in data.get("tables", [])],
            findings=list(data.get("findings", [])),
            config=None if config is None else ExperimentConfig.from_json_dict(config),
            config_summary=dict(data.get("config_summary", {})),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )

    @classmethod
    def from_json(cls, document: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_json_dict(json.loads(document))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


class timed_experiment:
    """Context manager that stamps ``elapsed_seconds`` onto a result object.

    Usage::

        result = ExperimentResult(...)
        with timed_experiment(result):
            ... run trials, fill tables ...
    """

    def __init__(self, result: ExperimentResult) -> None:
        self.result = result
        self._start: Optional[float] = None

    def __enter__(self) -> ExperimentResult:
        self._start = time.perf_counter()
        return self.result

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.result.elapsed_seconds = time.perf_counter() - self._start
