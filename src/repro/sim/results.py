"""Experiment result containers.

An :class:`ExperimentResult` bundles everything one experiment run produced:
the configuration(s) it was run with, its result tables, free-text findings,
and wall-clock timing.  The experiment registry uses it to print a uniform
report and EXPERIMENTS.md is generated from the same objects, so the numbers
in the documentation always come from code that can be re-run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.tables import ResultTable

__all__ = ["ExperimentResult", "timed_experiment"]


@dataclass
class ExperimentResult:
    """Everything produced by one experiment run."""

    experiment_id: str
    title: str
    claim: str
    tables: List[ResultTable] = field(default_factory=list)
    findings: List[str] = field(default_factory=list)
    config_summary: Dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def add_table(self, table: ResultTable) -> None:
        """Attach a result table."""
        self.tables.append(table)

    def add_finding(self, finding: str) -> None:
        """Attach a one-sentence measured finding."""
        self.findings.append(finding)

    # ------------------------------------------------------------------ rendering
    def to_text(self) -> str:
        """Terminal-friendly report."""
        lines = [
            f"{self.experiment_id}: {self.title}",
            f"claim: {self.claim}",
            f"config: {self.config_summary}",
            f"elapsed: {self.elapsed_seconds:.2f}s",
            "",
        ]
        for table in self.tables:
            lines.append(table.to_text())
            lines.append("")
        if self.findings:
            lines.append("findings:")
            lines.extend(f"  - {finding}" for finding in self.findings)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Markdown report (used to assemble EXPERIMENTS.md)."""
        lines = [
            f"## {self.experiment_id}: {self.title}",
            "",
            f"**Paper claim.** {self.claim}",
            "",
            f"*Configuration:* `{self.config_summary}`  \n*Elapsed:* {self.elapsed_seconds:.2f}s",
            "",
        ]
        for table in self.tables:
            lines.append(table.to_markdown())
            lines.append("")
        if self.findings:
            lines.append("**Measured findings.**")
            lines.extend(f"- {finding}" for finding in self.findings)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


class timed_experiment:
    """Context manager that stamps ``elapsed_seconds`` onto a result object.

    Usage::

        result = ExperimentResult(...)
        with timed_experiment(result):
            ... run trials, fill tables ...
    """

    def __init__(self, result: ExperimentResult) -> None:
        self.result = result
        self._start: Optional[float] = None

    def __enter__(self) -> ExperimentResult:
        self._start = time.perf_counter()
        return self.result

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.result.elapsed_seconds = time.perf_counter() - self._start
