"""Per-round metric collection for simulations.

The :class:`MetricsCollector` observes a :class:`repro.core.protocol.P2PStorageSystem`
after every round and accumulates the time series the experiments and tests
need: item availability/findability, replica and landmark counts, committee
goodness, walk-soup survival, and bandwidth.  Collection is cheap (a handful
of dict/list operations per item per round) and entirely optional -- the
protocol itself never reads these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.protocol import P2PStorageSystem

__all__ = ["RoundMetrics", "MetricsCollector"]


@dataclass(frozen=True)
class RoundMetrics:
    """Snapshot of system health at the end of one round."""

    round_index: int
    churned: int
    availability: float
    findability: float
    mean_replicas: float
    mean_landmarks: float
    committees_good: int
    committees_total: int
    walks_in_flight: int
    walks_delivered: int
    retrieval_success_rate: float


class MetricsCollector:
    """Accumulates :class:`RoundMetrics` for one system over time."""

    def __init__(self, system: P2PStorageSystem) -> None:
        self.system = system
        self.history: List[RoundMetrics] = []
        #: item_id -> list of (round, replica_count)
        self.replica_series: Dict[int, List[tuple[int, int]]] = {}
        #: item_id -> list of (round, landmark_count)
        self.landmark_series: Dict[int, List[tuple[int, int]]] = {}

    # ------------------------------------------------------------------ collection
    def observe(self) -> RoundMetrics:
        """Record the current round's metrics and return them."""
        system = self.system
        storage = system.storage
        round_index = system.round_index
        item_ids = storage.item_ids

        replicas = [storage.replica_count(i) for i in item_ids]
        landmarks = [storage.landmark_count(i) for i in item_ids]
        for item_id, count in zip(item_ids, replicas):
            self.replica_series.setdefault(item_id, []).append((round_index, count))
        for item_id, count in zip(item_ids, landmarks):
            self.landmark_series.setdefault(item_id, []).append((round_index, count))

        committees = [storage.items[i].committee for i in item_ids]
        good = sum(1 for c in committees if not c.dissolved and c.is_good())

        last = system.round_summaries[-1] if system.round_summaries else None
        metrics = RoundMetrics(
            round_index=round_index,
            churned=last.churned if last else 0,
            availability=system.availability(),
            findability=system.findability(),
            mean_replicas=float(np.mean(replicas)) if replicas else 0.0,
            mean_landmarks=float(np.mean(landmarks)) if landmarks else 0.0,
            committees_good=good,
            committees_total=len(committees),
            walks_in_flight=last.walks_in_flight if last else system.soup.in_flight,
            walks_delivered=last.walks_delivered if last else 0,
            retrieval_success_rate=system.retrieval.success_rate(),
        )
        self.history.append(metrics)
        return metrics

    def run_and_observe(self, rounds: int) -> List[RoundMetrics]:
        """Run ``rounds`` rounds on the system, observing after each one."""
        out: List[RoundMetrics] = []
        for _ in range(rounds):
            self.system.run_round()
            out.append(self.observe())
        return out

    # ------------------------------------------------------------------ summaries
    def availability_series(self) -> List[float]:
        """Availability after every observed round."""
        return [m.availability for m in self.history]

    def min_availability(self) -> float:
        """Worst availability observed."""
        series = self.availability_series()
        return min(series) if series else 1.0

    def final(self) -> Optional[RoundMetrics]:
        """Most recent observation."""
        return self.history[-1] if self.history else None

    def mean_landmark_count(self) -> float:
        """Mean landmark count over all items and observed rounds."""
        values = [m.mean_landmarks for m in self.history if m.committees_total > 0]
        return float(np.mean(values)) if values else 0.0

    def committee_goodness_fraction(self) -> float:
        """Fraction of (item, round) observations in which the committee was good."""
        good = sum(m.committees_good for m in self.history)
        total = sum(m.committees_total for m in self.history)
        return good / total if total else 1.0

    def rounds_observed(self) -> int:
        """Number of recorded observations."""
        return len(self.history)
