"""Deterministic discrete-event scheduling and the asynchronous engine.

The lockstep engine (:class:`repro.core.protocol.P2PStorageSystem`) executes
each round as one fixed call sequence.  :class:`AsyncProtocolSystem` replaces
that sequence with events on a :class:`EventQueue`: soup-token deliveries,
churn arrivals, storage maintenance and retrieval probing all fire at
timestamps offset by delays drawn from a pluggable latency model
(:mod:`repro.net.latency`).

Determinism has two layers:

* the queue itself is deterministic -- ties at the same ``(time, priority)``
  are broken by a seeded content hash, so the pop order does not depend on
  the order in which events were added;
* the engine draws all latency from a dedicated stream spawned off the
  *analysis* side of the experiment's :class:`~repro.util.rng.SplitRng`,
  which the protocol never touches, so turning latency on cannot perturb a
  single protocol or adversary coin.

Under :class:`~repro.net.latency.ZeroLatency` the event schedule of a round
collapses to exactly the lockstep call sequence with exactly the same RNG
consumption; ``tests/test_sim_events.py`` enforces this byte-for-byte against
the lockstep oracle and the committed E3-E6 quick-mode artifacts.  See
``docs/ASYNC.md`` for the full argument.
"""

from __future__ import annotations

import heapq
import json
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from hashlib import blake2b
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.protocol import P2PStorageSystem, RoundSummary
from repro.net.latency import LatencyModel, resolve_latency
from repro.util.rng import derive_seed
from repro.util.serialization import jsonify
from repro.walks.soup import SampleDelivery

__all__ = [
    "Event",
    "EventHandle",
    "EventQueue",
    "AsyncProtocolSystem",
    "force_engine",
    "forced_engine",
]


# ---------------------------------------------------------------------- queue
@dataclass
class EventHandle:
    """Returned by :meth:`EventQueue.add_event`; lets the caller cancel."""

    seq: int
    time: float
    kind: str
    cancelled: bool = False
    popped: bool = False


@dataclass(frozen=True)
class Event:
    """A scheduled occurrence, as returned by :meth:`EventQueue.pop`."""

    time: float
    kind: str
    payload: Any = None
    seq: int = 0


class EventQueue:
    """A seeded min-heap of ``(time, priority, tie, seq)``-ordered events.

    The ``tie`` component is a keyed content hash of ``(kind, payload)`` --
    or of an explicit ``tie_key`` -- so that events scheduled for the same
    instant pop in an order that depends only on *what* they are, never on
    the order the producer happened to add them.  ``seq`` breaks the
    (astronomically unlikely) remaining ties by insertion order and keeps
    heap comparisons away from payload objects.

    Cancellation is lazy: cancelled entries stay in the heap and are skipped
    on pop, which keeps :meth:`cancel` O(1).
    """

    def __init__(self, seed: int = 0) -> None:
        self._heap: List[Tuple[float, int, int, int, EventHandle, Any]] = []
        self._seq = 0
        self._live = 0
        self._key = int(seed).to_bytes(8, "little", signed=False)
        #: Lifetime count of successful :meth:`cancel` calls (telemetry only).
        self.cancelled_total = 0

    def _tie(self, kind: str, payload: Any, tie_key: Optional[str]) -> int:
        data = tie_key if tie_key is not None else json.dumps(jsonify(payload), sort_keys=True)
        digest = blake2b(f"{kind}|{data}".encode(), key=self._key, digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def add_event(
        self,
        time: float,
        kind: str,
        payload: Any = None,
        priority: int = 0,
        tie_key: Optional[str] = None,
    ) -> EventHandle:
        """Schedule ``kind`` at ``time``; returns a cancellable handle.

        ``priority`` orders events at the same instant (lower first) before
        the seeded tie-break; ``tie_key`` replaces the payload in the tie
        hash when the payload is large or not JSON-serializable.
        """
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        handle = EventHandle(seq=self._seq, time=float(time), kind=kind)
        entry = (float(time), int(priority), self._tie(kind, payload, tie_key), self._seq, handle, payload)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, entry)
        return handle

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a pending event; returns False if already popped/cancelled."""
        if handle.cancelled or handle.popped:
            return False
        handle.cancelled = True
        self._live -= 1
        self.cancelled_total += 1
        return True

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` when empty."""
        while self._heap:
            time, _priority, _tie, seq, handle, payload = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            handle.popped = True
            self._live -= 1
            return Event(time=time, kind=handle.kind, payload=payload, seq=seq)
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or ``None`` when empty."""
        while self._heap and self._heap[0][4].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return self._live

    def drain(self) -> Iterator[Event]:
        """Pop every remaining event in order (mainly for tests)."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event


# ------------------------------------------------------------------- engine
#: Priority of each event kind within one timestamp.  ``round_end`` for round
#: r sits at time r+1 with priority -1 so it sorts before anything belonging
#: to round r+1; within a round the order mirrors the lockstep sequence.
PRIORITY: Dict[str, int] = {
    "round_end": -1,
    "round_begin": 0,
    "join": 1,
    "deliver": 2,
    "sampler_expire": 3,
    "storage_step": 4,
    "storage_item": 4,
    "retrieval_step": 5,
    "retrieval_op": 5,
}


class AsyncProtocolSystem(P2PStorageSystem):
    """Event-driven variant of :class:`P2PStorageSystem`.

    Accepts every lockstep constructor argument plus ``latency`` (a
    :class:`~repro.net.latency.LatencyModel`, its JSON dict, or ``None`` for
    zero latency).  The user-facing API (``warm_up``, ``store``,
    ``retrieve``, ``run_until_finished``, reporting) is inherited unchanged;
    only :meth:`run_round` is replaced by an event loop.

    With zero latency the per-round event schedule reproduces the lockstep
    call sequence exactly -- same calls, same arguments, same RNG draws --
    so results are byte-identical to the lockstep engine.  With nonzero
    latency, deliveries arrive ``floor(delay)`` rounds late, churned-in
    nodes stay dormant (inject no walks) until their join event fires, and
    storage/retrieval maintenance runs per-item/per-operation at delayed
    timestamps.
    """

    def __init__(self, *args, latency: "LatencyModel | Mapping[str, Any] | None" = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.latency = resolve_latency(latency)
        self.events = EventQueue(seed=derive_seed(self.seed, "events"))
        self._latency_rng = self.rng.analysis.spawn("latency")
        #: uid -> round at which the node's join event fires; dormant nodes
        #: occupy their slot but inject no walk tokens yet.
        self._dormant: Dict[int, int] = {}
        self._round_delivered = 0
        self._round_report = None

    # -------------------------------------------------------------- round loop
    def run_round(self) -> RoundSummary:
        """Execute one round by scheduling and draining its events."""
        r = self.network.round_index + 1
        add = self.events.add_event
        add(r, "round_begin", priority=PRIORITY["round_begin"], tie_key=f"round_begin:{r}")
        add(r, "sampler_expire", priority=PRIORITY["sampler_expire"], tie_key=f"sampler_expire:{r}")
        if self.latency.is_zero:
            add(r, "storage_step", priority=PRIORITY["storage_step"], tie_key=f"storage_step:{r}")
            add(r, "retrieval_step", priority=PRIORITY["retrieval_step"], tie_key=f"retrieval_step:{r}")
        add(r + 1, "round_end", priority=PRIORITY["round_end"], tie_key=f"round_end:{r}")

        obs = self.obs
        telemetry = obs.telemetry
        if telemetry:
            obs.gauge_max("events.queue_depth", len(self.events))
        while True:
            event = self.events.pop()
            if event is None:  # pragma: no cover - round_end is always queued
                raise RuntimeError("event queue drained before round_end")
            if event.kind == "round_end":
                if telemetry:
                    obs.gauge_max("events.cancelled_total", self.events.cancelled_total)
                return self._on_round_end()
            if obs.enabled:
                # Per-event dwell time; the f-string and span allocation only
                # happen on the enabled path.
                with obs.span(f"event.{event.kind}"):
                    self._dispatch(event)
                if telemetry:
                    obs.count(f"events.{event.kind}")
                    obs.gauge_max("events.queue_depth", len(self.events))
            else:
                self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        kind = event.kind
        if kind == "round_begin":
            self._on_round_begin(int(event.time))
        elif kind == "join":
            self._dormant.pop(int(event.payload), None)
        elif kind == "deliver":
            self._on_deliver(event.payload)
        elif kind == "sampler_expire":
            self.sampler.expire(self.network.round_index)
        elif kind == "storage_step":
            self.storage.step(self.network.round_index)
        elif kind == "storage_item":
            self.storage.step_item(int(event.payload), self.network.round_index)
        elif kind == "retrieval_step":
            self.retrieval.step(self.network.round_index)
        elif kind == "retrieval_op":
            op = self.retrieval.operations.get(int(event.payload))
            if op is not None:
                self.retrieval.step_operation(op, self.network.round_index)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event kind {kind!r}")

    # -------------------------------------------------------------- handlers
    def _on_round_begin(self, r: int) -> None:
        report = self.network.begin_round()
        self.last_churn_report = report
        self._round_report = report
        self._round_delivered = 0
        self.soup.apply_churn(report)
        if self._dormant:
            for uid in report.churned_out_uids:
                self._dormant.pop(int(uid), None)
        if not self.latency.is_zero:
            self._schedule_joins(report, r)
        self._inject(r)
        delivery = self.soup.step_and_collect(r)
        self._schedule_delivery(delivery, r)
        if not self.latency.is_zero:
            self._schedule_maintenance(r)
            self._schedule_retrievals(r)

    def _schedule_joins(self, report, r: int) -> None:
        uids = report.churned_in_uids
        if uids.size == 0:
            return
        delays = self.latency.node_delays(self._latency_rng.generator, uids)
        arrivals = np.maximum(1, np.floor(delays).astype(np.int64))
        for uid, k in zip(uids, arrivals):
            uid = int(uid)
            self._dormant[uid] = r + int(k)
            self.events.add_event(
                r + int(k), "join", payload=uid, priority=PRIORITY["join"], tie_key=f"join:{uid}"
            )

    def _inject(self, r: int) -> None:
        """Inject fresh walk tokens from every non-dormant alive node.

        With no dormant nodes this is exactly ``soup.inject_from_all`` --
        the call the lockstep engine makes -- so the zero-latency path never
        diverges in array order or RNG use.
        """
        if not self._dormant:
            self.soup.inject_from_all(r)
            return
        per = self.soup.walks_per_node
        if per <= 0:
            return
        uids = self.network.slot_uid_view()
        dormant = np.fromiter(self._dormant.keys(), dtype=np.int64, count=len(self._dormant))
        mask = ~np.isin(uids, dormant)
        slots = np.nonzero(mask)[0].astype(np.int32)
        self.soup.inject(np.repeat(slots, per), np.repeat(uids[mask], per), r)

    def _schedule_delivery(self, delivery: SampleDelivery, r: int) -> None:
        """Schedule this round's completed walks for (possibly delayed) ingest.

        An ingest event fires at round ``r`` even when nothing (or nothing
        yet) arrives: :meth:`NodeSampler.ingest` advances its ingest
        watermark on empty deliveries, and the lockstep engine ingests every
        round unconditionally.
        """
        if self.latency.is_zero:
            payload = (delivery.destination_uids, delivery.source_uids, delivery.birth_rounds)
            self.events.add_event(
                r, "deliver", payload=payload, priority=PRIORITY["deliver"], tie_key=f"deliver:{r}"
            )
            return
        dest, src, birth = delivery.destination_uids, delivery.source_uids, delivery.birth_rounds
        if dest.size:
            delays = self.latency.pair_delays(self._latency_rng.generator, src, dest)
            arrivals = np.floor(delays).astype(np.int64)
        else:
            arrivals = np.empty(0, dtype=np.int64)
        now = arrivals <= 0
        self.events.add_event(
            r,
            "deliver",
            payload=(dest[now], src[now], birth[now]),
            priority=PRIORITY["deliver"],
            tie_key=f"deliver:{r}",
        )
        late = ~now
        for k in np.unique(arrivals[late]):
            group = arrivals == k
            self.events.add_event(
                r + int(k),
                "deliver",
                payload=(dest[group], src[group], birth[group]),
                priority=PRIORITY["deliver"],
                tie_key=f"deliver:{r}+{int(k)}",
            )

    def _on_deliver(self, payload) -> None:
        dest, src, birth = payload
        delivery = SampleDelivery(
            round_index=self.network.round_index,
            destination_uids=dest,
            source_uids=src,
            birth_rounds=birth,
        )
        self.sampler.ingest(delivery)
        self._round_delivered += delivery.count
        self._last_delivery = delivery

    def _schedule_maintenance(self, r: int) -> None:
        items = [item for item in self.storage.items.values() if not item.lost]
        if not items:
            return
        owners = np.asarray([item.owner_uid for item in items], dtype=np.int64)
        delays = self.latency.node_delays(self._latency_rng.generator, owners)
        arrivals = np.floor(delays).astype(np.int64)
        for item, k in zip(items, arrivals):
            self.events.add_event(
                r + int(k),
                "storage_item",
                payload=item.item_id,
                priority=PRIORITY["storage_item"],
                tie_key=f"storage_item:{item.item_id}:{r}",
            )

    def _schedule_retrievals(self, r: int) -> None:
        pending = self.retrieval.pending_operations()
        if not pending:
            return
        requesters = np.asarray([op.requester_uid for op in pending], dtype=np.int64)
        delays = self.latency.node_delays(self._latency_rng.generator, requesters)
        arrivals = np.floor(delays).astype(np.int64)
        for op, k in zip(pending, arrivals):
            self.events.add_event(
                r + int(k),
                "retrieval_op",
                payload=op.op_id,
                priority=PRIORITY["retrieval_op"],
                tie_key=f"retrieval_op:{op.op_id}:{r}",
            )

    def _on_round_end(self) -> RoundSummary:
        report = self._round_report
        self.network.end_round()
        available = self.storage.available_count()
        summary = RoundSummary(
            round_index=report.round_index,
            churned=report.count,
            walks_delivered=self._round_delivered,
            walks_in_flight=self.soup.in_flight,
            items_available=available,
            items_total=len(self.storage.items),
            retrievals_pending=len(self.retrieval.pending_operations()),
            retrievals_succeeded=sum(1 for op in self.retrieval.operations.values() if op.succeeded),
        )
        self.round_summaries.append(summary)
        return summary

    # -------------------------------------------------------------- reporting
    def describe(self) -> Dict[str, object]:
        out = super().describe()
        out["engine"] = "events"
        out["latency"] = self.latency.to_json_dict()
        return out


# ------------------------------------------------------- engine forcing hook
_FORCED: ContextVar[Optional[Tuple[str, Optional[Mapping[str, Any]]]]] = ContextVar(
    "repro_forced_engine", default=None
)


@contextmanager
def force_engine(engine: str, latency: "Mapping[str, Any] | None" = None):
    """Force :func:`repro.sim.experiment.build_system` onto ``engine``.

    Used by the equivalence regression tests to run unmodified lockstep
    experiment configs through the asynchronous engine (so cell keys and
    artifact bytes stay comparable) without editing the configs.
    """
    if engine not in ("lockstep", "events"):
        raise ValueError(f"unknown engine {engine!r}")
    token = _FORCED.set((engine, latency))
    try:
        yield
    finally:
        _FORCED.reset(token)


def forced_engine() -> Tuple[Optional[str], Optional[Mapping[str, Any]]]:
    """The (engine, latency) forced by :func:`force_engine`, or ``(None, None)``."""
    value = _FORCED.get()
    return value if value is not None else (None, None)
