"""Store-aware distributed sweep execution: claimable cells, leases, chunking.

PR 2 made a :class:`~repro.sim.store.ResultStore` run directory resumable
(completed cells load from disk, missing cells are recomputed).  This module
turns the same directory into a **shared work queue** so N worker processes
-- on one host or on several hosts sharing the directory -- cooperatively
complete one run:

* every missing sweep cell (and every *seed-chunk* of a large cell) becomes a
  claimable :class:`DispatchTask`;
* a worker takes a task through a pluggable
  :class:`~repro.sim.backends.DispatchBackend` -- atomically creating
  ``claims/<task>.claim`` on the filesystem backend, or one ``INSERT OR
  IGNORE`` transaction on the SQLite backend (exactly one winner either
  way) -- computes it with its local :class:`~repro.sim.runner.TrialRunner`,
  writes the artifact, releases the claim; ``claim_batch`` lets one
  round-trip win a whole window of tiny tasks;
* while computing, a background thread heartbeats every held claim; a worker
  that dies stops heartbeating, its **lease expires** (staleness is judged
  against the *backend's* clock, never by comparing two hosts' wall clocks),
  and any other worker reclaims the task with an atomic takeover
  (:meth:`~repro.sim.backends.DispatchBackend.steal`);
* the **chunked scheduler** amortises scheduling overhead in both directions:
  cells with many seeds are split into seed-chunks so several workers share
  one big cell, and runs with hundreds of tiny cells are batched into task
  units of at least ``min_trials_per_task`` trials so claim-file and
  poll-loop overhead stops dominating.

Correctness does not depend on the locking being perfect.  Claims are
*advisory*: every trial derives all randomness from its seed, artifact writes
are atomic, and identical inputs produce identical bytes -- so the worst a
lost race or premature lease expiry can cause is duplicated computation,
never a wrong or torn result.  This is what makes the protocol safe on
filesystems with weak lock semantics (NFS) and what lets ``result.json`` come
out byte-identical to a sequential ``repro-experiment run`` (modulo
wall-clock fields, which the ``REPRO_CANONICAL_TIMING=1`` knob zeroes).

Workers do not receive a task list from a coordinator; each worker re-runs
the *experiment body* (via the manifest, exactly like ``resume``) with a
:class:`DispatchWorker` installed through :func:`use_dispatcher`.
:class:`~repro.sim.runner.Sweep` and :func:`repro.sim.experiment.run_trials`
notice the active dispatcher and route their pending cells through it, so
every worker derives the same deterministic task plan from the same config
and the run directory is the only coordination channel.  The CLI wires this
up as::

    repro-experiment dispatch E7 --json-out results/ --set n=512 --seeds 0..31
    repro-experiment worker results/E7-<stamp>   # run one per host/terminal
    repro-experiment status results/E7-<stamp>   # watch progress
"""

from __future__ import annotations

import os
import secrets
import socket
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.obs.observer import NULL_OBSERVER, active_observer
from repro.sim.backends import TRANSIENT_ERRORS, DispatchBackend
from repro.sim.experiment import ExperimentConfig, TrialResult
from repro.sim.runner import persist_cell_telemetry
from repro.sim.store import ResultStore
from repro.util.simlog import get_logger

__all__ = [
    "CellSpec",
    "TaskEntry",
    "DispatchTask",
    "DispatchTimeout",
    "DispatchDrained",
    "DispatchWorker",
    "plan_tasks",
    "use_dispatcher",
    "active_dispatcher",
    "make_worker_id",
]

_logger = get_logger("dispatch")

_ACTIVE_DISPATCHER: ContextVar[Optional["DispatchWorker"]] = ContextVar(
    "repro_active_dispatcher", default=None
)

#: Cells with more seeds than this are split into seed-chunks of this size.
DEFAULT_CHUNK_SEEDS = 16
#: Tiny cells are batched into one task until it carries at least this many trials.
DEFAULT_MIN_TRIALS_PER_TASK = 6
#: A claim whose heartbeat is older than this many seconds is reclaimable.
DEFAULT_LEASE_SECONDS = 30.0
#: Sleep between scans while other workers hold all remaining work.
DEFAULT_POLL_SECONDS = 0.2
#: How many tasks one backend claim round-trip covers (1 = claim per task).
DEFAULT_CLAIM_BATCH = 1


class DispatchTimeout(RuntimeError):
    """Raised when ``wait_timeout`` elapses with incomplete cells remaining."""


class DispatchDrained(RuntimeError):
    """A drain-and-exit worker ran out of claimable work before the run finished.

    Raised by :meth:`DispatchWorker.execute` when ``drain_and_exit`` is set
    and a full scan makes no progress: everything left is either claimed by a
    live peer or waiting on a peer's chunk artifacts.  Carries the keys of
    the cells still missing so callers can report them.
    """

    def __init__(self, worker_id: str, missing: Sequence[str]) -> None:
        self.worker_id = worker_id
        self.missing = list(missing)
        super().__init__(
            f"worker {worker_id} drained all claimable work; "
            f"{len(self.missing)} cell(s) still incomplete elsewhere"
        )


def make_worker_id() -> str:
    """A globally unique worker identity: host, pid and a random suffix."""
    return f"{socket.gethostname()}-{os.getpid()}-{secrets.token_hex(3)}"


# ---------------------------------------------------------------------- task model
@dataclass(frozen=True)
class CellSpec:
    """One sweep cell as the dispatcher sees it (store key + how to compute it)."""

    key: str
    config: ExperimentConfig
    seeds: Tuple[int, ...]
    index: Optional[int] = None
    overrides: Optional[Mapping[str, Any]] = None


@dataclass(frozen=True)
class TaskEntry:
    """One unit of computation inside a task: a whole cell or one seed-chunk.

    ``chunk`` is a half-open ``(lo, hi)`` slice into the cell's seed list;
    ``None`` means the entry covers the whole cell and writes the cell
    artifact directly.
    """

    spec: CellSpec
    chunk: Optional[Tuple[int, int]] = None

    @property
    def seeds(self) -> Tuple[int, ...]:
        if self.chunk is None:
            return self.spec.seeds
        lo, hi = self.chunk
        return self.spec.seeds[lo:hi]

    def is_complete(self, store: ResultStore) -> bool:
        """Whether this entry's artifact (cell or chunk) already exists."""
        if store.has_cell(self.spec.key):
            return True
        if self.chunk is None:
            return False
        return store.has_chunk(self.spec.key, *self.chunk)


@dataclass(frozen=True)
class DispatchTask:
    """One claimable unit of work: one chunk, one cell, or a batch of tiny cells."""

    task_id: str
    entries: Tuple[TaskEntry, ...] = field(default_factory=tuple)

    @property
    def trial_count(self) -> int:
        return sum(len(entry.seeds) for entry in self.entries)

    def is_complete(self, store: ResultStore) -> bool:
        return all(entry.is_complete(store) for entry in self.entries)


def plan_tasks(
    specs: Sequence[CellSpec],
    chunk_seeds: int = DEFAULT_CHUNK_SEEDS,
    min_trials_per_task: int = DEFAULT_MIN_TRIALS_PER_TASK,
) -> List[DispatchTask]:
    """Deterministically partition a sweep's cells into claimable tasks.

    The plan is a pure function of the cell list (never of which artifacts
    happen to exist), so every worker -- including one that joins mid-run --
    derives *identical* task boundaries and claim ids from the shared
    manifest.  Three shapes come out:

    * a cell with more than ``chunk_seeds`` seeds becomes one task per
      seed-chunk (``<key>.<lo>-<hi>``), so several workers share it;
    * consecutive tiny cells are batched until a task carries at least
      ``min_trials_per_task`` trials (``batch-<hash of member keys>``);
    * anything else is one task per cell (``<key>``).
    """
    if chunk_seeds < 1:
        raise ValueError(f"chunk_seeds must be >= 1, got {chunk_seeds}")
    if min_trials_per_task < 1:
        raise ValueError(f"min_trials_per_task must be >= 1, got {min_trials_per_task}")
    tasks: List[DispatchTask] = []
    batch: List[TaskEntry] = []

    def flush_batch() -> None:
        if not batch:
            return
        if len(batch) == 1:
            tasks.append(DispatchTask(task_id=batch[0].spec.key, entries=(batch[0],)))
        else:
            digest = sha256("|".join(entry.spec.key for entry in batch).encode()).hexdigest()[:20]
            tasks.append(DispatchTask(task_id=f"batch-{digest}", entries=tuple(batch)))
        batch.clear()

    for spec in specs:
        n_seeds = len(spec.seeds)
        if n_seeds > chunk_seeds:
            flush_batch()
            for lo in range(0, n_seeds, chunk_seeds):
                hi = min(lo + chunk_seeds, n_seeds)
                tasks.append(
                    DispatchTask(
                        task_id=f"{spec.key}.{lo}-{hi}",
                        entries=(TaskEntry(spec=spec, chunk=(lo, hi)),),
                    )
                )
            continue
        batch.append(TaskEntry(spec=spec))
        if sum(len(entry.seeds) for entry in batch) >= min_trials_per_task:
            flush_batch()
    flush_batch()
    return tasks


# ---------------------------------------------------------------------- heartbeats
class _Heartbeat(threading.Thread):
    """Daemon thread refreshing the claims + worker record of the tasks being held.

    A worker may hold several claims at once (batched claims grab a window of
    tiny tasks in one backend round-trip), so the thread maintains a *set* of
    held task ids -- every held claim is refreshed each beat, including the
    ones queued behind the task currently computing.

    ``claim_lock`` serialises this thread's heartbeat writes against the main
    thread's ``release_claim``: without it, a heartbeat that read the claim
    just before the release could re-create it afterwards, leaving a phantom
    claim that ``status`` would report forever.
    """

    def __init__(
        self,
        backend: DispatchBackend,
        worker_id: str,
        interval: float,
        claim_lock: threading.Lock,
        obs: Any = NULL_OBSERVER,
    ) -> None:
        super().__init__(name=f"dispatch-heartbeat-{worker_id}", daemon=True)
        self.backend = backend
        self.worker_id = worker_id
        self.interval = interval
        self.claim_lock = claim_lock
        self.obs = obs
        self._lock = threading.Lock()
        self._held: set = set()
        # NB: not named _stop -- threading.Thread has a private _stop() method.
        self._halt = threading.Event()

    def hold(self, task_id: str) -> None:
        with self._lock:
            self._held.add(task_id)

    def drop(self, task_id: str) -> None:
        with self._lock:
            self._held.discard(task_id)

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:  # pragma: no cover - timing-dependent; exercised by crash tests
        while not self._halt.wait(self.interval):
            with self._lock:
                held = sorted(self._held)
            try:
                for task_id in held:
                    with self.claim_lock:
                        # Re-check under the lock: the main thread may have
                        # completed and released the task since the read above.
                        with self._lock:
                            still_held = task_id in self._held
                        if still_held:
                            with self.obs.span("dispatch.heartbeat", task=task_id):
                                self.backend.heartbeat(task_id, self.worker_id)
                self.backend.worker_record(
                    self.worker_id,
                    computing=held[0] if held else None,
                    holding=len(held),
                )
            except TRANSIENT_ERRORS:
                pass  # transient filesystem/database hiccup; next beat retries


# ---------------------------------------------------------------------- the worker
class DispatchWorker:
    """Drains claimable tasks of a shared run directory until the run completes.

    Parameters
    ----------
    store:
        The shared :class:`~repro.sim.store.ResultStore` run directory.
    worker_id:
        Identity used in claims and heartbeat records (auto-generated).
    lease_seconds:
        A claim whose heartbeat is older than this is considered abandoned
        and may be stolen by any worker.
    poll_seconds:
        Sleep between scans while every remaining task is claimed elsewhere.
    chunk_seeds / min_trials_per_task:
        Chunked-scheduler knobs, see :func:`plan_tasks`.
    backend:
        The :class:`~repro.sim.backends.DispatchBackend` holding claims,
        leases, worker records and timings.  Defaults to the store's
        manifest-selected backend (claim files when the manifest is silent),
        so CLI workers automatically join the queue ``dispatch --backend``
        chose.
    claim_batch:
        How many tasks one backend claim round-trip covers.  The default (1)
        claims task-by-task; raising it lets a worker grab a window of tiny
        tasks in one operation -- a single ``BEGIN IMMEDIATE`` transaction on
        the SQLite backend -- which is worth it when individual tasks are
        sub-millisecond and claim overhead dominates.  Batched claims are
        all heartbeated while held, and each is still released as soon as
        its task completes.
    wait_timeout:
        Optional cap (seconds) on how long to sit *without observing any
        progress* -- own computes, peer task completions, or chunk merges --
        before raising :class:`DispatchTimeout`; None waits forever.  Set it
        comfortably above the longest single task's duration: a peer
        computing one long task produces no observable progress until the
        task's artifact lands.
    drain_and_exit:
        When True the worker never polls: it claims and computes (and steals
        from crashed peers) as long as a scan makes progress, then raises
        :class:`DispatchDrained` instead of waiting for live peers to finish
        their claimed work.  The mode for elastic fleets -- spot instances
        and batch jobs join, drain the queue dry, and exit cleanly; if the
        drainer happens to finish the whole run it completes normally.

    One instance is installed per worker process via :func:`use_dispatcher`;
    :class:`~repro.sim.runner.Sweep` then calls :meth:`execute` with the full
    cell list of each sweep it runs.
    """

    def __init__(
        self,
        store: ResultStore,
        worker_id: Optional[str] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        chunk_seeds: int = DEFAULT_CHUNK_SEEDS,
        min_trials_per_task: int = DEFAULT_MIN_TRIALS_PER_TASK,
        wait_timeout: Optional[float] = None,
        drain_and_exit: bool = False,
        backend: Optional[DispatchBackend] = None,
        claim_batch: int = DEFAULT_CLAIM_BATCH,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if claim_batch < 1:
            raise ValueError(f"claim_batch must be >= 1, got {claim_batch}")
        self.store = store
        self.backend = store.backend if backend is None else backend
        self.worker_id = make_worker_id() if worker_id is None else worker_id
        self.lease_seconds = float(lease_seconds)
        self.poll_seconds = float(poll_seconds)
        self.chunk_seeds = int(chunk_seeds)
        self.min_trials_per_task = int(min_trials_per_task)
        self.claim_batch = int(claim_batch)
        self.wait_timeout = wait_timeout
        self.drain_and_exit = bool(drain_and_exit)
        #: tasks this worker actually computed (entry counts; for logs/tests)
        self.computed_tasks: List[str] = []
        # Captured at execute() time, not here: the CLI constructs the worker
        # before it installs the observer (use_observer wraps run_experiment).
        self._obs: Any = NULL_OBSERVER
        self._heartbeat: Optional[_Heartbeat] = None
        # Serialises this process's claim writes (heartbeat thread) against
        # claim releases (main thread); see _Heartbeat.
        self._claim_lock = threading.Lock()

    # ------------------------------------------------------------------ public API
    def execute(
        self,
        trial: Callable[[ExperimentConfig, int], Dict[str, Any]],
        specs: Sequence[CellSpec],
        runner: Any,
        preloaded: Optional[Mapping[str, List[TrialResult]]] = None,
    ) -> Dict[str, List[TrialResult]]:
        """Cooperatively complete every cell in ``specs``; returns key -> trials.

        Claims and computes whatever is unclaimed, steals expired claims of
        crashed workers, merges finished seed-chunks into cell artifacts, and
        polls for cells being computed by live peers.  Returns only when
        every cell artifact exists (or raises :class:`DispatchTimeout`).
        ``preloaded`` passes trials the caller already has in memory (e.g.
        cells a resuming :class:`~repro.sim.runner.Sweep` loaded before
        dispatching) so they are not re-read from disk.
        """
        store = self.store
        self._obs = active_observer()
        tasks = plan_tasks(list(specs), self.chunk_seeds, self.min_trials_per_task)
        outstanding: Dict[str, DispatchTask] = {t.task_id: t for t in tasks}
        chunked_keys = {
            entry.spec.key: entry.spec
            for task in tasks
            for entry in task.entries
            if entry.chunk is not None
        }
        #: cells whose trials are already in memory (preloaded by the caller,
        #: computed whole, or merged from chunks) -- spared the disk re-read.
        local: Dict[str, List[TrialResult]] = dict(preloaded or {})
        #: seed-chunks this worker computed, kept for in-memory merging.
        chunk_cache: Dict[Tuple[str, int, int], List[TrialResult]] = {}
        self._start_heartbeat()
        idle_since: Optional[float] = None
        try:
            while True:
                progressed = False
                todo: List[DispatchTask] = []
                for task in list(outstanding.values()):
                    if task.is_complete(store):
                        # A peer finished it: observable progress, so the
                        # wait_timeout idle clock must reset -- a healthy run
                        # where one worker holds most claims must never trip
                        # the timeout of the workers watching it.
                        del outstanding[task.task_id]
                        progressed = True
                        continue
                    todo.append(task)
                for lo in range(0, len(todo), self.claim_batch):
                    won = self._claim_window(todo[lo : lo + self.claim_batch])
                    pending = list(won)
                    try:
                        while pending:
                            task = pending.pop(0)
                            try:
                                self._execute_task(task, trial, runner, local, chunk_cache)
                            finally:
                                self._release(task.task_id)
                            del outstanding[task.task_id]
                            progressed = True
                    finally:
                        # On an exception mid-window, hand the unstarted wins
                        # back immediately instead of making peers wait out
                        # their leases.
                        for task in pending:
                            self._release(task.task_id)
                merged = self._merge_ready_cells(trial, chunked_keys, local, chunk_cache)
                progressed = progressed or merged
                if self._all_cells_complete(specs):
                    break
                if progressed:
                    idle_since = None
                    continue
                if self.drain_and_exit:
                    # Nothing left to claim or steal: everything outstanding
                    # is held by a live peer (or waiting on a peer's chunks).
                    # Elastic workers exit here instead of polling.
                    missing = [s.key for s in specs if not store.has_cell(s.key)]
                    raise DispatchDrained(self.worker_id, missing)
                now = time.monotonic()
                idle_since = now if idle_since is None else idle_since
                if self.wait_timeout is not None and now - idle_since > self.wait_timeout:
                    missing = [s.key for s in specs if not store.has_cell(s.key)]
                    raise DispatchTimeout(
                        f"worker {self.worker_id} waited {self.wait_timeout:.1f}s with "
                        f"{len(missing)} cell(s) still incomplete: {missing[:4]}..."
                    )
                time.sleep(self.poll_seconds)
        finally:
            self._stop_heartbeat()
        out: Dict[str, List[TrialResult]] = {}
        for spec in specs:
            trials = local.get(spec.key)
            if trials is None:  # computed by a peer: load its artifact
                trials = store.load_trials(spec.key)
            if trials is None:  # pragma: no cover - only a hand-corrupted artifact
                raise RuntimeError(f"cell {spec.key} vanished after dispatch completed")
            out[spec.key] = trials
        return out

    # ------------------------------------------------------------------ internals
    def _claim_is_stale(self, task_id: str) -> bool:
        claim = self.backend.read_claim(task_id)
        return claim is not None and self.backend.claim_expired(claim)

    def _claim_or_steal(self, task_id: str) -> bool:
        """Claim ``task_id``, or steal it when its holder's lease expired.

        Same claim-then-steal logic the execute loop always ran, factored out
        so each path carries its span; a successful steal bumps the
        ``dispatch.lease_steals`` counter.
        """
        obs = self._obs
        with obs.span("dispatch.claim", task=task_id):
            claimed = self.backend.try_claim(task_id, self.worker_id, self.lease_seconds)
        if claimed:
            return True
        if not self._claim_is_stale(task_id):
            return False
        with obs.span("dispatch.steal", task=task_id):
            stolen = self.backend.steal(task_id, self.worker_id, self.lease_seconds)
        if stolen and obs.telemetry:
            obs.count("dispatch.lease_steals")
        return stolen

    def _claim_window(self, window: Sequence[DispatchTask]) -> List[DispatchTask]:
        """Claim up to ``claim_batch`` tasks in one backend round-trip.

        A single-task window keeps the claim-then-steal fast path.  Larger
        windows go through :meth:`~repro.sim.backends.DispatchBackend.
        claim_many` -- one ``BEGIN IMMEDIATE`` transaction on the SQLite
        backend -- and fall back to per-task steals for ids another worker
        holds with an expired lease.  Every task won here is handed to the
        heartbeat thread immediately, so claims queued behind the first
        window member stay fresh while it computes.
        """
        obs = self._obs
        won: List[DispatchTask] = []
        if len(window) == 1:
            if self._claim_or_steal(window[0].task_id):
                won.append(window[0])
        else:
            by_id = {task.task_id: task for task in window}
            with obs.span("dispatch.claim_batch", tasks=len(window)):
                won_ids = self.backend.claim_many(
                    list(by_id), self.worker_id, self.lease_seconds
                )
            for task_id in won_ids:
                won.append(by_id.pop(task_id))
            for task_id, task in by_id.items():
                if not self._claim_is_stale(task_id):
                    continue
                with obs.span("dispatch.steal", task=task_id):
                    stolen = self.backend.steal(task_id, self.worker_id, self.lease_seconds)
                if stolen:
                    if obs.telemetry:
                        obs.count("dispatch.lease_steals")
                    won.append(task)
        beat = self._heartbeat
        if beat is not None:
            for task in won:
                beat.hold(task.task_id)
        return won

    def _release(self, task_id: str) -> None:
        """Release a held claim: stop heartbeating it first, then delete it.

        Dropping from the heartbeat set before taking ``claim_lock`` means no
        *new* beat starts for the task, and the lock waits out any in-flight
        beat -- so a released claim can never be resurrected by this worker's
        own heartbeat thread.
        """
        beat = self._heartbeat
        if beat is not None:
            beat.drop(task_id)
        with self._claim_lock:
            self.backend.release(task_id, self.worker_id)

    def _execute_task(
        self,
        task: DispatchTask,
        trial: Callable[..., Any],
        runner: Any,
        local: Dict[str, List[TrialResult]],
        chunk_cache: Dict[Tuple[str, int, int], List[TrialResult]],
    ) -> None:
        """Compute every incomplete entry of a claimed task and persist it.

        Freshly computed trials also land in ``local``/``chunk_cache`` so the
        final result assembly (and chunk merging) reuses the in-memory
        objects instead of re-parsing this worker's own artifacts.
        """
        obs = self._obs
        computed_any = False
        started = time.perf_counter()
        with obs.span("dispatch.task", task=task.task_id, trials=task.trial_count):
            for entry in task.entries:
                if entry.is_complete(self.store):
                    continue
                computed_any = True
                spec = entry.spec
                trials = runner.run(spec.config, trial, seeds=entry.seeds)
                if entry.chunk is None:
                    self.store.save_cell(
                        spec.key,
                        trial=trial,
                        config=spec.config,
                        seeds=spec.seeds,
                        trials=trials,
                        index=spec.index,
                        overrides=spec.overrides,
                    )
                    local[spec.key] = trials
                    entry_name = spec.key
                else:
                    self.store.save_chunk(
                        spec.key, *entry.chunk, seeds=entry.seeds, trials=trials
                    )
                    chunk_cache[(spec.key, *entry.chunk)] = trials
                    entry_name = f"{spec.key}.{entry.chunk[0]}-{entry.chunk[1]}"
                if obs.telemetry:
                    persist_cell_telemetry(self.store, entry_name, runner.last_counters)
                with self._claim_lock:
                    self.backend.heartbeat(task.task_id, self.worker_id)
        if computed_any:
            self.computed_tasks.append(task.task_id)
            self.backend.record_timing(
                task.task_id, self.worker_id, time.perf_counter() - started, task.trial_count
            )
            _logger.info(
                "worker %s completed task %s (%d trials)",
                self.worker_id,
                task.task_id,
                task.trial_count,
            )

    def _merge_ready_cells(
        self,
        trial: Callable[..., Any],
        chunked: Mapping[str, CellSpec],
        local: Dict[str, List[TrialResult]],
        chunk_cache: Mapping[Tuple[str, int, int], List[TrialResult]],
    ) -> bool:
        """Assemble cells whose seed-chunks all exist; True when one was merged.

        Merging is idempotent and unclaimed on purpose: two workers merging
        the same cell write byte-identical documents through atomic renames.
        Chunks this worker computed itself merge from ``chunk_cache`` without
        touching disk; only peers' chunks are read back.
        """
        merged = False
        for key, spec in chunked.items():
            if self.store.has_cell(key):
                continue
            ranges = [
                (lo, min(lo + self.chunk_seeds, len(spec.seeds)))
                for lo in range(0, len(spec.seeds), self.chunk_seeds)
            ]
            # Cheap existence probe first: this runs every poll iteration, so
            # peers' multi-MB chunk artifacts must not be parsed until the
            # whole set is actually present.
            if not all(
                (key, lo, hi) in chunk_cache or self.store.has_chunk(key, lo, hi)
                for lo, hi in ranges
            ):
                continue
            trials: List[TrialResult] = []
            complete = True
            for lo, hi in ranges:
                chunk_trials = chunk_cache.get((key, lo, hi))
                if chunk_trials is None:
                    chunk_trials = self.store.load_chunk_trials(key, lo, hi)
                if chunk_trials is None:  # deleted/corrupt between probe and load
                    complete = False
                    break
                trials.extend(chunk_trials)
            if not complete:
                continue
            self.store.save_cell(
                key,
                trial=trial,
                config=spec.config,
                seeds=spec.seeds,
                trials=trials,
                index=spec.index,
                overrides=spec.overrides,
            )
            self.store.discard_chunks(key)
            local[key] = trials
            merged = True
            _logger.info("worker %s merged %d chunk trials into cell %s", self.worker_id, len(trials), key)
        return merged

    def _all_cells_complete(self, specs: Sequence[CellSpec]) -> bool:
        return all(self.store.has_cell(spec.key) for spec in specs)

    def _start_heartbeat(self) -> None:
        if self._heartbeat is not None:
            return
        interval = max(0.05, self.lease_seconds / 4.0)
        self._heartbeat = _Heartbeat(
            self.backend, self.worker_id, interval, self._claim_lock, obs=self._obs
        )
        self._heartbeat.start()
        self.backend.worker_record(self.worker_id, computing=None)

    def _stop_heartbeat(self) -> None:
        if self._heartbeat is None:
            return
        self._heartbeat.stop()
        self._heartbeat.join(timeout=2.0)
        self._heartbeat = None
        self.backend.worker_record(self.worker_id, computing=None, finished=True)


# ---------------------------------------------------------------------- context plumbing
@contextmanager
def use_dispatcher(worker: Optional[DispatchWorker]) -> Iterator[Optional[DispatchWorker]]:
    """Make ``worker`` the active dispatcher for the enclosed code (None = no-op).

    Mirrors :func:`repro.sim.store.use_store`: :class:`~repro.sim.runner.
    Sweep` and :func:`repro.sim.experiment.run_trials` pick the dispatcher up
    automatically, so experiment bodies need no dispatch plumbing.
    """
    token = _ACTIVE_DISPATCHER.set(worker)
    try:
        yield worker
    finally:
        _ACTIVE_DISPATCHER.reset(token)


def active_dispatcher() -> Optional[DispatchWorker]:
    """The dispatcher installed by the innermost :func:`use_dispatcher`, if any."""
    return _ACTIVE_DISPATCHER.get()
