"""Simulation harness: experiment configs, Monte-Carlo runner, sweeps, metrics, results.

Everything an experiment produces is serializable (``to_json``/``from_json``
on configs, trials, cells, sweeps and results) and :class:`~repro.sim.store.
ResultStore` persists per-cell artifacts under a run directory so sweeps can
be killed and resumed (``repro-experiment resume <run-dir>``).
"""

from repro.sim.dispatch import (
    CellSpec,
    DispatchTask,
    DispatchTimeout,
    DispatchWorker,
    active_dispatcher,
    plan_tasks,
    use_dispatcher,
)
from repro.sim.events import AsyncProtocolSystem, EventQueue, force_engine, forced_engine
from repro.sim.experiment import (
    ExperimentConfig,
    TrialResult,
    build_adversary,
    build_system,
    default_warmup,
    resolve_churn_rate,
    resolved_params,
    run_trials,
)
from repro.sim.metrics import MetricsCollector, RoundMetrics
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import (
    CellResult,
    GridSpec,
    Sweep,
    SweepCell,
    SweepResult,
    TrialRunner,
    WorkerError,
)
from repro.sim.store import ResultStore, active_store, use_store

__all__ = [
    "AsyncProtocolSystem",
    "EventQueue",
    "force_engine",
    "forced_engine",
    "ExperimentConfig",
    "TrialResult",
    "build_adversary",
    "build_system",
    "default_warmup",
    "resolve_churn_rate",
    "resolved_params",
    "run_trials",
    "MetricsCollector",
    "RoundMetrics",
    "ExperimentResult",
    "timed_experiment",
    "TrialRunner",
    "GridSpec",
    "Sweep",
    "SweepCell",
    "CellResult",
    "SweepResult",
    "WorkerError",
    "ResultStore",
    "active_store",
    "use_store",
    "CellSpec",
    "DispatchTask",
    "DispatchTimeout",
    "DispatchWorker",
    "active_dispatcher",
    "plan_tasks",
    "use_dispatcher",
]
