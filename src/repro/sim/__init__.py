"""Simulation harness: experiment configs, Monte-Carlo runner, sweeps, metrics, results."""

from repro.sim.experiment import (
    ExperimentConfig,
    TrialResult,
    build_adversary,
    build_system,
    default_warmup,
    resolve_churn_rate,
    run_trials,
)
from repro.sim.metrics import MetricsCollector, RoundMetrics
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import (
    CellResult,
    GridSpec,
    Sweep,
    SweepCell,
    SweepResult,
    TrialRunner,
    WorkerError,
)

__all__ = [
    "ExperimentConfig",
    "TrialResult",
    "build_adversary",
    "build_system",
    "default_warmup",
    "resolve_churn_rate",
    "run_trials",
    "MetricsCollector",
    "RoundMetrics",
    "ExperimentResult",
    "timed_experiment",
    "TrialRunner",
    "GridSpec",
    "Sweep",
    "SweepCell",
    "CellResult",
    "SweepResult",
    "WorkerError",
]
