"""Parallel Monte-Carlo trial runner and scenario sweep engine.

Every experiment in this repository is a Monte-Carlo aggregate over seeded
trials, and most experiments additionally sweep one or two configuration axes
(churn rate, network size, storage mode, ...).  This module provides the
shared machinery for running all of those (config, seed) cells through one
worker pool:

* :class:`TrialRunner` executes ``trial(config, seed)`` callables either
  sequentially (``workers=1``) or on a :class:`~concurrent.futures.
  ProcessPoolExecutor`.  Because every trial derives *all* of its randomness
  from its seed (see :mod:`repro.util.rng`), parallel and sequential runs
  produce byte-identical payloads -- only the timing differs.  Trial callables
  that cannot be pickled (lambdas, closures) silently fall back to the
  sequential path, so existing call sites keep working.
* :class:`GridSpec` expands an :class:`~repro.sim.experiment.ExperimentConfig`
  over a parameter grid -- either the cartesian product of independent axes or
  an explicit list of coordinated override cells -- via
  :meth:`ExperimentConfig.with_overrides`.
* :class:`Sweep` fans *all* (cell, seed) tasks of a grid into one pool and
  regroups the results per cell, with progress logging and per-cell timing.
  When a :class:`~repro.sim.store.ResultStore` is active, completed cells are
  loaded from the run directory instead of re-run, making sweeps resumable
  (``repro-experiment resume <run-dir>``).  :class:`SweepCell`,
  :class:`CellResult` and :class:`SweepResult` all round-trip through JSON.

Errors raised inside a worker process are re-raised in the parent as
:class:`WorkerError` carrying the offending config name, seed and the remote
traceback, so a failing cell in a 100-cell sweep is attributable.
"""

from __future__ import annotations

import itertools
import json
import os
import pickle
import secrets
import tempfile
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.observer import active_observer
from repro.sim.experiment import ExperimentConfig, TrialResult
from repro.util.serialization import dumps_artifact, jsonify
from repro.util.simlog import get_logger

__all__ = [
    "WorkerError",
    "TrialRunner",
    "GridSpec",
    "SweepCell",
    "CellResult",
    "SweepResult",
    "Sweep",
    "persist_cell_telemetry",
]

#: A trial maps (config, seed) to a plain-data payload dict.  Payloads cross
#: process boundaries, so they must be picklable (floats, lists, arrays --
#: not live ``P2PStorageSystem`` objects).
TrialFn = Callable[[ExperimentConfig, int], Dict[str, Any]]

_logger = get_logger("runner")


class WorkerError(RuntimeError):
    """A trial raised inside a worker (or the sequential fallback).

    Attributes
    ----------
    config_name:
        ``config.name`` of the failing cell.
    seed:
        Seed of the failing trial.
    remote_traceback:
        Formatted traceback from the worker process (or the local one).
    """

    def __init__(self, config_name: str, seed: int, message: str, remote_traceback: str = "") -> None:
        self.config_name = config_name
        self.seed = seed
        self.message = message
        self.remote_traceback = remote_traceback
        detail = f"\n--- worker traceback ---\n{remote_traceback}" if remote_traceback else ""
        super().__init__(f"trial failed (config={config_name!r}, seed={seed}): {message}{detail}")

    def __reduce__(self):
        # Exceptions pickle via their ``args`` by default, which would try to
        # re-call __init__ with the formatted message only; spell out the real
        # constructor arguments so the error crosses the process boundary.
        return (type(self), (self.config_name, self.seed, self.message, self.remote_traceback))


def _execute_task(
    task: Tuple[TrialFn, ExperimentConfig, int],
) -> Tuple[int, Dict[str, Any], float, Optional[Dict[str, Dict[str, float]]]]:
    """Run one (trial, config, seed) task; returns (seed, payload, elapsed, counters).

    Runs in the worker process.  Exceptions are caught and re-packaged so the
    parent can raise a :class:`WorkerError` with the remote traceback instead
    of an opaque pickling failure.  When an observer with telemetry is active
    (the ContextVar survives the fork), the trial runs inside its own counter
    scope and the scope's snapshot travels back as the fourth element
    (``None`` otherwise) so the parent can aggregate counters per cell.
    """
    trial, config, seed = task
    obs = active_observer()
    start = time.perf_counter()
    try:
        with obs.span("trial", config=config.name, seed=int(seed)), obs.trial_counters() as counters:
            payload = trial(config, int(seed))
    except Exception as exc:  # noqa: BLE001 - re-raised as WorkerError in the parent
        raise WorkerError(config.name, int(seed), repr(exc), traceback.format_exc()) from None
    snapshot = counters.snapshot() if obs.telemetry else None
    return int(seed), payload, time.perf_counter() - start, snapshot


def _is_picklable(obj: Any) -> bool:
    """True when ``obj`` survives a pickle round-trip attempt."""
    try:
        pickle.dumps(obj)
    except Exception:  # noqa: BLE001 - any pickling failure means "not picklable"
        return False
    return True


# ---------------------------------------------------------------------- payload spilling
#: Default spill threshold: payloads pickling to >= this many bytes are written
#: to a spill file instead of being shipped back through the pool pipe.
DEFAULT_SPILL_BYTES = 4 * 1024 * 1024


def _resolve_spill_bytes(spill_bytes: Optional[int]) -> int:
    """The spill threshold: explicit value, else $REPRO_SPILL_BYTES, else 4 MiB (0 disables)."""
    if spill_bytes is not None:
        return max(0, int(spill_bytes))
    raw = os.environ.get("REPRO_SPILL_BYTES", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_SPILL_BYTES


@dataclass(frozen=True)
class _SpilledPayload:
    """Marker shipped through the pool pipe in place of a large payload."""

    path: str
    size_bytes: int


@dataclass(frozen=True)
class _PickledPayload:
    """A sub-threshold payload shipped as its (already computed) pickle.

    The worker has to pickle the payload once to measure it against the
    spill threshold; shipping those bytes -- rather than the payload object,
    which the pool pipe would pickle *again* -- means every payload is
    serialised exactly once regardless of size.
    """

    blob: bytes


def _execute_task_spilling(
    args: Tuple[Tuple["TrialFn", ExperimentConfig, int], int, str],
) -> Tuple[int, Any, float, Optional[Dict[str, Dict[str, float]]]]:
    """Worker-side wrapper of :func:`_execute_task` that spills large payloads.

    Payloads whose pickled form reaches the threshold are written to a file
    under the spill directory (the store's run directory when one is active,
    a temp directory otherwise) and only a :class:`_SpilledPayload` marker
    crosses the process boundary; the parent loads and deletes the file.
    Smaller payloads travel as the measurement pickle itself
    (:class:`_PickledPayload`).  Payload *bytes* are unaffected either way.
    Spilled byte counts are folded into the trial's telemetry snapshot (when
    telemetry is on) as ``runner.spill_bytes``.
    """
    task, threshold, spill_dir = args
    seed, payload, elapsed, snapshot = _execute_task(task)
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) < threshold:
        return seed, _PickledPayload(blob=blob), elapsed, snapshot
    path = Path(spill_dir) / f"payload-{os.getpid()}-{seed}-{secrets.token_hex(4)}.pkl"
    path.write_bytes(blob)
    if snapshot is not None:
        counters = snapshot.setdefault("counters", {})
        counters["runner.spill_bytes"] = counters.get("runner.spill_bytes", 0) + len(blob)
    return seed, _SpilledPayload(path=str(path), size_bytes=len(blob)), elapsed, snapshot


def _load_spilled(payload: Any) -> Any:
    """Materialise a transported payload in the parent (removing any spill file)."""
    if isinstance(payload, _PickledPayload):
        return pickle.loads(payload.blob)
    if not isinstance(payload, _SpilledPayload):
        return payload
    path = Path(payload.path)
    data = pickle.loads(path.read_bytes())
    try:
        path.unlink()
    except OSError:  # pragma: no cover - cleanup only
        pass
    return data


def _discard_spilled(payload: Any) -> None:
    """Delete an unconsumed spill file (error-path cleanup; loads nothing)."""
    if isinstance(payload, _SpilledPayload):
        try:
            Path(payload.path).unlink()
        except OSError:  # pragma: no cover - cleanup only
            pass


class TrialRunner:
    """Executes seeded trials, optionally on a process pool.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs everything in
        the calling process; ``None`` uses ``os.cpu_count()``.  Parallel runs
        are seed-deterministic: results are returned in task order and each
        trial derives its randomness solely from its seed, so the payloads
        are identical to a ``workers=1`` run.
    progress:
        When True, log one INFO line per completed task on the ``repro.runner``
        logger.
    spill_bytes:
        Payloads whose pickled form reaches this many bytes are written to a
        spill file by the worker instead of being shipped back through the
        pool pipe (``0`` disables spilling).  Defaults to the
        ``REPRO_SPILL_BYTES`` environment knob, else 4 MiB.  Only affects
        transport -- payload bytes are identical either way.
    spill_dir:
        Where spill files land.  Defaults to ``<run>/spill`` when a
        :class:`~repro.sim.store.ResultStore` is active, else the system
        temp directory.

    Notes
    -----
    The pool uses the ``fork`` start method where available so trials defined
    in any module (including test modules) can be dispatched.  Trial callables
    must be module-level functions or :func:`functools.partial` wrappers of
    them to be picklable; lambdas and closures are detected and run on the
    sequential fallback path instead.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        progress: bool = False,
        spill_bytes: Optional[int] = None,
        spill_dir: Optional[Path] = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if int(workers) < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.progress = progress
        self.spill_bytes = _resolve_spill_bytes(spill_bytes)
        self.spill_dir = None if spill_dir is None else Path(spill_dir)
        #: Per-trial telemetry snapshots of the most recent :meth:`run` /
        #: :meth:`run_cells` call, aligned with the returned trials (``None``
        #: entries when no telemetry observer was active).
        self.last_counters: List[Optional[Dict[str, Dict[str, float]]]] = []
        #: :attr:`last_counters` regrouped per cell by the most recent
        #: :meth:`run_cells` call.
        self.last_cell_counters: List[List[Optional[Dict[str, Dict[str, float]]]]] = []

    # ------------------------------------------------------------------ public API
    def run(
        self,
        config: ExperimentConfig,
        trial: TrialFn,
        seeds: Optional[Sequence[int]] = None,
    ) -> List[TrialResult]:
        """Run ``trial(config, seed)`` for every seed; results in seed order."""
        seeds = config.seeds if seeds is None else seeds
        tasks = [(trial, config, int(seed)) for seed in seeds]
        return self._map(tasks)

    def run_cells(
        self,
        cells: Sequence[Tuple[ExperimentConfig, Sequence[int]]],
        trial: TrialFn,
    ) -> List[List[TrialResult]]:
        """Fan all (config, seed) pairs of several cells into one pool.

        ``cells`` is a sequence of ``(config, seeds)`` pairs; the return value
        has one list of :class:`TrialResult` per cell, in cell order.
        """
        tasks: List[Tuple[TrialFn, ExperimentConfig, int]] = []
        boundaries: List[int] = []
        for config, seeds in cells:
            for seed in seeds:
                tasks.append((trial, config, int(seed)))
            boundaries.append(len(tasks))
        flat = self._map(tasks)
        out: List[List[TrialResult]] = []
        self.last_cell_counters = []
        start = 0
        for end in boundaries:
            out.append(flat[start:end])
            self.last_cell_counters.append(self.last_counters[start:end])
            start = end
        return out

    # ------------------------------------------------------------------ internals
    def _map(self, tasks: Sequence[Tuple[TrialFn, ExperimentConfig, int]]) -> List[TrialResult]:
        """Execute tasks, preserving order regardless of completion order."""
        self.last_counters = []
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1 or not self._tasks_picklable(tasks):
            return self._map_sequential(tasks)
        return self._map_parallel(tasks)

    def _tasks_picklable(self, tasks: Sequence[Tuple[TrialFn, ExperimentConfig, int]]) -> bool:
        # Configs are plain frozen dataclasses; the trial callable is the only
        # realistic pickling hazard, and all tasks of one _map call share it.
        trial = tasks[0][0]
        if _is_picklable(trial):
            return True
        _logger.debug(
            "trial %r is not picklable (lambda or closure); running %d task(s) sequentially",
            trial,
            len(tasks),
        )
        return False

    def _map_sequential(self, tasks: Sequence[Tuple[TrialFn, ExperimentConfig, int]]) -> List[TrialResult]:
        results: List[TrialResult] = []
        for i, task in enumerate(tasks):
            seed, payload, elapsed, snapshot = _execute_task(task)
            results.append(TrialResult(seed=seed, payload=payload, elapsed_seconds=elapsed))
            self.last_counters.append(snapshot)
            self._log_progress(i + 1, len(tasks), task)
        return results

    def _resolve_spill_dir(self) -> Optional[Path]:
        """Spill directory for this parallel map (None when spilling is disabled).

        Prefers the explicit ``spill_dir``, then the active store's run
        directory (``<run>/spill`` -- the "spill to store artifacts" path),
        then the system temp directory.
        """
        if self.spill_bytes <= 0:
            return None
        if self.spill_dir is not None:
            path = self.spill_dir
        else:
            from repro.sim.store import active_store  # local import: store imports this module

            store = active_store()
            path = store.root / "spill" if store is not None else Path(tempfile.gettempdir())
        path.mkdir(parents=True, exist_ok=True)
        return path

    def _map_parallel(self, tasks: Sequence[Tuple[TrialFn, ExperimentConfig, int]]) -> List[TrialResult]:
        slots: List[Optional[TrialResult]] = [None] * len(tasks)
        counter_slots: List[Optional[Dict[str, Dict[str, float]]]] = [None] * len(tasks)
        max_workers = min(self.workers, len(tasks))
        done = 0
        spill_dir = self._resolve_spill_dir()
        future_to_index: Dict[Any, int] = {}
        consumed: set = set()
        try:
            with ProcessPoolExecutor(max_workers=max_workers, mp_context=_fork_context()) as pool:
                if spill_dir is None:
                    future_to_index = {
                        pool.submit(_execute_task, task): i for i, task in enumerate(tasks)
                    }
                else:
                    future_to_index = {
                        pool.submit(_execute_task_spilling, (task, self.spill_bytes, str(spill_dir))): i
                        for i, task in enumerate(tasks)
                    }
                for future in as_completed(future_to_index):
                    index = future_to_index[future]
                    seed, payload, elapsed, snapshot = future.result()  # re-raises WorkerError
                    consumed.add(index)
                    payload = _load_spilled(payload)
                    slots[index] = TrialResult(seed=seed, payload=payload, elapsed_seconds=elapsed)
                    counter_slots[index] = snapshot
                    done += 1
                    self._log_progress(done, len(tasks), tasks[index])
        finally:
            # A failing trial aborts the collection loop above; sibling trials
            # that already completed (the pool shutdown waits for them) may
            # hold spill files nobody will read -- remove them.
            if spill_dir is not None:
                for future, index in future_to_index.items():
                    if index in consumed or not future.done() or future.cancelled():
                        continue
                    try:
                        _, payload, _, _ = future.result()
                    except BaseException:  # noqa: BLE001 - that future failed too; nothing spilled
                        continue
                    _discard_spilled(payload)
        self.last_counters = counter_slots
        return [result for result in slots if result is not None]

    def _log_progress(self, done: int, total: int, task: Tuple[TrialFn, ExperimentConfig, int]) -> None:
        if self.progress:
            _, config, seed = task
            _logger.info("trial %d/%d done (config=%s, seed=%d)", done, total, config.name, seed)


def _fork_context():
    """The fork multiprocessing context, or None (platform default) without it."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def persist_cell_telemetry(
    store: Optional[Any],
    key: str,
    snapshots: Sequence[Optional[Dict[str, Dict[str, float]]]],
) -> None:
    """Merge per-trial counter snapshots and save them under the store's
    ``telemetry/`` directory (outside the byte-compared artifact surface).

    No-op when ``store`` is None or no trial produced a snapshot (telemetry
    off), so plain runs write nothing new.
    """
    if store is None:
        return
    from repro.obs.counters import merge_snapshots

    present = [snap for snap in snapshots if snap]
    if not present:
        return
    store.save_telemetry(key, merge_snapshots(present), trials=len(present))


# ---------------------------------------------------------------------- grids
_CONFIG_FIELDS = frozenset(f.name for f in fields(ExperimentConfig))


@dataclass(frozen=True)
class GridSpec:
    """A parameter grid over :class:`ExperimentConfig` fields.

    Two construction modes:

    * ``GridSpec.product({"churn_fraction": (0.02, 0.05), "storage_mode": (...)})``
      -- the cartesian product of independent axes, expanded in definition
      order (last axis varies fastest);
    * ``GridSpec.from_cells([{...}, {...}])`` -- an explicit list of override
      dicts for coordinated axes (e.g. E7 pairs ``churn_rate`` with the
      matching ``adversary`` kind).

    Unknown field names and duplicate cells are rejected eagerly -- a sweep
    that silently ran the same cell twice would skew every aggregate.
    """

    cells_overrides: Tuple[Tuple[Tuple[str, Any], ...], ...]

    def __post_init__(self) -> None:
        seen = set()
        for cell in self.cells_overrides:
            for key, _ in cell:
                if key not in _CONFIG_FIELDS:
                    raise ValueError(f"unknown ExperimentConfig field {key!r} in grid")
            # Canonicalise by key so {'a': 1, 'b': 2} and {'b': 2, 'a': 1}
            # count as the same cell (keys are unique within a cell, so the
            # sort never compares values).  The dedup key is the sorted
            # cell's JSON rendering rather than the tuple itself: values may
            # be unhashable (e.g. a latency-model config dict).
            canonical = json.dumps(
                [[key, jsonify(value)] for key, value in sorted(cell)], sort_keys=True
            )
            if canonical in seen:
                raise ValueError(f"duplicate grid cell {dict(cell)!r}")
            seen.add(canonical)
        if not self.cells_overrides:
            raise ValueError("grid must contain at least one cell")

    @classmethod
    def product(cls, axes: Mapping[str, Sequence[Any]]) -> "GridSpec":
        """Cartesian product of independent axes (last axis varies fastest)."""
        if not axes:
            raise ValueError("grid must have at least one axis")
        names = list(axes)
        for name, values in axes.items():
            if len(list(values)) == 0:
                raise ValueError(f"axis {name!r} has no values")
        cells = [
            tuple(zip(names, combo)) for combo in itertools.product(*(tuple(axes[n]) for n in names))
        ]
        return cls(cells_overrides=tuple(cells))

    @classmethod
    def from_cells(cls, cells: Sequence[Mapping[str, Any]]) -> "GridSpec":
        """Explicit override dicts, one per cell, for coordinated axes."""
        return cls(cells_overrides=tuple(tuple(cell.items()) for cell in cells))

    def overrides(self) -> List[Dict[str, Any]]:
        """The override dict of every cell, in expansion order."""
        return [dict(cell) for cell in self.cells_overrides]

    def expand(self, base: ExperimentConfig) -> List[ExperimentConfig]:
        """Apply every cell to ``base`` via :meth:`ExperimentConfig.with_overrides`."""
        return [base.with_overrides(**dict(cell)) for cell in self.cells_overrides]

    def __len__(self) -> int:
        return len(self.cells_overrides)


# ---------------------------------------------------------------------- sweeps
@dataclass(frozen=True)
class SweepCell:
    """One expanded grid cell: its index, overrides and resolved config."""

    index: int
    overrides: Tuple[Tuple[str, Any], ...]
    config: ExperimentConfig

    def override_dict(self) -> Dict[str, Any]:
        """The overrides as a plain dict."""
        return dict(self.overrides)

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-data form (override order preserved)."""
        return {
            "index": int(self.index),
            "overrides": [[key, jsonify(value)] for key, value in self.overrides],
            "config": self.config.to_json_dict(),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SweepCell":
        """Rebuild a cell from :meth:`to_json_dict` output."""
        return cls(
            index=int(data["index"]),
            overrides=tuple((key, value) for key, value in data.get("overrides", [])),
            config=ExperimentConfig.from_json_dict(data["config"]),
        )


@dataclass(frozen=True)
class CellResult:
    """All trials of one sweep cell plus their cumulative compute time."""

    cell: SweepCell
    trials: List[TrialResult]

    @property
    def elapsed_seconds(self) -> float:
        """Summed per-trial compute time of this cell (not wall-clock)."""
        return float(sum(t.elapsed_seconds for t in self.trials))

    def payloads(self) -> List[Dict[str, Any]]:
        """The payload dict of every trial, in seed order."""
        return [t.payload for t in self.trials]

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-data form of the cell and its trials."""
        return {
            "cell": self.cell.to_json_dict(),
            "trials": [trial.to_json_dict() for trial in self.trials],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "CellResult":
        """Rebuild a cell result from :meth:`to_json_dict` output."""
        return cls(
            cell=SweepCell.from_json_dict(data["cell"]),
            trials=[TrialResult.from_json_dict(t) for t in data.get("trials", [])],
        )


@dataclass(frozen=True)
class SweepResult:
    """Per-cell results of one sweep, in grid expansion order."""

    cells: List[CellResult]
    elapsed_seconds: float

    @property
    def total_trials(self) -> int:
        """Number of trials across all cells."""
        return sum(len(c.trials) for c in self.cells)

    def __iter__(self):
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-data form of the whole sweep."""
        return {
            "cells": [cell.to_json_dict() for cell in self.cells],
            "elapsed_seconds": float(self.elapsed_seconds),
        }

    def to_json(self) -> str:
        """JSON document for on-disk artifacts."""
        return dumps_artifact(self.to_json_dict())

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        """Rebuild a sweep result from :meth:`to_json_dict` output."""
        return cls(
            cells=[CellResult.from_json_dict(cell) for cell in data.get("cells", [])],
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )

    @classmethod
    def from_json(cls, document: str) -> "SweepResult":
        """Inverse of :meth:`to_json`."""
        import json

        return cls.from_json_dict(json.loads(document))


class Sweep:
    """Expand a config over a grid and fan every (cell, seed) into one pool.

    Parameters
    ----------
    base:
        The base configuration every cell starts from.
    grid:
        The :class:`GridSpec` describing the cells.
    trial:
        The per-trial callable (must be picklable -- a module-level function
        or a :func:`functools.partial` of one -- for parallel execution).

    Examples
    --------
    >>> from repro.sim.experiment import ExperimentConfig
    >>> grid = GridSpec.product({"churn_fraction": (0.02, 0.05)})
    >>> sweep = Sweep(ExperimentConfig(name="T", n=64), grid, my_trial)  # doctest: +SKIP
    >>> result = sweep.run(TrialRunner(workers=4))                       # doctest: +SKIP
    """

    def __init__(self, base: ExperimentConfig, grid: GridSpec, trial: TrialFn) -> None:
        self.base = base
        self.grid = grid
        self.trial = trial

    def cells(self) -> List[SweepCell]:
        """The expanded cells, in grid order."""
        return [
            SweepCell(index=i, overrides=overrides, config=config)
            for i, (overrides, config) in enumerate(
                zip(self.grid.cells_overrides, self.grid.expand(self.base))
            )
        ]

    def run(self, runner: Optional[TrialRunner] = None, store: Optional[Any] = None) -> SweepResult:
        """Run every (cell, seed) task through ``runner`` (default: base.workers).

        When ``store`` is given -- or a :class:`~repro.sim.store.ResultStore`
        is active via :func:`repro.sim.store.use_store` -- completed cells are
        loaded from the run directory and skipped; only the missing cells are
        fanned into the pool, and each one is persisted as soon as its trials
        finish.  A sweep killed mid-run therefore resumes where it stopped and
        produces the same payloads an uninterrupted run would have.

        When additionally a :class:`~repro.sim.dispatch.DispatchWorker` is
        active (via :func:`repro.sim.dispatch.use_dispatcher`, e.g. the
        ``repro-experiment worker`` CLI), the missing cells are not computed
        directly: they become claimable tasks in the shared run directory, so
        several worker processes/hosts split the sweep and this call returns
        once every cell's artifact exists -- with payloads identical to a
        single-process run.
        """
        from repro.sim.store import active_store  # local import: store imports this module

        runner = TrialRunner(workers=self.base.workers) if runner is None else runner
        store = active_store() if store is None else store
        cells = self.cells()
        start = time.perf_counter()

        loaded: Dict[int, List[TrialResult]] = {}
        keys: Dict[int, str] = {}
        pending: List[SweepCell] = []
        for cell in cells:
            if store is None:
                pending.append(cell)
                continue
            key = store.cell_key(self.trial, cell.config, cell.config.seeds)
            keys[cell.index] = key
            cached = store.load_trials(key)
            if cached is None:
                pending.append(cell)
            else:
                loaded[cell.index] = cached
        total_tasks = sum(len(c.config.seeds) for c in pending)
        _logger.info(
            "sweep %s: %d cells (%d cached) x seeds = %d trials on %d worker(s)",
            self.base.name,
            len(cells),
            len(loaded),
            total_tasks,
            runner.workers,
        )

        dispatcher = None
        if store is not None and pending:
            from repro.sim.dispatch import active_dispatcher  # local import: dispatch imports this module

            dispatcher = active_dispatcher()
        if dispatcher is not None:
            from repro.sim.dispatch import CellSpec

            # The dispatcher plans over the FULL cell list (not just this
            # worker's pending view) so every cooperating worker derives
            # identical task boundaries and claim ids.
            specs = [
                CellSpec(
                    key=keys[cell.index],
                    config=cell.config,
                    seeds=tuple(int(seed) for seed in cell.config.seeds),
                    index=cell.index,
                    overrides=cell.override_dict(),
                )
                for cell in cells
            ]
            by_key = dispatcher.execute(
                self.trial,
                specs,
                runner=runner,
                preloaded={keys[index]: trials for index, trials in loaded.items()},
            )
            for cell in cells:
                loaded[cell.index] = by_key[keys[cell.index]]
        else:
            per_cell = runner.run_cells([(c.config, c.config.seeds) for c in pending], self.trial)
            for position, (cell, trials) in enumerate(zip(pending, per_cell)):
                loaded[cell.index] = trials
                if store is not None:
                    store.save_cell(
                        keys[cell.index],
                        trial=self.trial,
                        config=cell.config,
                        seeds=cell.config.seeds,
                        trials=trials,
                        index=cell.index,
                        overrides=cell.override_dict(),
                    )
                    persist_cell_telemetry(
                        store, keys[cell.index], runner.last_cell_counters[position]
                    )

        results: List[CellResult] = []
        for cell in cells:
            result = CellResult(cell=cell, trials=loaded[cell.index])
            _logger.info(
                "sweep %s cell %d/%d %s: %d trial(s), %.2fs compute",
                self.base.name,
                cell.index + 1,
                len(cells),
                cell.override_dict(),
                len(result.trials),
                result.elapsed_seconds,
            )
            results.append(result)
        return SweepResult(cells=results, elapsed_seconds=time.perf_counter() - start)
