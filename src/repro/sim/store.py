"""Durable per-cell result storage and resumable runs.

A :class:`ResultStore` owns one *run directory*::

    <run>/
      manifest.json         # how the run was invoked (experiment, mode, overrides)
      result.json           # the final ExperimentResult (written when the run completes)
      cells/<key>.json      # one artifact per completed (trial, config, seeds) cell
      chunks/<key>.<a>-<b>.json  # partial seed-chunk artifacts of large cells
      claims/<task>.claim   # advisory worker leases (distributed execution)
      workers/<id>.json     # heartbeat records of the workers draining the run
      timings/<task>.json   # per-task wall times (outside the compared surface)
      telemetry/<name>.json # counter snapshots and trace-*.jsonl span streams
                            # (observability plane; also outside the compared surface)

Cells are content-addressed: the key is a hash of the trial callable's
qualified name, the full config and the seed list, so a resumed run finds
exactly the cells that were already computed -- regardless of grid order or
of how many separate sweeps the experiment runs.  :class:`~repro.sim.runner.
Sweep` and :func:`repro.sim.experiment.run_trials` both consult the *active*
store (see :func:`use_store`): completed cells are loaded from disk and
skipped, only missing cells hit the worker pool, and freshly computed cells
are written as soon as they finish.  Because every trial derives all its
randomness from its seed, the payloads a resumed run persists are
byte-identical to an uninterrupted run's.

The ``repro-experiment`` CLI builds on this: ``run E5 --json-out results/``
creates a store and ``resume results/<run>`` re-invokes the same experiment
against it.

Distributed execution (``repro.sim.dispatch``) turns the same run directory
into a shared work queue.  The store supplies the three primitives it needs:

* **claims** -- ``try_claim`` wins ``task_id`` for exactly one worker; the
  claim carries the owner id and a heartbeated lease and is *advisory*: a
  lost race only duplicates deterministic work, it never corrupts results
  (cell writes stay atomic and byte-identical regardless of who computes
  them).  Where claims physically live is pluggable (see
  :mod:`repro.sim.backends`): claim files under ``claims/`` on the default
  filesystem backend, rows of a WAL-mode ``dispatch.sqlite`` on the SQLite
  backend.  The store's claim/worker/timing methods delegate to the backend
  its manifest names, so ``status``/``report`` and PR-4-era callers work
  unchanged on either.
* **leases** -- a claim expires when its heartbeat age exceeds its lease,
  with the age measured in a *single clock domain* per backend (claim-file
  mtimes on the shared filesystem, the database host's clock on SQLite) so
  cross-host wall-clock skew cannot expire a live worker's lease;
  ``steal_claim`` reclaims an expired claim atomically so exactly one of
  several contending workers takes over a crashed worker's task.
* **chunks** -- large cells are split into seed-chunks persisted under
  ``chunks/``; once every chunk of a cell exists, any worker can merge them
  into the canonical ``cells/<key>.json`` artifact (idempotent: the merged
  bytes are identical no matter who merges).

When :func:`canonical_timing` is active (the ``REPRO_CANONICAL_TIMING=1``
environment knob), per-trial and final-result ``elapsed_seconds`` are zeroed
and the transport-only ``workers`` config field is pinned to 1 in the
persisted artifacts, making ``result.json`` byte-comparable across runs that
differ only in how they were executed (sequential, ``--workers k``, or N
cooperating dispatch workers).
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.sim.experiment import ExperimentConfig, TrialResult
from repro.util.serialization import dumps_artifact, jsonify
from repro.util.simlog import get_logger

__all__ = [
    "ResultStore",
    "use_store",
    "active_store",
    "trial_name",
    "canonical_timing",
]

_logger = get_logger("store")

_ACTIVE_STORE: ContextVar[Optional["ResultStore"]] = ContextVar("repro_active_result_store", default=None)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write via a temp file + rename so a killed process never leaves a partial artifact.

    The temp name includes the pid *and thread id* so concurrent writers of
    the same target -- worker processes racing on one (deterministic,
    byte-identical) artifact, or a worker's main thread and its heartbeat
    thread refreshing the same claim -- never truncate or steal each other's
    in-flight temp file; the final ``os.replace`` is atomic either way.

    The rename alone only guarantees *atomicity*, not *durability*: without
    an fsync, a crash (power loss, container kill) after ``os.replace`` can
    persist the rename but not the data, leaving an empty or truncated
    artifact under the final name.  So the temp file is fsynced before the
    rename (data reaches the disk first) and the directory after (the rename
    itself reaches the disk) -- the classic write/fsync/rename/fsync-dir
    sequence.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}-{threading.get_ident()}.tmp")
    fd = os.open(tmp, os.O_CREAT | os.O_WRONLY | os.O_TRUNC, 0o644)
    try:
        os.write(fd, text.encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - parent vanished mid-write
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - some filesystems reject directory fsync
        pass
    finally:
        os.close(dir_fd)


def _strip_trial_timing(trial_docs: Sequence[Dict[str, Any]]) -> None:
    """Zero the volatile wall-clock field of trial documents (in place).

    The single point deciding what :func:`canonical_timing` removes from
    persisted trial lists -- extend here (not at the call sites) if more
    volatile fields ever appear, or the byte-identical dispatch guarantee
    silently breaks.
    """
    for trial_doc in trial_docs:
        trial_doc["elapsed_seconds"] = 0.0


def _strip_config_transport(config_doc: Optional[Dict[str, Any]]) -> None:
    """Normalise execution-transport config fields in a persisted document.

    ``workers`` never changes payloads (it is already excluded from cell
    keys); pinning it to 1 in canonical artifacts makes a ``run --workers 8``
    byte-comparable to any number of dispatch workers.  ``observe`` is the
    same kind of transport field -- instrumentation writes only under
    ``telemetry/`` and never moves a protocol coin -- so it is pinned to
    None, making an observed run byte-comparable to a plain one (the
    twin-run oracle tests rely on this).
    """
    if config_doc is not None and "workers" in config_doc:
        config_doc["workers"] = 1
    if config_doc is not None and "observe" in config_doc:
        config_doc["observe"] = None


def canonical_timing() -> bool:
    """Whether artifacts should zero out wall-clock fields (``REPRO_CANONICAL_TIMING=1``).

    Trial payloads are seed-deterministic but ``elapsed_seconds`` is not; this
    knob removes the only volatile fields from persisted artifacts so a
    distributed run's ``result.json`` can be diffed byte-for-byte against a
    sequential run's (the dispatch tests and CI's dispatch-smoke job do).
    """
    return os.environ.get("REPRO_CANONICAL_TIMING", "").strip() in ("1", "true", "yes")


def trial_name(trial: Callable[..., Any]) -> str:
    """A stable textual identity for a trial callable.

    Module-level functions map to ``module.qualname``; :func:`functools.
    partial` wrappers include their bound arguments so the same function
    curried differently yields different cell keys.  Lambdas get their
    (non-unique) qualname -- good enough for interactive use, but persisted
    sweeps should use named module-level trials.
    """
    if isinstance(trial, functools.partial):
        inner = trial_name(trial.func)
        bound = [repr(arg) for arg in trial.args]
        bound += [f"{key}={value!r}" for key, value in sorted(trial.keywords.items())]
        return f"{inner}({', '.join(bound)})"
    module = getattr(trial, "__module__", type(trial).__module__)
    qualname = getattr(trial, "__qualname__", type(trial).__qualname__)
    return f"{module}.{qualname}"


class ResultStore:
    """Per-cell experiment artifacts under one run directory.

    Use :meth:`create` for a fresh run (writes ``manifest.json``) and
    :meth:`open` to attach to an existing run for resumption.
    """

    MANIFEST_NAME = "manifest.json"
    RESULT_NAME = "result.json"
    CELLS_DIR = "cells"
    CHUNKS_DIR = "chunks"
    CLAIMS_DIR = "claims"
    WORKERS_DIR = "workers"
    TIMINGS_DIR = "timings"
    TELEMETRY_DIR = "telemetry"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        #: dispatch backend, resolved lazily from the manifest (see ``backend``)
        self._backend = None

    # ------------------------------------------------------------------ lifecycle
    @classmethod
    def create(cls, root: Path, manifest: Optional[Mapping[str, Any]] = None) -> "ResultStore":
        """Initialise a run directory (fails if it already holds a manifest)."""
        store = cls(root)
        if store.manifest_path.exists():
            raise FileExistsError(f"run directory {store.root} already has a manifest; use ResultStore.open")
        store.cells_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(store.manifest_path, dumps_artifact(dict(manifest or {})))
        return store

    @classmethod
    def open(cls, root: Path) -> "ResultStore":
        """Attach to an existing run directory created by :meth:`create`."""
        store = cls(root)
        if not store.manifest_path.exists():
            raise FileNotFoundError(f"{store.root} is not a result-store run directory (no manifest.json)")
        store.cells_dir.mkdir(parents=True, exist_ok=True)
        return store

    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST_NAME

    @property
    def result_path(self) -> Path:
        return self.root / self.RESULT_NAME

    @property
    def cells_dir(self) -> Path:
        return self.root / self.CELLS_DIR

    @property
    def chunks_dir(self) -> Path:
        return self.root / self.CHUNKS_DIR

    @property
    def claims_dir(self) -> Path:
        return self.root / self.CLAIMS_DIR

    @property
    def workers_dir(self) -> Path:
        return self.root / self.WORKERS_DIR

    @property
    def timings_dir(self) -> Path:
        return self.root / self.TIMINGS_DIR

    @property
    def telemetry_dir(self) -> Path:
        return self.root / self.TELEMETRY_DIR

    def manifest(self) -> Dict[str, Any]:
        """The manifest written at :meth:`create` time."""
        return json.loads(self.manifest_path.read_text())

    # ------------------------------------------------------------------ cells
    def cell_key(
        self,
        trial: Callable[..., Any],
        config: ExperimentConfig,
        seeds: Sequence[int],
    ) -> str:
        """Content hash identifying one (trial, config, seeds) cell.

        ``workers`` is excluded from the identity: trials derive all their
        randomness from their seed, so the worker count never changes
        payloads -- resuming a run with a different ``--workers`` must still
        find every completed cell.  ``observe`` is excluded for the same
        reason: observability never perturbs payloads, so a traced resume
        must find the cells an untraced run computed (and vice versa).
        """
        config_identity = config.to_json_dict()
        config_identity.pop("workers", None)
        config_identity.pop("observe", None)
        identity = {
            "trial": trial_name(trial),
            "config": config_identity,
            "seeds": [int(seed) for seed in seeds],
        }
        canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]

    def cell_path(self, key: str) -> Path:
        return self.cells_dir / f"{key}.json"

    def has_cell(self, key: str) -> bool:
        """True when the cell artifact exists on disk."""
        return self.cell_path(key).exists()

    def completed_keys(self) -> List[str]:
        """Keys of every completed cell in this run directory."""
        return sorted(path.stem for path in self.cells_dir.glob("*.json"))

    def save_cell(
        self,
        key: str,
        *,
        trial: Callable[..., Any],
        config: ExperimentConfig,
        seeds: Sequence[int],
        trials: Sequence[TrialResult],
        index: Optional[int] = None,
        overrides: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Persist one completed cell as ``cells/<key>.json``."""
        document = {
            "key": key,
            "trial": trial_name(trial),
            "index": index,
            "overrides": None if overrides is None else jsonify(dict(overrides)),
            "config": config.to_json_dict(),
            "seeds": [int(seed) for seed in seeds],
            "trials": [trial_result.to_json_dict() for trial_result in trials],
        }
        if canonical_timing():
            _strip_trial_timing(document["trials"])
            _strip_config_transport(document["config"])
        path = self.cell_path(key)
        _atomic_write_text(path, dumps_artifact(document))
        _logger.debug("saved cell %s (%d trials) to %s", key, len(trials), path)
        return path

    def load_trials(self, key: str) -> Optional[List[TrialResult]]:
        """The trials of a completed cell, or None when the cell is missing/corrupt."""
        document = self.load_cell_document(key)
        if document is None:
            return None
        return [TrialResult.from_json_dict(t) for t in document.get("trials", [])]

    def load_cell_document(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw JSON document of a completed cell (None when missing).

        Cell writes are atomic (temp file + rename), so a truncated artifact
        should never occur; if one is found anyway (e.g. copied in by hand),
        it is treated as missing so the cell is recomputed rather than
        crashing the resume.
        """
        path = self.cell_path(key)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError:
            _logger.warning("cell artifact %s is unreadable; treating the cell as missing", path)
            return None

    # ------------------------------------------------------------------ chunks
    def chunk_path(self, key: str, lo: int, hi: int) -> Path:
        """Path of the seed-chunk artifact covering seeds ``[lo, hi)`` of cell ``key``."""
        return self.chunks_dir / f"{key}.{int(lo)}-{int(hi)}.json"

    def has_chunk(self, key: str, lo: int, hi: int) -> bool:
        """True when the chunk artifact exists on disk."""
        return self.chunk_path(key, lo, hi).exists()

    def save_chunk(
        self,
        key: str,
        lo: int,
        hi: int,
        *,
        seeds: Sequence[int],
        trials: Sequence[TrialResult],
    ) -> Path:
        """Persist the trials of one seed-chunk of a large cell.

        ``lo``/``hi`` index into the cell's seed list (half-open), not into
        seed values; a cell with seeds ``(7, 8, 9, 10)`` chunked by 2 yields
        chunks ``0-2`` and ``2-4``.
        """
        document = {
            "key": key,
            "lo": int(lo),
            "hi": int(hi),
            "seeds": [int(seed) for seed in seeds],
            "trials": [trial_result.to_json_dict() for trial_result in trials],
        }
        if canonical_timing():
            _strip_trial_timing(document["trials"])
        self.chunks_dir.mkdir(parents=True, exist_ok=True)
        path = self.chunk_path(key, lo, hi)
        _atomic_write_text(path, dumps_artifact(document))
        return path

    def load_chunk_trials(self, key: str, lo: int, hi: int) -> Optional[List[TrialResult]]:
        """Trials of one chunk, or None when missing/corrupt (same policy as cells)."""
        path = self.chunk_path(key, lo, hi)
        if not path.exists():
            return None
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError:
            _logger.warning("chunk artifact %s is unreadable; treating the chunk as missing", path)
            return None
        return [TrialResult.from_json_dict(t) for t in document.get("trials", [])]

    def discard_chunks(self, key: str) -> None:
        """Delete every chunk artifact of ``key`` (after the merged cell exists)."""
        if not self.chunks_dir.exists():
            return
        for path in self.chunks_dir.glob(f"{key}.*.json"):
            try:
                path.unlink()
            except FileNotFoundError:  # another worker cleaned up first
                pass

    # ------------------------------------------------------------------ dispatch backend
    @property
    def backend(self):
        """The :class:`~repro.sim.backends.DispatchBackend` coordinating this run.

        Resolved lazily from the manifest's ``dispatch.backend`` entry (the
        claim-file :class:`~repro.sim.backends.FilesystemBackend` when unset),
        so every worker, ``status`` and ``report`` read the same queue a
        ``dispatch --backend ...`` invocation selected.  Replace it with
        :meth:`attach_backend`.
        """
        if self._backend is None:
            from repro.sim.backends import backend_from_manifest  # local import: backends imports this module

            self._backend = backend_from_manifest(self)
        return self._backend

    def attach_backend(self, backend) -> None:
        """Install ``backend`` as this store's dispatch backend (closes the old one)."""
        if self._backend is not None:
            self._backend.close()
        self._backend = backend

    # ------------------------------------------------------------------ claims / leases
    # Thin delegation onto the active dispatch backend; kept as methods so
    # PR-4-era callers (and the CLI's status path) keep working unchanged.
    def claim_path(self, task_id: str) -> Path:
        return self.claims_dir / f"{task_id}.claim"

    def try_claim(self, task_id: str, worker_id: str, lease_seconds: float) -> bool:
        """Atomically claim ``task_id`` for ``worker_id`` (exactly one winner).

        Returns False when another worker already holds the claim.  Claims are
        advisory work-partitioning hints: a worker that loses every race still
        produces correct results, it just recomputes deterministic bytes.
        """
        return self.backend.try_claim(task_id, worker_id, lease_seconds)

    def read_claim(self, task_id: str) -> Optional[Dict[str, Any]]:
        """The claim document of ``task_id`` (None when unclaimed).

        A claim that stays unreadable after one retry (hand-damaged, or a
        non-atomic writer died mid-write) is reported as an immediately
        expired claim so the task can be rescued by a steal.
        """
        return self.backend.read_claim(task_id)

    def claim_expired(self, claim: Mapping[str, Any], now: Optional[float] = None) -> bool:
        """Whether a claim's lease ran out (heartbeat age beyond the lease)."""
        return self.backend.claim_expired(claim, now)

    def heartbeat_claim(self, task_id: str, worker_id: str) -> bool:
        """Refresh the lease of a claim this worker owns.

        Returns False without touching anything when the claim is gone or
        owned by someone else (e.g. it expired and was stolen while a trial
        ran long) -- the caller keeps computing, because duplicated work is
        harmless, but it must not overwrite the thief's claim.
        """
        return self.backend.heartbeat(task_id, worker_id)

    def release_claim(self, task_id: str, worker_id: str) -> None:
        """Drop a claim after its task's artifacts are written (missing is fine)."""
        self.backend.release(task_id, worker_id)

    def steal_claim(self, task_id: str, worker_id: str, lease_seconds: float) -> bool:
        """Take over an *expired* claim left by a crashed worker.

        The takeover is race-free -- an atomic-rename tombstone on the
        filesystem backend, a guarded ``UPDATE`` inside one transaction on
        SQLite -- so exactly one of several contenders wins.  Returns True
        when this worker now owns the task.
        """
        return self.backend.steal(task_id, worker_id, lease_seconds)

    def active_claims(self) -> List[Dict[str, Any]]:
        """Every live claim of this run (stale tombstones excluded)."""
        return self.backend.active_claims()

    # ------------------------------------------------------------------ worker registry
    def worker_path(self, worker_id: str) -> Path:
        return self.workers_dir / f"{worker_id}.json"

    def write_worker_record(self, worker_id: str, **fields: Any) -> None:
        """Publish/refresh this worker's heartbeat record (for ``status``)."""
        self.backend.worker_record(worker_id, **fields)

    def worker_records(self) -> List[Dict[str, Any]]:
        """All published worker records, sorted by worker id."""
        return self.backend.worker_records()

    # ------------------------------------------------------------------ task timings
    def write_task_timing(self, task_id: str, worker_id: str, seconds: float, trials: int) -> None:
        """Record how long one dispatch task took on one worker (for ``status``).

        Timing records live outside the byte-compared result surface (cells,
        chunks, ``result.json``) -- the ``timings/`` directory or the
        backend's database -- so two runs of different speed still produce
        identical results.
        """
        self.backend.record_timing(task_id, worker_id, seconds, trials)

    def task_timings(self) -> List[Dict[str, Any]]:
        """All recorded task timings, sorted by task id."""
        return self.backend.task_timings()

    # ------------------------------------------------------------------ telemetry
    def save_telemetry(self, name: str, snapshot: Mapping[str, Any], **meta: Any) -> Path:
        """Persist one counter snapshot as ``telemetry/<name>.json``.

        Like ``timings/``, the telemetry directory lives *outside* the
        byte-compared result surface (cells, chunks, ``result.json``) -- an
        observed run and a plain run still produce ``cmp``-equal artifacts.
        ``snapshot`` is a :meth:`~repro.obs.counters.CounterRegistry.snapshot`
        dict; ``meta`` adds context fields (experiment name, trial count, ...).
        """
        self.telemetry_dir.mkdir(parents=True, exist_ok=True)
        document = {
            "name": name,
            "counters": dict(snapshot.get("counters", {})),
            "maxima": dict(snapshot.get("maxima", {})),
            "recorded_at": time.time(),
            **jsonify(dict(meta)),
        }
        path = self.telemetry_dir / f"{name}.json"
        _atomic_write_text(path, dumps_artifact(document))
        return path

    def telemetry_records(self) -> List[Dict[str, Any]]:
        """All persisted telemetry snapshots, sorted by name.

        Only ``*.json`` snapshots are read; per-process trace streams
        (``trace-*.jsonl``) share the directory but are not snapshots.
        """
        if not self.telemetry_dir.exists():
            return []
        out = []
        for path in sorted(self.telemetry_dir.glob("*.json")):
            try:
                out.append(json.loads(path.read_text()))
            except (json.JSONDecodeError, FileNotFoundError):
                continue
        return out

    # ------------------------------------------------------------------ final result
    def save_result(self, result: Any) -> Path:
        """Write the final :class:`~repro.sim.results.ExperimentResult` as ``result.json``.

        With :func:`canonical_timing` active the volatile ``elapsed_seconds``
        field is zeroed so concurrent workers (and a sequential reference run)
        all write byte-identical documents.
        """
        if canonical_timing():
            document = result.to_json_dict()
            document["elapsed_seconds"] = 0.0
            _strip_config_transport(document.get("config"))
            _atomic_write_text(self.result_path, dumps_artifact(document))
        else:
            _atomic_write_text(self.result_path, result.to_json())
        return self.result_path

    def load_result(self):
        """Load ``result.json`` back into an :class:`~repro.sim.results.ExperimentResult`."""
        from repro.sim.results import ExperimentResult  # local import: results imports experiment

        return ExperimentResult.from_json(self.result_path.read_text())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r})"


@contextmanager
def use_store(store: Optional[ResultStore]) -> Iterator[Optional[ResultStore]]:
    """Make ``store`` the active store for the enclosed code (None = no-op).

    :class:`~repro.sim.runner.Sweep` and :func:`repro.sim.experiment.
    run_trials` pick the active store up automatically, so experiments do not
    need store parameters threaded through their ``run()`` signatures.
    """
    token = _ACTIVE_STORE.set(store)
    try:
        yield store
    finally:
        _ACTIVE_STORE.reset(token)


def active_store() -> Optional[ResultStore]:
    """The store installed by the innermost :func:`use_store`, if any."""
    return _ACTIVE_STORE.get()
