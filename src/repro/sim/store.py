"""Durable per-cell result storage and resumable runs.

A :class:`ResultStore` owns one *run directory*::

    <run>/
      manifest.json         # how the run was invoked (experiment, mode, overrides)
      result.json           # the final ExperimentResult (written when the run completes)
      cells/<key>.json      # one artifact per completed (trial, config, seeds) cell

Cells are content-addressed: the key is a hash of the trial callable's
qualified name, the full config and the seed list, so a resumed run finds
exactly the cells that were already computed -- regardless of grid order or
of how many separate sweeps the experiment runs.  :class:`~repro.sim.runner.
Sweep` and :func:`repro.sim.experiment.run_trials` both consult the *active*
store (see :func:`use_store`): completed cells are loaded from disk and
skipped, only missing cells hit the worker pool, and freshly computed cells
are written as soon as they finish.  Because every trial derives all its
randomness from its seed, the payloads a resumed run persists are
byte-identical to an uninterrupted run's.

The ``repro-experiment`` CLI builds on this: ``run E5 --json-out results/``
creates a store and ``resume results/<run>`` re-invokes the same experiment
against it.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.sim.experiment import ExperimentConfig, TrialResult
from repro.util.serialization import dumps_artifact, jsonify
from repro.util.simlog import get_logger

__all__ = ["ResultStore", "use_store", "active_store", "trial_name"]

_logger = get_logger("store")

_ACTIVE_STORE: ContextVar[Optional["ResultStore"]] = ContextVar("repro_active_result_store", default=None)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write via a temp file + rename so a killed process never leaves a partial artifact."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def trial_name(trial: Callable[..., Any]) -> str:
    """A stable textual identity for a trial callable.

    Module-level functions map to ``module.qualname``; :func:`functools.
    partial` wrappers include their bound arguments so the same function
    curried differently yields different cell keys.  Lambdas get their
    (non-unique) qualname -- good enough for interactive use, but persisted
    sweeps should use named module-level trials.
    """
    if isinstance(trial, functools.partial):
        inner = trial_name(trial.func)
        bound = [repr(arg) for arg in trial.args]
        bound += [f"{key}={value!r}" for key, value in sorted(trial.keywords.items())]
        return f"{inner}({', '.join(bound)})"
    module = getattr(trial, "__module__", type(trial).__module__)
    qualname = getattr(trial, "__qualname__", type(trial).__qualname__)
    return f"{module}.{qualname}"


class ResultStore:
    """Per-cell experiment artifacts under one run directory.

    Use :meth:`create` for a fresh run (writes ``manifest.json``) and
    :meth:`open` to attach to an existing run for resumption.
    """

    MANIFEST_NAME = "manifest.json"
    RESULT_NAME = "result.json"
    CELLS_DIR = "cells"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ lifecycle
    @classmethod
    def create(cls, root: Path, manifest: Optional[Mapping[str, Any]] = None) -> "ResultStore":
        """Initialise a run directory (fails if it already holds a manifest)."""
        store = cls(root)
        if store.manifest_path.exists():
            raise FileExistsError(f"run directory {store.root} already has a manifest; use ResultStore.open")
        store.cells_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(store.manifest_path, dumps_artifact(dict(manifest or {})))
        return store

    @classmethod
    def open(cls, root: Path) -> "ResultStore":
        """Attach to an existing run directory created by :meth:`create`."""
        store = cls(root)
        if not store.manifest_path.exists():
            raise FileNotFoundError(f"{store.root} is not a result-store run directory (no manifest.json)")
        store.cells_dir.mkdir(parents=True, exist_ok=True)
        return store

    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST_NAME

    @property
    def result_path(self) -> Path:
        return self.root / self.RESULT_NAME

    @property
    def cells_dir(self) -> Path:
        return self.root / self.CELLS_DIR

    def manifest(self) -> Dict[str, Any]:
        """The manifest written at :meth:`create` time."""
        return json.loads(self.manifest_path.read_text())

    # ------------------------------------------------------------------ cells
    def cell_key(
        self,
        trial: Callable[..., Any],
        config: ExperimentConfig,
        seeds: Sequence[int],
    ) -> str:
        """Content hash identifying one (trial, config, seeds) cell.

        ``workers`` is excluded from the identity: trials derive all their
        randomness from their seed, so the worker count never changes
        payloads -- resuming a run with a different ``--workers`` must still
        find every completed cell.
        """
        config_identity = config.to_json_dict()
        config_identity.pop("workers", None)
        identity = {
            "trial": trial_name(trial),
            "config": config_identity,
            "seeds": [int(seed) for seed in seeds],
        }
        canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]

    def cell_path(self, key: str) -> Path:
        return self.cells_dir / f"{key}.json"

    def has_cell(self, key: str) -> bool:
        """True when the cell artifact exists on disk."""
        return self.cell_path(key).exists()

    def completed_keys(self) -> List[str]:
        """Keys of every completed cell in this run directory."""
        return sorted(path.stem for path in self.cells_dir.glob("*.json"))

    def save_cell(
        self,
        key: str,
        *,
        trial: Callable[..., Any],
        config: ExperimentConfig,
        seeds: Sequence[int],
        trials: Sequence[TrialResult],
        index: Optional[int] = None,
        overrides: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Persist one completed cell as ``cells/<key>.json``."""
        document = {
            "key": key,
            "trial": trial_name(trial),
            "index": index,
            "overrides": None if overrides is None else jsonify(dict(overrides)),
            "config": config.to_json_dict(),
            "seeds": [int(seed) for seed in seeds],
            "trials": [trial_result.to_json_dict() for trial_result in trials],
        }
        path = self.cell_path(key)
        _atomic_write_text(path, dumps_artifact(document))
        _logger.debug("saved cell %s (%d trials) to %s", key, len(trials), path)
        return path

    def load_trials(self, key: str) -> Optional[List[TrialResult]]:
        """The trials of a completed cell, or None when the cell is missing/corrupt."""
        document = self.load_cell_document(key)
        if document is None:
            return None
        return [TrialResult.from_json_dict(t) for t in document.get("trials", [])]

    def load_cell_document(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw JSON document of a completed cell (None when missing).

        Cell writes are atomic (temp file + rename), so a truncated artifact
        should never occur; if one is found anyway (e.g. copied in by hand),
        it is treated as missing so the cell is recomputed rather than
        crashing the resume.
        """
        path = self.cell_path(key)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError:
            _logger.warning("cell artifact %s is unreadable; treating the cell as missing", path)
            return None

    # ------------------------------------------------------------------ final result
    def save_result(self, result: Any) -> Path:
        """Write the final :class:`~repro.sim.results.ExperimentResult` as ``result.json``."""
        _atomic_write_text(self.result_path, result.to_json())
        return self.result_path

    def load_result(self):
        """Load ``result.json`` back into an :class:`~repro.sim.results.ExperimentResult`."""
        from repro.sim.results import ExperimentResult  # local import: results imports experiment

        return ExperimentResult.from_json(self.result_path.read_text())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r})"


@contextmanager
def use_store(store: Optional[ResultStore]) -> Iterator[Optional[ResultStore]]:
    """Make ``store`` the active store for the enclosed code (None = no-op).

    :class:`~repro.sim.runner.Sweep` and :func:`repro.sim.experiment.
    run_trials` pick the active store up automatically, so experiments do not
    need store parameters threaded through their ``run()`` signatures.
    """
    token = _ACTIVE_STORE.set(store)
    try:
        yield store
    finally:
        _ACTIVE_STORE.reset(token)


def active_store() -> Optional[ResultStore]:
    """The store installed by the innermost :func:`use_store`, if any."""
    return _ACTIVE_STORE.get()
