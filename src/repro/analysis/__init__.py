"""Analysis helpers: the paper's bounds, Monte-Carlo statistics, result tables."""

from repro.analysis.stats import (
    MeanCI,
    linear_fit,
    log_fit_slope,
    mean_ci,
    percentile,
    success_fraction,
    wilson_interval,
)
from repro.analysis.tables import ResultTable, format_value
from repro.analysis.theory import PaperBounds

__all__ = [
    "MeanCI",
    "linear_fit",
    "log_fit_slope",
    "mean_ci",
    "percentile",
    "success_fraction",
    "wilson_interval",
    "ResultTable",
    "format_value",
    "PaperBounds",
]
