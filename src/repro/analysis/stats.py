"""Monte-Carlo statistics helpers.

The paper's guarantees are "with high probability" statements; the experiments
estimate the corresponding probabilities over independent seeded trials.
These helpers provide the small set of statistics the experiment tables
report: means with normal-approximation confidence intervals, success
fractions with Wilson score intervals (well-behaved near 0 and 1), medians
and percentiles, and simple linear fits used to check O(log n) scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "MeanCI",
    "mean_ci",
    "wilson_interval",
    "success_fraction",
    "percentile",
    "linear_fit",
    "log_fit_slope",
]


@dataclass(frozen=True)
class MeanCI:
    """A mean with a symmetric confidence interval."""

    mean: float
    lower: float
    upper: float
    count: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3g} [{self.lower:.3g}, {self.upper:.3g}]"


def mean_ci(values: Sequence[float] | np.ndarray, confidence: float = 0.95) -> MeanCI:
    """Mean and normal-approximation confidence interval of ``values``.

    For tiny samples (< 2) the interval collapses onto the mean.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return MeanCI(mean=float("nan"), lower=float("nan"), upper=float("nan"), count=0)
    mean = float(arr.mean())
    if arr.size < 2:
        return MeanCI(mean=mean, lower=mean, upper=mean, count=int(arr.size))
    z = _z_value(confidence)
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return MeanCI(mean=mean, lower=mean - z * sem, upper=mean + z * sem, count=int(arr.size))


def _z_value(confidence: float) -> float:
    """Two-sided z value for the given confidence level (lookup, no scipy needed)."""
    table = {0.90: 1.6449, 0.95: 1.9600, 0.98: 2.3263, 0.99: 2.5758}
    best = min(table, key=lambda c: abs(c - confidence))
    return table[best]


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because experiment success rates
    are often exactly 0 or 1 at the sample sizes we run.
    """
    if trials <= 0:
        return (0.0, 1.0)
    z = _z_value(confidence)
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def success_fraction(outcomes: Iterable[bool]) -> Tuple[float, Tuple[float, float], int]:
    """Fraction of True outcomes, its Wilson interval, and the trial count."""
    values = [bool(o) for o in outcomes]
    trials = len(values)
    successes = sum(values)
    fraction = successes / trials if trials else 0.0
    return fraction, wilson_interval(successes, trials), trials


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0-100) of ``values`` (NaN for empty input)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares slope and intercept of ``ys`` against ``xs``."""
    x = np.asarray(list(xs), dtype=np.float64)
    y = np.asarray(list(ys), dtype=np.float64)
    if x.size < 2:
        return (float("nan"), float(y.mean()) if y.size else float("nan"))
    slope, intercept = np.polyfit(x, y, 1)
    return (float(slope), float(intercept))


def log_fit_slope(ns: Sequence[float], ys: Sequence[float]) -> float:
    """Slope of ``ys`` against ``ln(ns)``.

    Used to check claims of the form "latency grows like c * log n": a clean
    O(log n) relationship shows up as an approximately constant slope.
    """
    xs = [math.log(n) for n in ns]
    slope, _ = linear_fit(xs, ys)
    return slope
