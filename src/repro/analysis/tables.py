"""Plain-text / Markdown / CSV result tables.

Every experiment produces one or more :class:`ResultTable` objects -- the
reproduction's stand-in for the paper's (non-existent) tables and figures.
A table is a list of column names plus rows of values, with light formatting
logic so the same object can be printed to a terminal, embedded in
EXPERIMENTS.md, or dumped as CSV for external plotting.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["ResultTable", "format_value"]


def format_value(value: Any, precision: int = 4) -> str:
    """Human-friendly formatting for table cells."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value != 0 and (abs(value) >= 10 ** precision or abs(value) < 10 ** (-precision + 1)):
            return f"{value:.{precision - 1}e}"
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class ResultTable:
    """A titled table of experiment results.

    Attributes
    ----------
    title:
        Table caption (e.g. ``"E6: retrieval latency vs n"``).
    columns:
        Column names, in display order.
    rows:
        One dict per row; missing keys render as ``-``.
    notes:
        Free-text notes rendered under the table (assumptions, parameters).
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row given as keyword arguments."""
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Append a free-text note."""
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing cells become None)."""
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------ rendering
    def _formatted_rows(self) -> List[List[str]]:
        return [[format_value(row.get(col)) for col in self.columns] for row in self.rows]

    def to_text(self) -> str:
        """Fixed-width text rendering for terminals and log files."""
        formatted = self._formatted_rows()
        widths = [len(col) for col in self.columns]
        for row in formatted:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), 8)]
        lines.append(" | ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns)))
        lines.append(sep)
        for row in formatted:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering (used by EXPERIMENTS.md)."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join(["---"] * len(self.columns)) + "|")
        for row in self._formatted_rows():
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering for external plotting tools."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([row.get(col, "") for col in self.columns])
        return buffer.getvalue()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()

    # ------------------------------------------------------------------ small helpers
    def is_empty(self) -> bool:
        """True when the table has no rows."""
        return not self.rows

    @staticmethod
    def merge(title: str, tables: Iterable["ResultTable"]) -> "ResultTable":
        """Concatenate tables that share the same columns."""
        tables = list(tables)
        if not tables:
            return ResultTable(title=title, columns=[])
        columns = tables[0].columns
        merged = ResultTable(title=title, columns=list(columns))
        for table in tables:
            if table.columns != columns:
                raise ValueError("cannot merge tables with different columns")
            merged.rows.extend(table.rows)
            merged.notes.extend(table.notes)
        return merged
