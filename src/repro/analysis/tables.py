"""Plain-text / Markdown / CSV result tables.

Every experiment produces one or more :class:`ResultTable` objects -- the
reproduction's stand-in for the paper's (non-existent) tables and figures.
A table is a list of column names plus rows of values, with light formatting
logic so the same object can be printed to a terminal, embedded in
EXPERIMENTS.md, or dumped as CSV for external plotting.  Tables also
round-trip through JSON (:meth:`ResultTable.to_json` /
:meth:`ResultTable.from_json`) so persisted :class:`~repro.sim.results.
ExperimentResult` artifacts re-render exactly as the live run did.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.util.serialization import dumps_artifact, jsonify

__all__ = ["ResultTable", "format_value"]


def format_value(value: Any, precision: int = 4) -> str:
    """Human-friendly formatting for table cells."""
    if type(value).__module__ == "numpy" and hasattr(value, "item") and not hasattr(value, "__len__"):
        value = value.item()  # numpy scalars render like their Python equivalents
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value != 0 and (abs(value) >= 10 ** precision or abs(value) < 10 ** (-precision + 1)):
            return f"{value:.{precision - 1}e}"
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class ResultTable:
    """A titled table of experiment results.

    Attributes
    ----------
    title:
        Table caption (e.g. ``"E6: retrieval latency vs n"``).
    columns:
        Column names, in display order.
    rows:
        One dict per row; missing keys render as ``-``.
    notes:
        Free-text notes rendered under the table (assumptions, parameters).
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row given as keyword arguments."""
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Append a free-text note."""
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing cells become None)."""
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------ rendering
    def _formatted_rows(self) -> List[List[str]]:
        return [[format_value(row.get(col)) for col in self.columns] for row in self.rows]

    def to_text(self) -> str:
        """Fixed-width text rendering for terminals and log files."""
        formatted = self._formatted_rows()
        widths = [len(col) for col in self.columns]
        for row in formatted:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), 8)]
        lines.append(" | ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns)))
        lines.append(sep)
        for row in formatted:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering (used by EXPERIMENTS.md)."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join(["---"] * len(self.columns)) + "|")
        for row in self._formatted_rows():
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering for external plotting tools."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([row.get(col, "") for col in self.columns])
        return buffer.getvalue()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()

    # ------------------------------------------------------------------ serialization
    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-data form of the table (numpy values normalised)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": jsonify(self.rows),
            "notes": list(self.notes),
        }

    def to_json(self) -> str:
        """JSON document for on-disk artifacts."""
        return dumps_artifact(self.to_json_dict())

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ResultTable":
        """Rebuild a table from :meth:`to_json_dict` output."""
        return cls(
            title=data["title"],
            columns=list(data["columns"]),
            rows=[dict(row) for row in data.get("rows", [])],
            notes=list(data.get("notes", [])),
        )

    @classmethod
    def from_json(cls, document: str) -> "ResultTable":
        """Inverse of :meth:`to_json`."""
        return cls.from_json_dict(json.loads(document))

    # ------------------------------------------------------------------ small helpers
    def is_empty(self) -> bool:
        """True when the table has no rows."""
        return not self.rows

    @staticmethod
    def merge(title: str, tables: Iterable["ResultTable"]) -> "ResultTable":
        """Concatenate tables that share the same columns."""
        tables = list(tables)
        if not tables:
            return ResultTable(title=title, columns=[])
        columns = tables[0].columns
        merged = ResultTable(title=title, columns=list(columns))
        for table in tables:
            if table.columns != columns:
                raise ValueError("cannot merge tables with different columns")
            merged.rows.extend(table.rows)
            merged.notes.extend(table.notes)
        return merged
