"""The paper's theoretical predictions as executable functions.

Each function evaluates one of the paper's bounds at a concrete ``n`` (and
``delta``), so the experiment tables can print the predicted value next to
the measured one.  All logarithms are natural, as in the paper.

These are the *asymptotic* expressions with their literal constants; at
laptop-scale ``n`` several of them are vacuous (e.g. the Core-size lower
bound ``n - 8n / log^{(k-1)/2} n`` is negative below n ~ 10^12 for
delta = 0.5).  The experiments therefore report them alongside the measured
quantities rather than asserting them, and EXPERIMENTS.md discusses where the
finite-size gap lies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

__all__ = ["PaperBounds"]


@dataclass(frozen=True)
class PaperBounds:
    """Evaluates the paper's stated bounds for one (n, delta) pair."""

    n: int
    delta: float = 0.5

    @property
    def k(self) -> float:
        """The churn exponent ``k = 1 + delta``."""
        return 1.0 + self.delta

    @property
    def log_n(self) -> float:
        """Natural log of n."""
        return math.log(self.n)

    # ------------------------------------------------------------------ Section 2/3
    def churn_limit(self, constant: float = 4.0) -> float:
        """Per-round churn bound ``constant * n / log^k n`` (Section 2.1 / 3)."""
        return constant * self.n / (self.log_n ** self.k)

    def mixing_time(self, m: float = 2.0) -> float:
        """Dynamic mixing time ``tau = m log n`` (Lemma 1)."""
        return m * self.log_n

    def core_size_lower_bound(self) -> float:
        """Soup Theorem Core size, ``n - 8n / log^{(k-1)/2} n`` (Theorem 1)."""
        return self.n - 8.0 * self.n / (self.log_n ** ((self.k - 1.0) / 2.0))

    def survival_set_lower_bound(self) -> float:
        """Lemma 2's bound on sources with good survival, ``n - 4n / log^{(k-1)/2} n``."""
        return self.n - 4.0 * self.n / (self.log_n ** ((self.k - 1.0) / 2.0))

    def survival_probability_lower_bound(self) -> float:
        """Lemma 2's per-source survival probability bound ``1 - 1 / log^{(k-1)/2} n``."""
        return 1.0 - 1.0 / (self.log_n ** ((self.k - 1.0) / 2.0))

    def hit_probability_window(self) -> tuple[float, float]:
        """Theorem 1's per-pair hit-probability window ``[1/17n, 3/2n]``."""
        return (1.0 / (17.0 * self.n), 1.5 / self.n)

    # ------------------------------------------------------------------ Section 4
    def committee_size(self, h: float = 1.0) -> float:
        """Committee size ``h log n`` (Algorithm 1)."""
        return h * self.log_n

    def committee_failure_probability(self, h: float = 1.0, ell1_exponent: float = None) -> float:
        """Theorem 2's per-refresh failure probability ``p = 1/n^{l1} + 2/n^{2h}``.

        With ``l1 <= alpha/144`` left symbolic in the paper, we use the simple
        ``n^{-Omega(1)}`` reading: the probability that a refresh goes bad is
        polynomially small, so the expected committee lifetime is ``n^{Omega(1)}``
        refresh periods.
        """
        exponent = ell1_exponent if ell1_exponent is not None else min(1.0, 2.0 * h)
        return 1.0 / (self.n ** exponent) + 2.0 / (self.n ** (2.0 * h))

    def expected_committee_lifetime_refreshes(self, h: float = 1.0) -> float:
        """Expected refreshes before the committee stops being good (1/p, Corollary 2)."""
        p = self.committee_failure_probability(h)
        return math.inf if p <= 0 else 1.0 / p

    def landmark_lower_bound(self) -> float:
        """Lemma 8's lower bound on the landmark set, ``sqrt(n)``."""
        return math.sqrt(self.n)

    def landmark_upper_bound(self) -> float:
        """Lemma 8's upper bound, ``n^{1/2+delta} * log n``."""
        return (self.n ** (0.5 + self.delta)) * self.log_n

    def retrieval_rounds(self, constant: float = 1.0) -> float:
        """Theorem 4's retrieval latency ``O(log n)`` with an explicit constant."""
        return constant * self.log_n

    def retrieval_miss_probability_per_window(self) -> float:
        """Theorem 4's per-tau-window miss bound ``(1 - 1/Theta(sqrt n))^{Theta(sqrt n)} <= e^{-Omega(1)}``."""
        return math.exp(-1.0)

    def storage_copies(self, h: float = 1.0) -> float:
        """Theta(log n) stored copies per item (Theorem 3)."""
        return h * self.log_n

    def erasure_blowup(self, h: float = 1.0) -> float:
        """Section 4.4's space blow-up ``L/K = h/(h-2)`` (constant-factor overhead)."""
        if h <= 2:
            return float("inf")
        return h / (h - 2.0)

    def good_nodes_lower_bound(self) -> float:
        """Theorems 3/4's ``n - o(n)`` node set, instantiated as the Core lower bound."""
        return max(0.0, self.core_size_lower_bound())

    # ------------------------------------------------------------------ conjecture (Section 5)
    def conjectured_churn_ceiling(self) -> float:
        """The conclusion's conjectured hard limit ``o(n / log n)`` for walk-based schemes."""
        return self.n / self.log_n

    # ------------------------------------------------------------------ reporting
    def summary(self) -> Dict[str, float]:
        """All bounds as a flat dict (printed in experiment headers)."""
        lo, hi = self.hit_probability_window()
        return {
            "n": float(self.n),
            "delta": self.delta,
            "churn_limit": self.churn_limit(),
            "mixing_time": self.mixing_time(),
            "core_size_lower_bound": self.core_size_lower_bound(),
            "survival_probability_lower_bound": self.survival_probability_lower_bound(),
            "hit_probability_low": lo,
            "hit_probability_high": hi,
            "committee_size": self.committee_size(),
            "landmark_lower_bound": self.landmark_lower_bound(),
            "landmark_upper_bound": self.landmark_upper_bound(),
            "retrieval_rounds": self.retrieval_rounds(),
            "storage_copies": self.storage_copies(),
            "conjectured_churn_ceiling": self.conjectured_churn_ceiling(),
        }
