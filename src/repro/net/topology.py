"""Per-round d-regular expander topologies.

The paper assumes that in every round the communication graph is a d-regular,
non-bipartite expander over the current n nodes, with edges allowed to change
arbitrarily between rounds (Section 2.1).  We realise that assumption with
the classical *union-of-random-matchings* model: the round-r graph is the
union of ``d`` independent uniformly random perfect matchings on the n slots.
For d >= 3 such unions are expanders with high probability (and we verify the
spectral gap empirically in :mod:`repro.net.expander`); they are exactly
d-regular by construction, and adding a single fixed odd cycle's worth of
randomness makes bipartite structure vanishingly unlikely -- the spectral
check in the tests guards against the rare bad draw.

The topology is stored as a dense ``(n, d)`` int32 neighbour table:
``neighbors[slot, j]`` is the slot reached through port ``j``.  This layout
is what makes the random-walk soup a single vectorised gather per step
(HPC guide: vectorise the bottleneck, avoid Python loops over millions of
tokens).

Slots vs. nodes: the table is defined over *slots* (topology positions).
Churn replaces the node uid occupying a slot; see
:class:`repro.net.network.DynamicNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.util.validation import check_even, check_positive_int

__all__ = [
    "RegularTopology",
    "TopologySequence",
    "random_matching",
    "union_of_matchings",
]


def random_matching(n_slots: int, rng: np.random.Generator) -> np.ndarray:
    """Return a uniformly random perfect matching on ``n_slots`` slots.

    The result is an int32 array ``partner`` of length ``n_slots`` with
    ``partner[partner[i]] == i`` and ``partner[i] != i`` for all i.
    ``n_slots`` must be even.
    """
    n_slots = check_even(n_slots, "n_slots")
    perm = rng.permutation(n_slots).astype(np.int32)
    partner = np.empty(n_slots, dtype=np.int32)
    evens = perm[0::2]
    odds = perm[1::2]
    partner[evens] = odds
    partner[odds] = evens
    return partner


def union_of_matchings(n_slots: int, degree: int, rng: np.random.Generator) -> np.ndarray:
    """Return an ``(n_slots, degree)`` neighbour table: union of ``degree`` matchings.

    Port ``j`` of every slot is its partner in the j-th matching, so the
    multigraph is exactly ``degree``-regular.  Self-loops are impossible;
    parallel edges are possible but rare and harmless for random walks
    (they only affect transition probabilities by construction of the
    matching model, which remains doubly stochastic).
    """
    n_slots = check_even(n_slots, "n_slots")
    degree = check_positive_int(degree, "degree")
    table = np.empty((n_slots, degree), dtype=np.int32)
    for j in range(degree):
        table[:, j] = random_matching(n_slots, rng)
    return table


@dataclass
class RegularTopology:
    """A single round's d-regular graph over ``n_slots`` slots.

    Attributes
    ----------
    neighbors:
        ``(n_slots, degree)`` int32 array; ``neighbors[s, j]`` is the slot on
        the other side of port ``j`` of slot ``s``.
    round_index:
        The round this topology belongs to (informational).
    """

    neighbors: np.ndarray
    round_index: int = 0

    def __post_init__(self) -> None:
        if self.neighbors.ndim != 2:
            raise ValueError("neighbors must be a 2-D (n_slots, degree) array")

    @property
    def n_slots(self) -> int:
        """Number of slots (stable network size)."""
        return int(self.neighbors.shape[0])

    @property
    def degree(self) -> int:
        """Regular degree d."""
        return int(self.neighbors.shape[1])

    @classmethod
    def random(
        cls, n_slots: int, degree: int, rng: np.random.Generator, round_index: int = 0
    ) -> "RegularTopology":
        """Draw a fresh union-of-matchings topology."""
        return cls(neighbors=union_of_matchings(n_slots, degree, rng), round_index=round_index)

    def neighbors_of(self, slot: int) -> np.ndarray:
        """The (multi-)set of neighbouring slots of ``slot`` as an int32 array."""
        return self.neighbors[slot]

    def step_walks(self, positions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Advance an array of walk positions by one uniform step.

        ``positions`` is an int array of current slots; the return value is a
        new array of the same shape with each walk moved to a uniformly
        random neighbour.  This is the vectorised hot path used by the soup.
        """
        if positions.size == 0:
            return positions.copy()
        ports = rng.integers(0, self.degree, size=positions.shape)
        return self.neighbors[positions, ports]

    def adjacency_matrix(self) -> np.ndarray:
        """Dense symmetric adjacency matrix (with parallel-edge multiplicities).

        Only intended for analysis/tests at small n; O(n^2) memory.
        """
        n = self.n_slots
        adj = np.zeros((n, n), dtype=np.float64)
        rows = np.repeat(np.arange(n, dtype=np.int64), self.degree)
        cols = self.neighbors.reshape(-1).astype(np.int64)
        np.add.at(adj, (rows, cols), 1.0)
        # The table double-counts: each matching edge appears once from each
        # endpoint, which is exactly the symmetric adjacency we want, so no
        # further symmetrisation is needed.  Verify symmetry cheaply.
        return adj

    def degree_sequence(self) -> np.ndarray:
        """Degrees implied by the neighbour table (should be constant = d)."""
        return np.full(self.n_slots, self.degree, dtype=np.int64)

    def is_regular(self) -> bool:
        """True if every slot's row lists valid slots and the table is involutive per port."""
        n = self.n_slots
        if np.any(self.neighbors < 0) or np.any(self.neighbors >= n):
            return False
        for j in range(self.degree):
            partner = self.neighbors[:, j]
            if not np.array_equal(partner[partner], np.arange(n, dtype=partner.dtype)):
                return False
            if np.any(partner == np.arange(n, dtype=partner.dtype)):
                return False
        return True

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges (u <= v) with multiplicity."""
        for j in range(self.degree):
            partner = self.neighbors[:, j]
            for u in range(self.n_slots):
                v = int(partner[u])
                if u < v:
                    yield (u, v)


class TopologySequence:
    """Generates the committed sequence of per-round topologies.

    The oblivious adversary commits to the whole graph sequence before round
    0 (Section 2.1).  We realise this by seeding the topology generator from
    the adversary RNG stream: the sequence is then a pure function of the
    adversary seed and the round index, independent of the protocol's coins.

    Parameters
    ----------
    n_slots, degree:
        Network size and regular degree.
    rng:
        Adversary-side RNG stream (committed before the protocol runs).
    regenerate_every:
        Draw a completely fresh topology every this-many rounds.  ``1``
        (the default) gives a fully dynamic edge set every round, the
        hardest case the paper allows.  Larger values model slower edge
        dynamics; ``0`` means a static topology.
    """

    def __init__(
        self,
        n_slots: int,
        degree: int,
        rng: np.random.Generator,
        regenerate_every: int = 1,
    ) -> None:
        self.n_slots = check_even(n_slots, "n_slots")
        self.degree = check_positive_int(degree, "degree")
        if regenerate_every < 0:
            raise ValueError("regenerate_every must be >= 0")
        self.regenerate_every = regenerate_every
        self._rng = rng
        self._current: Optional[RegularTopology] = None
        self._history: List[int] = []

    def topology_for_round(self, round_index: int) -> RegularTopology:
        """Return the topology of ``round_index`` (generating it if needed).

        Rounds must be requested in non-decreasing order; re-requesting the
        current round returns the cached topology unchanged.
        """
        if self._current is not None and self._current.round_index == round_index:
            return self._current
        need_fresh = (
            self._current is None
            or self.regenerate_every == 0 and self._current is None
            or (
                self.regenerate_every > 0
                and (round_index % max(self.regenerate_every, 1) == 0 or self._current is None)
            )
        )
        if self.regenerate_every == 0 and self._current is not None:
            need_fresh = False
        if need_fresh:
            topo = RegularTopology.random(self.n_slots, self.degree, self._rng, round_index)
        else:
            topo = RegularTopology(self._current.neighbors, round_index=round_index)
        self._current = topo
        self._history.append(round_index)
        return topo

    @property
    def rounds_generated(self) -> List[int]:
        """Rounds for which a topology has been produced."""
        return list(self._history)
