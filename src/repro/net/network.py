"""The synchronous dynamic network with churn.

This module implements the substrate of Section 2.1:

* a stable population of ``n`` **slots** (|V^r| = n in every round);
* per-round d-regular expander topologies over the slots
  (:class:`repro.net.topology.TopologySequence`);
* an **oblivious churn adversary** that replaces the node occupying a slot
  with a brand-new node (fresh uid, no state) at the start of a round;
* synchronous message passing: a message sent in round r is delivered at the
  end of round r iff the recipient is still in the network, and is processed
  by the recipient in round r+1;
* bandwidth accounting through a :class:`repro.util.bitbudget.BitBudgetLedger`.

The round structure mirrors the paper: *first* the adversary applies churn
and presents the round's graph, *then* nodes exchange messages and compute.
Drive it as::

    report = net.begin_round()        # adversary moves, topology fixed
    ...protocols call net.send(...)   # compute + send
    net.end_round()                   # messages delivered to survivors
    ...next round: recipients read net.inbox(uid)

Node identity: a **uid** is a permanent, globally unique identifier of one
node incarnation.  When a slot is churned the old uid disappears forever and
a new uid takes over the slot.  Protocol state is keyed by uid, so churned
nodes genuinely lose everything -- exactly the failure model of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.net.churn import ChurnAdversary, NoChurn
from repro.net.messages import Message
from repro.net.topology import RegularTopology, TopologySequence
from repro.util.bitbudget import BitBudgetLedger
from repro.util.rng import RngStream
from repro.util.validation import check_even, check_positive_int

__all__ = ["ChurnReport", "DynamicNetwork"]


@dataclass(frozen=True)
class ChurnReport:
    """What the adversary did at the start of one round."""

    round_index: int
    churned_slots: np.ndarray
    churned_out_uids: np.ndarray
    churned_in_uids: np.ndarray

    @property
    def count(self) -> int:
        """Number of replaced nodes."""
        return int(self.churned_slots.size)


class DynamicNetwork:
    """A synchronous dynamic P2P network with adversarial churn.

    Parameters
    ----------
    n_slots:
        Stable network size ``n`` (must be even for the matching topology).
    degree:
        Regular degree ``d`` of every round's graph.
    adversary:
        Churn adversary; defaults to :class:`repro.net.churn.NoChurn`.
    adversary_rng:
        RNG stream used for the committed topology sequence.  Must be the
        adversary-side stream so that topologies are independent of the
        protocol's randomness.
    ledger:
        Optional bandwidth ledger; one is created automatically if omitted.
    regenerate_topology_every:
        How often the edge set is redrawn (1 = every round, the hardest case).
    """

    def __init__(
        self,
        n_slots: int,
        degree: int = 8,
        adversary: Optional[ChurnAdversary] = None,
        adversary_rng: Optional[RngStream] = None,
        ledger: Optional[BitBudgetLedger] = None,
        regenerate_topology_every: int = 1,
    ) -> None:
        self.n_slots = check_even(n_slots, "n_slots")
        self.degree = check_positive_int(degree, "degree")
        self.adversary = adversary if adversary is not None else NoChurn()
        rng_stream = adversary_rng if adversary_rng is not None else RngStream(0, name="adversary")
        self._topology_sequence = TopologySequence(
            self.n_slots, self.degree, rng_stream.generator, regenerate_every=regenerate_topology_every
        )
        self.ledger = ledger if ledger is not None else BitBudgetLedger(self.n_slots)

        # Slot s is occupied by uid slot_uid[s]; initial population is uids 0..n-1.
        self._slot_uid = np.arange(self.n_slots, dtype=np.int64)
        self._uid_slot: Dict[int, int] = {int(u): int(u) for u in range(self.n_slots)}
        self._uid_birth_round: Dict[int, int] = {int(u): 0 for u in range(self.n_slots)}
        self._next_uid = self.n_slots

        self.round_index = -1
        self._topology: Optional[RegularTopology] = None
        self._pending: List[Message] = []
        self._mailboxes: Dict[int, List[Message]] = {}
        self._in_round = False
        self._total_churned = 0
        # Lazily maintained argsort of _slot_uid, shared by the bulk uid
        # lookups (slots_of_uids / alive_mask); invalidated on churn.
        self._uid_order_cache: Optional[np.ndarray] = None
        self._sorted_uid_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ lifecycle
    def begin_round(self) -> ChurnReport:
        """Advance to the next round: apply churn, fix the round's topology."""
        if self._in_round:
            raise RuntimeError("begin_round called twice without end_round")
        self.round_index += 1
        self._in_round = True

        slots = np.asarray(self.adversary.slots_for_round(self.round_index), dtype=np.int64)
        if slots.size and (slots.min() < 0 or slots.max() >= self.n_slots):
            raise ValueError("adversary returned out-of-range slots")
        if slots.size != np.unique(slots).size:
            raise ValueError("adversary returned duplicate slots")

        churned_out = self._slot_uid[slots].copy()
        churned_in = np.arange(self._next_uid, self._next_uid + slots.size, dtype=np.int64)
        self._next_uid += slots.size
        self._total_churned += int(slots.size)

        for old_uid in churned_out:
            self._uid_slot.pop(int(old_uid), None)
            self._mailboxes.pop(int(old_uid), None)
        self._slot_uid[slots] = churned_in
        if slots.size:
            self._uid_order_cache = None
            self._sorted_uid_cache = None
        for slot, new_uid in zip(slots, churned_in):
            self._uid_slot[int(new_uid)] = int(slot)
            self._uid_birth_round[int(new_uid)] = self.round_index

        self._topology = self._topology_sequence.topology_for_round(self.round_index)
        return ChurnReport(
            round_index=self.round_index,
            churned_slots=slots,
            churned_out_uids=churned_out,
            churned_in_uids=churned_in,
        )

    def end_round(self) -> int:
        """Deliver this round's messages to recipients that are still alive.

        Returns the number of delivered messages (lost ones are dropped
        silently, as in the paper's unreliable-communication model).
        """
        if not self._in_round:
            raise RuntimeError("end_round called outside a round")
        delivered = 0
        for message in self._pending:
            if message.recipient in self._uid_slot:
                self._mailboxes.setdefault(message.recipient, []).append(message)
                delivered += 1
        self._pending.clear()
        self._in_round = False
        return delivered

    # ------------------------------------------------------------------ messaging
    def send(self, message: Message) -> bool:
        """Queue ``message`` for delivery at the end of the current round.

        The sender must currently be in the network; sending from a churned
        uid raises (protocol bug), while sending *to* a dead uid is allowed
        and simply results in the message being lost.
        Bandwidth is charged to the sender regardless of delivery.
        """
        if not self._in_round:
            raise RuntimeError("send called outside a round")
        if message.sender not in self._uid_slot:
            raise ValueError(f"sender uid {message.sender} is not in the network")
        self.ledger.charge(
            self.round_index,
            message.sender,
            ids=message.id_count,
            payload_bytes=message.payload_bytes,
        )
        self._pending.append(message)
        return message.recipient in self._uid_slot

    def inbox(self, uid: int) -> List[Message]:
        """Pop and return all messages delivered to ``uid`` in previous rounds."""
        return self._mailboxes.pop(int(uid), [])

    def peek_inbox(self, uid: int) -> List[Message]:
        """Return (without consuming) the pending inbox of ``uid``."""
        return list(self._mailboxes.get(int(uid), []))

    # ------------------------------------------------------------------ membership
    def is_alive(self, uid: int) -> bool:
        """True iff ``uid`` currently occupies a slot."""
        return int(uid) in self._uid_slot

    def alive_count(self, uids: Iterable[int]) -> int:
        """How many of ``uids`` are currently in the network."""
        return sum(1 for u in uids if int(u) in self._uid_slot)

    def slot_of(self, uid: int) -> int:
        """The slot currently occupied by ``uid`` (raises KeyError if churned out)."""
        return self._uid_slot[int(uid)]

    def slot_of_or_none(self, uid: int) -> Optional[int]:
        """The slot of ``uid`` or None if it has been churned out."""
        return self._uid_slot.get(int(uid))

    def uid_at(self, slot: int) -> int:
        """The uid currently occupying ``slot``."""
        return int(self._slot_uid[int(slot)])

    def uids_at(self, slots: np.ndarray) -> np.ndarray:
        """Vectorised lookup of the uids occupying an array of slots."""
        return self._slot_uid[np.asarray(slots, dtype=np.int64)]

    def _uid_sort(self) -> tuple[np.ndarray, np.ndarray]:
        """``(order, sorted_uids)`` for the current slot->uid table (cached per round)."""
        if self._uid_order_cache is None:
            self._uid_order_cache = np.argsort(self._slot_uid, kind="stable")
            self._sorted_uid_cache = self._slot_uid[self._uid_order_cache]
        return self._uid_order_cache, self._sorted_uid_cache

    def _find_uids(self, uids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(sorted_positions, found_mask)`` of ``uids`` in the slot->uid table.

        One ``searchsorted`` against the cached uid sort; ``sorted_positions``
        indexes into the sort order and is only meaningful where
        ``found_mask`` is True.
        """
        _, sorted_uids = self._uid_sort()
        idx = np.searchsorted(sorted_uids, uids)
        idx_clipped = np.minimum(idx, sorted_uids.size - 1)
        return idx_clipped, sorted_uids[idx_clipped] == uids

    def slots_of_uids(self, uids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised uid -> slot lookup: ``(slots, alive_mask)``.

        ``slots[i]`` is the slot of ``uids[i]`` where ``alive_mask[i]`` is
        True and undefined otherwise.  One (cached) sort of the slot->uid
        array plus a ``searchsorted`` replaces a Python-level dict probe per
        uid; duplicate query uids are allowed.
        """
        uids = np.asarray(uids, dtype=np.int64)
        if uids.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        idx_clipped, alive = self._find_uids(uids)
        return self._uid_sort()[0][idx_clipped], alive

    def alive_mask(self, uids: np.ndarray) -> np.ndarray:
        """Vectorised liveness test: ``mask[i]`` iff ``uids[i]`` occupies a slot.

        The bulk counterpart of :meth:`is_alive`, used by the columnar
        sampling plane to filter whole delivery columns in one pass.
        """
        uids = np.asarray(uids, dtype=np.int64)
        if uids.size == 0:
            return np.empty(0, dtype=bool)
        return self._find_uids(uids)[1]

    def slots_of(self, uids: Sequence[int]) -> List[int]:
        """Slots of the uids that are still alive (dead uids are skipped)."""
        out: List[int] = []
        for uid in uids:
            slot = self._uid_slot.get(int(uid))
            if slot is not None:
                out.append(slot)
        return out

    def alive_uids(self) -> np.ndarray:
        """All uids currently in the network, in slot order."""
        return self._slot_uid.copy()

    def birth_round(self, uid: int) -> Optional[int]:
        """Round in which ``uid`` joined (None if unknown)."""
        return self._uid_birth_round.get(int(uid))

    def age(self, uid: int) -> Optional[int]:
        """Number of rounds ``uid`` has been in the network (None if churned out)."""
        if int(uid) not in self._uid_slot:
            return None
        return self.round_index - self._uid_birth_round[int(uid)]

    @property
    def total_churned(self) -> int:
        """Total number of node replacements applied so far."""
        return self._total_churned

    # ------------------------------------------------------------------ topology access
    @property
    def topology(self) -> RegularTopology:
        """The current round's topology (valid after :meth:`begin_round`)."""
        if self._topology is None:
            raise RuntimeError("no topology yet; call begin_round() first")
        return self._topology

    def neighbors_of_uid(self, uid: int) -> List[int]:
        """The uids adjacent to ``uid`` in the current round's graph."""
        slot = self._uid_slot.get(int(uid))
        if slot is None:
            return []
        neighbor_slots = self.topology.neighbors_of(slot)
        return [int(self._slot_uid[int(s)]) for s in neighbor_slots]

    def slot_uid_view(self) -> np.ndarray:
        """Read-only view of the slot -> uid mapping (used by the walk soup)."""
        view = self._slot_uid.view()
        view.flags.writeable = False
        return view
