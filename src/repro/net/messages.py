"""Protocol message types.

All inter-node communication in the protocols is expressed as small,
immutable message dataclasses.  Messages are addressed by node *uid* (the
paper: a node can contact any node whose id it knows, but the recipient may
have been churned out, in which case the message is silently lost).

The walk-soup tokens themselves are NOT represented as individual message
objects -- they live in vectorised NumPy arrays inside
:class:`repro.walks.soup.WalkSoup` for performance -- but their bandwidth is
still charged to the ledger.  Every other protocol interaction (committee
invitations, landmark tree construction, store / lookup requests and
replies) uses these classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "MessageKind",
    "Message",
    "CommitteeInvite",
    "CommitteeRoster",
    "WalkCountReport",
    "LandmarkRecruit",
    "StoreRequest",
    "StoreAck",
    "LookupProbe",
    "LookupHit",
    "ItemTransfer",
    "PieceTransfer",
]


class MessageKind(Enum):
    """Tag identifying each protocol message type (used for dispatch and accounting)."""

    COMMITTEE_INVITE = auto()
    COMMITTEE_ROSTER = auto()
    WALK_COUNT_REPORT = auto()
    LANDMARK_RECRUIT = auto()
    STORE_REQUEST = auto()
    STORE_ACK = auto()
    LOOKUP_PROBE = auto()
    LOOKUP_HIT = auto()
    ITEM_TRANSFER = auto()
    PIECE_TRANSFER = auto()
    GENERIC = auto()


@dataclass(frozen=True)
class Message:
    """Base message: sender, recipient, kind and an arbitrary payload dict.

    ``id_count`` and ``payload_bytes`` describe the message's size for the
    bandwidth ledger; subclasses set sensible defaults.
    """

    sender: int
    recipient: int
    kind: MessageKind = MessageKind.GENERIC
    payload: Dict[str, Any] = field(default_factory=dict)
    id_count: int = 2
    payload_bytes: int = 0


@dataclass(frozen=True)
class CommitteeInvite(Message):
    """Invitation to join a committee (Algorithm 1).

    Carries the full roster of invited member uids so the new members can
    form a clique, plus the item id the committee is responsible for (if
    any) and which generation of the committee this is.
    """

    kind: MessageKind = MessageKind.COMMITTEE_INVITE

    @classmethod
    def create(
        cls,
        sender: int,
        recipient: int,
        roster: Tuple[int, ...],
        committee_id: int,
        generation: int,
        task: str,
        item_id: Optional[int] = None,
    ) -> "CommitteeInvite":
        payload = {
            "roster": tuple(roster),
            "committee_id": committee_id,
            "generation": generation,
            "task": task,
            "item_id": item_id,
        }
        return cls(
            sender=sender,
            recipient=recipient,
            payload=payload,
            id_count=2 + len(roster),
        )


@dataclass(frozen=True)
class CommitteeRoster(Message):
    """Roster broadcast inside a committee clique (membership common knowledge)."""

    kind: MessageKind = MessageKind.COMMITTEE_ROSTER

    @classmethod
    def create(cls, sender: int, recipient: int, roster: Tuple[int, ...], committee_id: int) -> "CommitteeRoster":
        return cls(
            sender=sender,
            recipient=recipient,
            payload={"roster": tuple(roster), "committee_id": committee_id},
            id_count=2 + len(roster),
        )


@dataclass(frozen=True)
class WalkCountReport(Message):
    """Exchange of received-walk counts among committee members (leader election step)."""

    kind: MessageKind = MessageKind.WALK_COUNT_REPORT

    @classmethod
    def create(cls, sender: int, recipient: int, walk_count: int, committee_id: int) -> "WalkCountReport":
        return cls(
            sender=sender,
            recipient=recipient,
            payload={"walk_count": int(walk_count), "committee_id": committee_id},
            id_count=2,
        )


@dataclass(frozen=True)
class LandmarkRecruit(Message):
    """Recruit a sampled node as a landmark-tree child (Algorithm 2).

    Carries the committee roster (so the landmark can answer queries with the
    storage nodes' ids), the item id, the tree depth of the new child, and
    the round at which the landmark role expires.
    """

    kind: MessageKind = MessageKind.LANDMARK_RECRUIT

    @classmethod
    def create(
        cls,
        sender: int,
        recipient: int,
        committee_roster: Tuple[int, ...],
        item_id: int,
        depth: int,
        expires_round: int,
        role: str,
    ) -> "LandmarkRecruit":
        return cls(
            sender=sender,
            recipient=recipient,
            payload={
                "committee_roster": tuple(committee_roster),
                "item_id": item_id,
                "depth": int(depth),
                "expires_round": int(expires_round),
                "role": role,
            },
            id_count=3 + len(committee_roster),
        )


@dataclass(frozen=True)
class StoreRequest(Message):
    """Ask a committee member to store (a copy or an IDA piece of) an item."""

    kind: MessageKind = MessageKind.STORE_REQUEST

    @classmethod
    def create(
        cls,
        sender: int,
        recipient: int,
        item_id: int,
        payload_bytes: int,
        piece_index: Optional[int] = None,
    ) -> "StoreRequest":
        return cls(
            sender=sender,
            recipient=recipient,
            payload={"item_id": item_id, "piece_index": piece_index},
            id_count=3,
            payload_bytes=payload_bytes,
        )


@dataclass(frozen=True)
class StoreAck(Message):
    """Acknowledgement that a committee member stored its copy / piece."""

    kind: MessageKind = MessageKind.STORE_ACK

    @classmethod
    def create(cls, sender: int, recipient: int, item_id: int) -> "StoreAck":
        return cls(sender=sender, recipient=recipient, payload={"item_id": item_id}, id_count=3)


@dataclass(frozen=True)
class LookupProbe(Message):
    """A search landmark asking a sampled node whether it is a storage landmark for an item."""

    kind: MessageKind = MessageKind.LOOKUP_PROBE

    @classmethod
    def create(cls, sender: int, recipient: int, item_id: int, origin: int) -> "LookupProbe":
        return cls(
            sender=sender,
            recipient=recipient,
            payload={"item_id": item_id, "origin": origin},
            id_count=4,
        )


@dataclass(frozen=True)
class LookupHit(Message):
    """Report back to the querying node that a storage landmark / holder was found."""

    kind: MessageKind = MessageKind.LOOKUP_HIT

    @classmethod
    def create(
        cls,
        sender: int,
        recipient: int,
        item_id: int,
        holder_ids: Tuple[int, ...],
    ) -> "LookupHit":
        return cls(
            sender=sender,
            recipient=recipient,
            payload={"item_id": item_id, "holder_ids": tuple(holder_ids)},
            id_count=3 + len(holder_ids),
        )


@dataclass(frozen=True)
class ItemTransfer(Message):
    """Transfer of the full item bytes (replication mode) to a new holder."""

    kind: MessageKind = MessageKind.ITEM_TRANSFER

    @classmethod
    def create(cls, sender: int, recipient: int, item_id: int, size_bytes: int) -> "ItemTransfer":
        return cls(
            sender=sender,
            recipient=recipient,
            payload={"item_id": item_id},
            id_count=3,
            payload_bytes=size_bytes,
        )


@dataclass(frozen=True)
class PieceTransfer(Message):
    """Transfer of a single IDA piece (erasure-coded mode) to a new holder."""

    kind: MessageKind = MessageKind.PIECE_TRANSFER

    @classmethod
    def create(
        cls, sender: int, recipient: int, item_id: int, piece_index: int, size_bytes: int
    ) -> "PieceTransfer":
        return cls(
            sender=sender,
            recipient=recipient,
            payload={"item_id": item_id, "piece_index": piece_index},
            id_count=4,
            payload_bytes=size_bytes,
        )
