"""Expander-property verification for round topologies.

The paper's model requires every per-round graph to be a d-regular,
non-bipartite expander with second-largest eigenvalue (in absolute value)
bounded by a fixed lambda < 1 (Section 2.1).  The union-of-random-matchings
construction in :mod:`repro.net.topology` gives this with high probability;
this module provides the tools to *check* it:

* :func:`spectral_gap` -- exact (dense) or Lanczos (sparse) computation of
  the second-largest absolute eigenvalue of the normalised adjacency matrix.
* :func:`estimate_conductance` -- a cheap sampled edge-expansion estimate
  used when eigen-decomposition is too expensive.
* :func:`is_connected` / :func:`is_bipartite_like` -- structural checks via
  breadth-first search over the neighbour table.

These checks are used in tests and in the optional ``verify_expansion``
mode of the dynamic network; production experiment runs skip them (they are
O(n^2) or O(n d) per round).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.linalg import eigsh

from repro.net.topology import RegularTopology

__all__ = [
    "ExpansionReport",
    "spectral_gap",
    "normalized_adjacency",
    "estimate_conductance",
    "is_connected",
    "verify_topology",
]


def normalized_adjacency(topology: RegularTopology, sparse: bool = True):
    """The transition matrix P = A / d of the round graph.

    With ``sparse=True`` (default) a :class:`scipy.sparse.csr_matrix` is
    returned, otherwise a dense ndarray.  Because the graph is exactly
    d-regular (multigraph), P is symmetric and doubly stochastic.
    """
    n = topology.n_slots
    d = topology.degree
    rows = np.repeat(np.arange(n, dtype=np.int64), d)
    cols = topology.neighbors.reshape(-1).astype(np.int64)
    data = np.full(rows.shape, 1.0 / d)
    mat = csr_matrix((data, (rows, cols)), shape=(n, n))
    if sparse:
        return mat
    return mat.toarray()


def spectral_gap(topology: RegularTopology, method: str = "auto") -> float:
    """Return lambda = max(|mu_2|, |mu_n|) of the normalised adjacency.

    ``1 - lambda`` is the spectral gap.  A graph is a good expander when
    lambda is bounded away from 1; it is connected iff mu_2 < 1 and
    non-bipartite iff mu_n > -1.

    Parameters
    ----------
    topology:
        The round graph.
    method:
        ``"dense"`` uses a full symmetric eigen-decomposition (exact, O(n^3));
        ``"sparse"`` uses Lanczos for the extreme eigenvalues;
        ``"auto"`` picks dense below 600 slots and sparse above.
    """
    n = topology.n_slots
    if method == "auto":
        method = "dense" if n <= 600 else "sparse"
    if method == "dense":
        mat = normalized_adjacency(topology, sparse=False)
        eigenvalues = np.linalg.eigvalsh(mat)
        eigenvalues = np.sort(eigenvalues)
        # Largest is 1 (doubly stochastic, connected whp); lambda is the
        # largest absolute value among the rest.
        second = eigenvalues[-2]
        smallest = eigenvalues[0]
        return float(max(abs(second), abs(smallest)))
    if method == "sparse":
        mat = normalized_adjacency(topology, sparse=True)
        # Three largest algebraic and one smallest algebraic eigenvalue.
        top = eigsh(mat, k=min(3, n - 1), which="LA", return_eigenvectors=False)
        bottom = eigsh(mat, k=1, which="SA", return_eigenvectors=False)
        top = np.sort(top)
        second = top[-2] if len(top) >= 2 else top[-1]
        return float(max(abs(second), abs(bottom[0])))
    raise ValueError(f"unknown method {method!r}")


def is_connected(topology: RegularTopology) -> bool:
    """Breadth-first-search connectivity check over the neighbour table."""
    n = topology.n_slots
    seen = np.zeros(n, dtype=bool)
    frontier = np.array([0], dtype=np.int64)
    seen[0] = True
    while frontier.size:
        nxt = topology.neighbors[frontier].reshape(-1).astype(np.int64)
        nxt = np.unique(nxt)
        nxt = nxt[~seen[nxt]]
        seen[nxt] = True
        frontier = nxt
    return bool(seen.all())


def estimate_conductance(
    topology: RegularTopology,
    rng: np.random.Generator,
    trials: int = 32,
    subset_fraction: float = 0.5,
) -> float:
    """Estimate edge conductance by sampling random vertex subsets.

    For each trial a random subset S of roughly ``subset_fraction * n`` slots
    is drawn and the fraction of S's edge endpoints leaving S is computed;
    the minimum over trials is returned.  This is only an upper bound on the
    true conductance but is a useful, cheap sanity check that the matching
    union is not accidentally clustered.
    """
    n = topology.n_slots
    d = topology.degree
    best = 1.0
    for _ in range(trials):
        size = max(1, min(n - 1, int(round(subset_fraction * n))))
        subset = rng.choice(n, size=size, replace=False)
        mask = np.zeros(n, dtype=bool)
        mask[subset] = True
        # Edges from subset slots to outside.
        neighbor_blocks = topology.neighbors[subset].astype(np.int64)
        crossing = np.count_nonzero(~mask[neighbor_blocks])
        volume = size * d
        best = min(best, crossing / volume)
    return float(best)


@dataclass(frozen=True)
class ExpansionReport:
    """Result of :func:`verify_topology`."""

    n_slots: int
    degree: int
    connected: bool
    lambda_second: Optional[float]
    conductance_estimate: Optional[float]

    @property
    def is_expander(self) -> bool:
        """True when connected and (if computed) lambda is bounded away from 1."""
        if not self.connected:
            return False
        if self.lambda_second is not None:
            return self.lambda_second < 0.999
        return True


def verify_topology(
    topology: RegularTopology,
    rng: Optional[np.random.Generator] = None,
    compute_spectrum: bool = True,
    compute_conductance: bool = False,
) -> ExpansionReport:
    """Run the structural and (optionally) spectral checks on one topology."""
    connected = is_connected(topology)
    lam: Optional[float] = None
    cond: Optional[float] = None
    if compute_spectrum:
        lam = spectral_gap(topology)
    if compute_conductance:
        local_rng = rng if rng is not None else np.random.default_rng(0)
        cond = estimate_conductance(topology, local_rng)
    return ExpansionReport(
        n_slots=topology.n_slots,
        degree=topology.degree,
        connected=connected,
        lambda_second=lam,
        conductance_estimate=cond,
    )
