"""Churn adversaries.

Section 2.1 of the paper: in each round, up to ``O(n / log^{1+delta} n)``
nodes may be replaced by new nodes, and the replacement schedule is chosen by
an **oblivious** adversary -- one that commits to the entire sequence of
graphs (and hence of churn events) before round 0 and cannot observe the
algorithm's random choices.

We model an adversary as an object that, given a round index, returns the
set of *slots* whose occupant is churned out (and immediately replaced by a
fresh node, keeping |V^r| = n).  Oblivious adversaries derive their choices
exclusively from their own committed RNG stream and the round index.  The
:class:`AdaptiveAdversary` deliberately breaks this rule (it may inspect
protocol state through a caller-provided probe) and exists only for the
ablation experiment E12 demonstrating that obliviousness is a necessary
assumption.

The paper's churn bound ``4 n / log^k n`` with ``k = 1 + delta`` (natural
logarithm) is exposed as :func:`paper_churn_limit`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.util.validation import check_nonnegative_int, check_positive_int

__all__ = [
    "paper_churn_limit",
    "ChurnAdversary",
    "NoChurn",
    "UniformRandomChurn",
    "SequentialSweepChurn",
    "BurstChurn",
    "ScheduledChurn",
    "AdaptiveAdversary",
]


def paper_churn_limit(n: int, delta: float = 0.5, constant: float = 4.0) -> int:
    """The paper's per-round churn bound ``constant * n / (ln n)^{1+delta}``.

    Natural logarithm, matching the paper's convention ("we use log to
    represent natural logarithm").  The result is floored to an integer and
    never exceeds ``n // 2`` (replacing more than half the network each round
    is outside any regime the analysis covers).
    """
    n = check_positive_int(n, "n")
    if n < 3:
        return 0
    k = 1.0 + float(delta)
    raw = constant * n / (math.log(n) ** k)
    return int(min(max(raw, 0.0), n // 2))


class ChurnAdversary(ABC):
    """Base class for churn schedules.

    Subclasses implement :meth:`slots_for_round`, returning the slot indices
    replaced at the *start* of the given round.  The returned array must not
    contain duplicates.
    """

    #: True for adversaries that respect the oblivious-adversary assumption.
    oblivious: bool = True

    @abstractmethod
    def slots_for_round(self, round_index: int) -> np.ndarray:
        """Slot indices (int64 array, no duplicates) churned at round start."""

    def describe(self) -> str:
        """Human-readable one-line description used in experiment tables."""
        return type(self).__name__


@dataclass
class NoChurn(ChurnAdversary):
    """An adversary that never churns anyone (static-membership baseline)."""

    def slots_for_round(self, round_index: int) -> np.ndarray:  # noqa: ARG002
        return np.empty(0, dtype=np.int64)

    def describe(self) -> str:
        return "no churn"


class UniformRandomChurn(ChurnAdversary):
    """Replace ``rate`` uniformly random slots every round.

    This is the canonical oblivious adversary used by most experiments:
    the schedule is a pure function of the committed seed.
    """

    def __init__(self, n_slots: int, rate: int, rng: np.random.Generator) -> None:
        self.n_slots = check_positive_int(n_slots, "n_slots")
        self.rate = check_nonnegative_int(rate, "rate")
        if self.rate > self.n_slots:
            raise ValueError("churn rate cannot exceed the number of slots")
        self._rng = rng

    def slots_for_round(self, round_index: int) -> np.ndarray:  # noqa: ARG002
        if self.rate == 0:
            return np.empty(0, dtype=np.int64)
        return self._rng.choice(self.n_slots, size=self.rate, replace=False).astype(np.int64)

    def describe(self) -> str:
        return f"uniform random churn, {self.rate}/round"


class SequentialSweepChurn(ChurnAdversary):
    """Replace slots in a fixed (committed) order, ``rate`` per round.

    After ``n / rate`` rounds every original node has been replaced --
    this mimics the measurement-study observation that ~50% of peers turn
    over within an hour while the population size stays stable, and it is a
    harsher test of data persistence than uniform churn because no slot is
    spared for long.
    """

    def __init__(
        self,
        n_slots: int,
        rate: int,
        rng: np.random.Generator,
        shuffle: bool = True,
    ) -> None:
        self.n_slots = check_positive_int(n_slots, "n_slots")
        self.rate = check_nonnegative_int(rate, "rate")
        order = np.arange(self.n_slots, dtype=np.int64)
        if shuffle:
            rng.shuffle(order)
        self._order = order

    def slots_for_round(self, round_index: int) -> np.ndarray:
        if self.rate == 0:
            return np.empty(0, dtype=np.int64)
        start = (round_index * self.rate) % self.n_slots
        idx = (start + np.arange(self.rate)) % self.n_slots
        return np.unique(self._order[idx])

    def describe(self) -> str:
        return f"sequential sweep churn, {self.rate}/round"


class BurstChurn(ChurnAdversary):
    """Quiet most rounds, then a large burst every ``period`` rounds.

    The per-round *average* matches ``rate``, but the churn arrives in bursts
    of ``rate * period`` replacements (capped at half the network), which
    stresses the committee re-formation and landmark refresh logic.
    """

    def __init__(
        self,
        n_slots: int,
        rate: int,
        period: int,
        rng: np.random.Generator,
    ) -> None:
        self.n_slots = check_positive_int(n_slots, "n_slots")
        self.rate = check_nonnegative_int(rate, "rate")
        self.period = check_positive_int(period, "period")
        self._rng = rng

    def slots_for_round(self, round_index: int) -> np.ndarray:
        if self.rate == 0 or round_index % self.period != 0:
            return np.empty(0, dtype=np.int64)
        burst = min(self.rate * self.period, self.n_slots // 2)
        if burst == 0:
            return np.empty(0, dtype=np.int64)
        return self._rng.choice(self.n_slots, size=burst, replace=False).astype(np.int64)

    def describe(self) -> str:
        return f"burst churn, {self.rate}/round avg every {self.period} rounds"


class ScheduledChurn(ChurnAdversary):
    """An explicit, caller-provided schedule: round -> slot indices.

    Used by tests to construct pathological but oblivious schedules (e.g.
    "churn exactly slots 0..9 in round 5").
    """

    def __init__(self, schedule: dict[int, Sequence[int]], n_slots: int) -> None:
        self.n_slots = check_positive_int(n_slots, "n_slots")
        self._schedule = {
            int(r): np.unique(np.asarray(list(slots), dtype=np.int64)) for r, slots in schedule.items()
        }
        for r, slots in self._schedule.items():
            if slots.size and (slots.min() < 0 or slots.max() >= n_slots):
                raise ValueError(f"schedule for round {r} references invalid slots")

    def slots_for_round(self, round_index: int) -> np.ndarray:
        return self._schedule.get(round_index, np.empty(0, dtype=np.int64)).copy()

    def describe(self) -> str:
        return f"scheduled churn over {len(self._schedule)} rounds"


class AdaptiveAdversary(ChurnAdversary):
    """A *non-oblivious* adversary used only for the ablation experiment E12.

    It receives a ``target_probe`` callback that returns the slots currently
    occupied by protocol-critical nodes (e.g. committee members or storage
    landmarks) and preferentially churns those, topping up with uniformly
    random slots until ``rate`` replacements are reached.

    The paper's guarantees explicitly do *not* cover such an adversary; the
    experiment demonstrates that availability collapses under it, which is
    evidence that the obliviousness assumption is load-bearing rather than
    cosmetic.
    """

    oblivious = False

    def __init__(
        self,
        n_slots: int,
        rate: int,
        rng: np.random.Generator,
        target_probe: Optional[Callable[[], Sequence[int]]] = None,
    ) -> None:
        self.n_slots = check_positive_int(n_slots, "n_slots")
        self.rate = check_nonnegative_int(rate, "rate")
        self._rng = rng
        self._target_probe = target_probe

    def set_target_probe(self, probe: Callable[[], Sequence[int]]) -> None:
        """Install the callback exposing protocol-critical slots."""
        self._target_probe = probe

    def slots_for_round(self, round_index: int) -> np.ndarray:  # noqa: ARG002
        if self.rate == 0:
            return np.empty(0, dtype=np.int64)
        targets: list[int] = []
        if self._target_probe is not None:
            targets = [int(s) for s in self._target_probe() if 0 <= int(s) < self.n_slots]
        chosen = list(dict.fromkeys(targets))[: self.rate]
        if len(chosen) < self.rate:
            remaining = self.rate - len(chosen)
            pool = np.setdiff1d(
                np.arange(self.n_slots, dtype=np.int64), np.asarray(chosen, dtype=np.int64)
            )
            extra = self._rng.choice(pool, size=min(remaining, pool.size), replace=False)
            chosen.extend(int(s) for s in extra)
        return np.asarray(chosen, dtype=np.int64)

    def describe(self) -> str:
        return f"ADAPTIVE (non-oblivious) targeted churn, {self.rate}/round"
