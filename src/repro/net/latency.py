"""Pluggable message-latency models for the event-driven engine.

The lockstep engine delivers every message at the end of the round it was
sent in; the asynchronous engine (:mod:`repro.sim.events`) instead draws a
continuous delay for each message from one of the models below.  Models are
small frozen dataclasses registered by ``kind`` and JSON-round-trippable, so
a latency configuration can ride inside an
:class:`~repro.sim.experiment.ExperimentConfig` and through the result
store/dispatch stack unchanged.

Two query surfaces cover everything the engine needs:

* :meth:`LatencyModel.pair_delays` -- a delay per (source, destination) pair,
  used for soup-token deliveries;
* :meth:`LatencyModel.node_delays` -- a delay per node, used for churn
  arrivals (join propagation) and per-item/per-operation maintenance.

``ZeroLatency`` draws nothing from the generator at all -- this is what makes
the zero-latency asynchronous engine byte-identical to lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Tuple, Type

import numpy as np

__all__ = [
    "LatencyModel",
    "ZeroLatency",
    "UniformLatency",
    "LognormalLatency",
    "RegionMatrixLatency",
    "LATENCY_KINDS",
    "latency_from_json_dict",
    "resolve_latency",
]


_REGISTRY: Dict[str, Type["LatencyModel"]] = {}


def _register(cls: Type["LatencyModel"]) -> Type["LatencyModel"]:
    _REGISTRY[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class LatencyModel:
    """Base class: a distribution over non-negative message delays (in rounds)."""

    kind = "abstract"
    #: True iff every delay is exactly zero and no RNG is consumed.
    is_zero = False

    def pair_delays(
        self, rng: np.random.Generator, src_uids: np.ndarray, dst_uids: np.ndarray
    ) -> np.ndarray:
        """Delays for messages from ``src_uids[i]`` to ``dst_uids[i]``."""
        raise NotImplementedError

    def node_delays(self, rng: np.random.Generator, uids: np.ndarray) -> np.ndarray:
        """Delays attributed to single nodes (joins, maintenance wake-ups)."""
        raise NotImplementedError

    def to_json_dict(self) -> Dict[str, Any]:
        """A plain-JSON description; ``latency_from_json_dict`` inverts it."""
        out: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = [list(row) if isinstance(row, tuple) else row for row in value]
            out[f.name] = value
        return out


@_register
@dataclass(frozen=True)
class ZeroLatency(LatencyModel):
    """Every message arrives in the round it was sent; draws no randomness."""

    kind = "zero"
    is_zero = True

    def pair_delays(self, rng, src_uids, dst_uids):  # noqa: ARG002 - no RNG use
        return np.zeros(len(src_uids), dtype=np.float64)

    def node_delays(self, rng, uids):  # noqa: ARG002 - no RNG use
        return np.zeros(len(uids), dtype=np.float64)


@_register
@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]`` rounds."""

    kind = "uniform"
    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if not (0 <= self.low <= self.high):
            raise ValueError(f"uniform latency requires 0 <= low <= high, got [{self.low}, {self.high}]")

    def pair_delays(self, rng, src_uids, dst_uids):
        return rng.uniform(self.low, self.high, size=len(src_uids))

    def node_delays(self, rng, uids):
        return rng.uniform(self.low, self.high, size=len(uids))


@_register
@dataclass(frozen=True)
class LognormalLatency(LatencyModel):
    """Heavy-tailed delays: ``lognormal(mu, sigma)``, a straggler model."""

    kind = "lognormal"
    mu: float = 0.0
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"lognormal latency requires sigma >= 0, got {self.sigma}")

    def pair_delays(self, rng, src_uids, dst_uids):
        return rng.lognormal(self.mu, self.sigma, size=len(src_uids))

    def node_delays(self, rng, uids):
        return rng.lognormal(self.mu, self.sigma, size=len(uids))


@_register
@dataclass(frozen=True)
class RegionMatrixLatency(LatencyModel):
    """Per-region RTT matrix: node ``u`` lives in region ``u % regions``.

    ``matrix[i][j]`` is the base delay from region ``i`` to region ``j``;
    ``jitter`` adds an independent ``uniform(0, jitter)`` per message.  A
    matrix with a large off-diagonal models a transient partition between
    regions.
    """

    kind = "region"
    regions: int = 2
    matrix: Tuple[Tuple[float, ...], ...] = ((0.0, 1.0), (1.0, 0.0))
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.regions < 1:
            raise ValueError(f"region latency requires regions >= 1, got {self.regions}")
        matrix = tuple(tuple(float(x) for x in row) for row in self.matrix)
        object.__setattr__(self, "matrix", matrix)
        if len(matrix) != self.regions or any(len(row) != self.regions for row in matrix):
            raise ValueError(f"latency matrix must be {self.regions}x{self.regions}")
        if any(x < 0 for row in matrix for x in row):
            raise ValueError("latency matrix entries must be non-negative")
        if self.jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")

    def _base(self, src_regions: np.ndarray, dst_regions: np.ndarray) -> np.ndarray:
        table = np.asarray(self.matrix, dtype=np.float64)
        return table[src_regions, dst_regions]

    def pair_delays(self, rng, src_uids, dst_uids):
        src = np.asarray(src_uids, dtype=np.int64) % self.regions
        dst = np.asarray(dst_uids, dtype=np.int64) % self.regions
        delays = self._base(src, dst)
        if self.jitter > 0:
            delays = delays + rng.uniform(0.0, self.jitter, size=len(delays))
        return delays

    def node_delays(self, rng, uids):
        regions = np.asarray(uids, dtype=np.int64) % self.regions
        delays = self._base(regions, regions)
        if self.jitter > 0:
            delays = delays + rng.uniform(0.0, self.jitter, size=len(delays))
        return delays


LATENCY_KINDS: Tuple[str, ...] = tuple(sorted(_REGISTRY))


def latency_from_json_dict(data: Mapping[str, Any]) -> LatencyModel:
    """Rebuild a latency model from its ``to_json_dict`` form.

    Unknown kinds and unknown keys are rejected so a typo'd sweep axis fails
    loudly instead of silently running at zero latency.
    """
    if not isinstance(data, Mapping):
        raise TypeError(f"latency config must be a mapping, got {type(data).__name__}")
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in _REGISTRY:
        raise ValueError(f"unknown latency kind {kind!r}; expected one of {LATENCY_KINDS}")
    cls = _REGISTRY[kind]
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ValueError(f"unknown latency keys for kind {kind!r}: {unknown}")
    if "matrix" in payload and payload["matrix"] is not None:
        payload["matrix"] = tuple(tuple(float(x) for x in row) for row in payload["matrix"])
    return cls(**payload)


def resolve_latency(spec: "LatencyModel | Mapping[str, Any] | None") -> LatencyModel:
    """Coerce ``None`` / a JSON dict / a model instance into a model instance."""
    if spec is None:
        return ZeroLatency()
    if isinstance(spec, LatencyModel):
        return spec
    if isinstance(spec, Mapping):
        return latency_from_json_dict(spec)
    raise TypeError(f"cannot resolve latency from {type(spec).__name__}")
