"""Zero-perturbation observability: tracing, counters, run telemetry.

The three pieces (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.trace` -- scoped spans streamed as Chrome trace events
  (JSONL, Perfetto-loadable), with a no-op singleton disabled path;
* :mod:`repro.obs.counters` -- cheap named counters and high-water gauges,
  aggregated per trial and merged per cell into ``telemetry/``;
* :mod:`repro.obs.observer` -- the :func:`use_observer` activation context
  bundling both, mirroring ``use_store``/``use_dispatcher``.

The invariant everything here honours: instrumentation never moves a
protocol coin and never changes a byte of a compared artifact.
"""

from repro.obs.counters import NULL_COUNTERS, CounterRegistry, NullCounters, merge_snapshots
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer, active_observer, use_observer
from repro.obs.report import (
    load_run_traces,
    merged_run_telemetry,
    percentile_stats,
    phase_breakdown,
    render_report,
)
from repro.obs.trace import NULL_SPAN, NULL_TRACER, NullTracer, Tracer, load_trace, to_chrome_json

__all__ = [
    "load_run_traces",
    "merged_run_telemetry",
    "percentile_stats",
    "phase_breakdown",
    "render_report",
    "CounterRegistry",
    "NullCounters",
    "NULL_COUNTERS",
    "merge_snapshots",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "active_observer",
    "use_observer",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "load_trace",
    "to_chrome_json",
]
