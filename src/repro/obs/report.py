"""Render the observability data of a run directory as a terminal report.

``repro-experiment report <run-dir>`` assembles three views from artifacts
that all live outside the byte-compared result surface:

* a per-phase wall-time breakdown from the ``telemetry/trace-*.jsonl``
  Chrome-trace files (one per tracing process);
* a per-worker dispatch timeline (a text gantt) from the ``timings/``
  records PR 6 introduced;
* a top-N table of the merged ``telemetry/*.json`` counters.

The module also owns :func:`percentile_stats`, which ``repro-experiment
status`` uses for its p50/p99/max task-time aggregates.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.obs.counters import merge_snapshots
from repro.obs.trace import load_trace

__all__ = [
    "percentile_stats",
    "phase_breakdown",
    "load_run_traces",
    "merged_run_telemetry",
    "render_report",
]


def percentile_stats(values: Sequence[float]) -> Dict[str, float]:
    """count/total/mean/p50/p99/max of a list of seconds (empty -> zeros)."""
    if not values:
        return {"count": 0, "total": 0.0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
    arr = np.asarray(values, dtype=float)
    return {
        "count": int(arr.size),
        "total": float(arr.sum()),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def phase_breakdown(events: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate complete ("X") trace events by span name, largest total first.

    Durations in the trace are microseconds; the returned totals/means are
    seconds.
    """
    totals: Dict[str, List[float]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        totals.setdefault(str(event.get("name", "?")), []).append(float(event.get("dur", 0.0)))
    rows = []
    for name, durs in totals.items():
        total_s = sum(durs) / 1e6
        rows.append(
            {"name": name, "count": len(durs), "total_seconds": total_s, "mean_seconds": total_s / len(durs)}
        )
    rows.sort(key=lambda row: row["total_seconds"], reverse=True)
    return rows


def load_run_traces(store: Any) -> List[Dict[str, Any]]:
    """Every event of every ``telemetry/trace-*.jsonl`` file of a run."""
    telemetry_dir: Path = store.telemetry_dir
    events: List[Dict[str, Any]] = []
    if telemetry_dir.exists():
        for path in sorted(telemetry_dir.glob("trace-*.jsonl")):
            events.extend(load_trace(path))
    return events


def merged_run_telemetry(store: Any) -> Dict[str, Dict[str, float]]:
    """All ``telemetry/*.json`` counter records of a run, merged into one snapshot."""
    return merge_snapshots(store.telemetry_records())


def _gantt_lines(timings: Sequence[Mapping[str, Any]], width: int = 48) -> List[str]:
    """A text gantt of the per-task timing records, grouped by worker.

    Each record carries ``recorded_at`` (wall clock at completion) and
    ``seconds``; the bar spans ``[recorded_at - seconds, recorded_at]`` on an
    axis normalised to the run's observed extent.
    """
    spans = []
    for record in timings:
        seconds = float(record.get("seconds", 0.0))
        end = float(record.get("recorded_at", 0.0))
        spans.append((str(record.get("worker", "?")), str(record.get("task", "?")), end - seconds, end, seconds))
    if not spans:
        return []
    t0 = min(start for _, _, start, _, _ in spans)
    t1 = max(end for _, _, _, end, _ in spans)
    extent = max(t1 - t0, 1e-9)
    lines = []
    by_worker: Dict[str, List[tuple]] = {}
    for span in spans:
        by_worker.setdefault(span[0], []).append(span)
    for worker in sorted(by_worker):
        lines.append(f"  worker {worker}:")
        for _, task, start, end, seconds in sorted(by_worker[worker], key=lambda s: s[2]):
            lead = int((start - t0) / extent * width)
            bar = max(1, int((end - start) / extent * width))
            lines.append(f"    |{' ' * lead}{'#' * bar}{' ' * (width - lead - bar)}| {task} ({seconds:.2f}s)")
    return lines


def render_report(store: Any, top: int = 20, gantt_width: int = 48) -> str:
    """The full textual report of one run directory."""
    lines: List[str] = [f"observability report: {store.root}"]

    events = load_run_traces(store)
    phases = phase_breakdown(events)
    if phases:
        lines.append("")
        lines.append(f"phase wall-time breakdown ({len(events)} trace events):")
        name_width = max(len(row["name"]) for row in phases[:top])
        for row in phases[:top]:
            lines.append(
                f"  {row['name'].ljust(name_width)}  {row['total_seconds']:9.3f}s total"
                f"  {row['count']:7d} spans  {row['mean_seconds'] * 1e3:9.3f} ms mean"
            )
    else:
        lines.append("no trace events (run with --trace to record spans)")

    timings = store.task_timings()
    if timings:
        stats = percentile_stats([float(t.get("seconds", 0.0)) for t in timings])
        lines.append("")
        lines.append(
            f"dispatch timeline ({stats['count']} tasks, {stats['total']:.1f}s compute, "
            f"p50 {stats['p50']:.2f}s, p99 {stats['p99']:.2f}s, max {stats['max']:.2f}s):"
        )
        lines.extend(_gantt_lines(timings, width=gantt_width))

    snapshot = merged_run_telemetry(store)
    counters = sorted(snapshot["counters"].items(), key=lambda kv: kv[1], reverse=True)
    maxima = sorted(snapshot["maxima"].items())
    if counters or maxima:
        lines.append("")
        lines.append(f"top counters ({len(counters)} total):")
        name_width = max((len(name) for name, _ in counters[:top] + maxima), default=0)
        for name, value in counters[:top]:
            lines.append(f"  {name.ljust(name_width)}  {value:14,.0f}")
        for name, value in maxima:
            lines.append(f"  {name.ljust(name_width)}  {value:14,.0f}  (high-water)")
    elif not phases and not timings:
        lines.append("no telemetry records (run with --telemetry to record counters)")
    return "\n".join(lines)
