"""Cheap named counters and high-water gauges.

A :class:`CounterRegistry` is two plain dicts: monotonically summed
``counters`` (messages by type, soup tokens delivered, sampler rows
ingested/expired, committee refreshes planned vs executed, lease steals,
spill bytes, ...) and ``maxima`` gauges that keep the largest value observed
(event-queue depth high-water marks).  Increments are dict operations -- no
locks, no formatting -- so they are safe to leave on hot paths behind the
observer's ``telemetry`` flag.

Snapshots are plain ``{"counters": {...}, "maxima": {...}}`` dicts, which is
also the merge unit: trials snapshot their private registry, cells merge
their trials' snapshots (:func:`merge_snapshots`), and the run directory
persists the merged result under ``telemetry/`` -- outside the byte-compared
artifact surface, exactly like ``timings/``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional

__all__ = [
    "CounterRegistry",
    "NullCounters",
    "NULL_COUNTERS",
    "merge_snapshots",
]

#: The snapshot/merge unit: {"counters": {name: total}, "maxima": {name: max}}.
Snapshot = Dict[str, Dict[str, float]]


class CounterRegistry:
    """Named summed counters plus high-water gauges."""

    __slots__ = ("counters", "maxima")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.maxima: Dict[str, float] = {}

    def incr(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge_max(self, name: str, value: float) -> None:
        """Keep the largest ``value`` ever observed under ``name``."""
        current = self.maxima.get(name)
        if current is None or value > current:
            self.maxima[name] = value

    def snapshot(self) -> Snapshot:
        """A plain-data copy of the current state."""
        return {"counters": dict(self.counters), "maxima": dict(self.maxima)}

    def merge_snapshot(self, snapshot: Optional[Mapping[str, Mapping[str, float]]]) -> None:
        """Fold a snapshot into this registry (counters sum, maxima max)."""
        if not snapshot:
            return
        for name, value in (snapshot.get("counters") or {}).items():
            self.incr(name, value)
        for name, value in (snapshot.get("maxima") or {}).items():
            self.gauge_max(name, value)

    def clear(self) -> None:
        """Drop every counter and gauge."""
        self.counters.clear()
        self.maxima.clear()

    def __bool__(self) -> bool:
        return bool(self.counters or self.maxima)


class NullCounters:
    """The disabled registry: increments vanish, snapshots are empty."""

    __slots__ = ()

    def incr(self, name: str, value: float = 1) -> None:
        return None

    def gauge_max(self, name: str, value: float) -> None:
        return None

    def snapshot(self) -> Snapshot:
        return {"counters": {}, "maxima": {}}

    def merge_snapshot(self, snapshot: Any) -> None:
        return None

    def clear(self) -> None:
        return None

    def __bool__(self) -> bool:
        return False


#: The one disabled registry instance.
NULL_COUNTERS = NullCounters()


def merge_snapshots(snapshots: Iterable[Optional[Mapping[str, Mapping[str, float]]]]) -> Snapshot:
    """Merge many snapshots (``None`` entries skipped): counters sum, maxima max."""
    merged = CounterRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()
