"""The observer: one handle bundling a tracer and a counter registry.

Activation mirrors the repo's ``use_store``/``use_dispatcher`` pattern:

    observer = Observer(tracer=Tracer(path), telemetry=True)
    with use_observer(observer):
        result = spec.run(config)          # everything inside is observed
    observer.close()

:func:`active_observer` never returns ``None`` -- with nothing installed it
returns the module-level :data:`NULL_OBSERVER`, whose every operation is a
no-op, so instrumented code (`P2PStorageSystem.run_round`, the event drain,
`TrialRunner`, `DispatchWorker`) needs no conditionals beyond an optional
``if obs.enabled`` fast-path guard.  ContextVars propagate into fork-started
pool workers, so trials observed in a parallel run stream spans into the
same (O_APPEND) trace file as the parent.

The zero-perturbation contract: an observer never draws from a protocol or
adversary RNG stream and never writes inside the byte-compared artifact
surface (cells, chunks, ``result.json``).  Spans and counters only read
wall-clocks and bump private dicts; telemetry lands under ``telemetry/``.
``tests/test_obs.py`` enforces this with twin-run oracles over E3-E6 and an
events-engine experiment.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Optional, Union

from repro.obs.counters import NULL_COUNTERS, CounterRegistry, NullCounters
from repro.obs.trace import NULL_SPAN, NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "use_observer",
    "active_observer",
]


class Observer:
    """An enabled observer: spans go to ``tracer``, counts to ``counters``.

    Parameters
    ----------
    tracer:
        A :class:`~repro.obs.trace.Tracer`, or ``None`` for counting-only
        observation (spans become no-ops).
    telemetry:
        When True, :meth:`count`/:meth:`gauge_max` record into a live
        :class:`~repro.obs.counters.CounterRegistry`; when False they are
        no-ops and only tracing is active.
    """

    enabled = True

    def __init__(self, tracer: Optional[Tracer] = None, telemetry: bool = False) -> None:
        self.tracer: Union[Tracer, NullTracer] = NULL_TRACER if tracer is None else tracer
        self.telemetry = bool(telemetry)
        self.counters: Union[CounterRegistry, NullCounters] = (
            CounterRegistry() if self.telemetry else NULL_COUNTERS
        )

    # ------------------------------------------------------------------ recording
    def span(self, name: str, **args: Any):
        """A ``with``-able span on the tracer (no-op when tracing is off)."""
        return self.tracer.span(name, **args)

    def count(self, name: str, value: float = 1) -> None:
        """Bump a summed counter (no-op unless ``telemetry``)."""
        self.counters.incr(name, value)

    def gauge_max(self, name: str, value: float) -> None:
        """Record a high-water gauge (no-op unless ``telemetry``)."""
        self.counters.gauge_max(name, value)

    @contextmanager
    def trial_counters(self) -> Iterator[Union[CounterRegistry, NullCounters]]:
        """Scope counters to one trial: a fresh registry is swapped in, and on
        exit its totals are folded into the surrounding (run-level) registry.

        The yielded registry's :meth:`~repro.obs.counters.CounterRegistry.
        snapshot` is what :class:`~repro.sim.runner.TrialRunner` ships back
        across the process boundary for per-cell aggregation.
        """
        if not self.telemetry:
            yield NULL_COUNTERS
            return
        outer = self.counters
        scoped = CounterRegistry()
        self.counters = scoped
        try:
            yield scoped
        finally:
            self.counters = outer
            outer.merge_snapshot(scoped.snapshot())

    def close(self) -> None:
        """Flush and close the tracer (counters need no teardown)."""
        self.tracer.close()


class NullObserver:
    """The disabled observer: every operation is a no-op, nothing allocates."""

    enabled = False
    telemetry = False
    tracer = NULL_TRACER
    counters = NULL_COUNTERS

    def span(self, name: str, **args: Any):
        return NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        return None

    def gauge_max(self, name: str, value: float) -> None:
        return None

    @contextmanager
    def trial_counters(self) -> Iterator[NullCounters]:
        yield NULL_COUNTERS

    def close(self) -> None:
        return None


#: The one disabled observer instance; what :func:`active_observer` returns
#: when nothing is installed, and the default ``obs`` of hand-built
#: :class:`~repro.core.context.ProtocolContext` fixtures.
NULL_OBSERVER = NullObserver()

_ACTIVE_OBSERVER: ContextVar[Optional[Observer]] = ContextVar("repro_active_observer", default=None)


@contextmanager
def use_observer(observer: Optional[Observer]) -> Iterator[Optional[Observer]]:
    """Make ``observer`` active for the enclosed code (None = no-op).

    Mirrors :func:`repro.sim.store.use_store`: systems built inside the
    context (including in forked pool workers) pick the observer up
    automatically, so experiment bodies need no observability plumbing.
    """
    token = _ACTIVE_OBSERVER.set(observer)
    try:
        yield observer
    finally:
        _ACTIVE_OBSERVER.reset(token)


def active_observer() -> Union[Observer, NullObserver]:
    """The observer installed by the innermost :func:`use_observer`, else :data:`NULL_OBSERVER`."""
    observer = _ACTIVE_OBSERVER.get()
    return NULL_OBSERVER if observer is None else observer
