"""Scoped tracing with a near-zero-cost disabled path.

:class:`Tracer` emits *complete* ("ph": "X") Chrome trace events -- one JSON
object per line -- to a JSONL file.  Each line is an independent, valid JSON
document, and lines are written with a single ``os.write`` on an
``O_APPEND`` descriptor, so any number of processes (a forked trial pool,
several dispatch workers) can stream into the same file without tearing a
line.  Timestamps come from ``time.perf_counter_ns`` (CLOCK_MONOTONIC on
Linux), which is comparable across processes of one host, so the per-process
streams merge into one consistent timeline.

The disabled path is the module-level :data:`NULL_TRACER`: its ``span`` is a
plain attribute lookup plus a method call returning the shared
:data:`NULL_SPAN` singleton -- no span object is allocated and nothing is
ever formatted or written.  This is what lets the instrumentation live
permanently inside the protocol round loop without perturbing benchmarks
(see ``tests/test_obs.py`` for the <2 % overhead proof on the E5 quick cell).

Use :func:`load_trace` to read a trace back and :func:`to_chrome_json` to
wrap the events into the ``{"traceEvents": [...]}`` document that Perfetto
and ``chrome://tracing`` load directly.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Union

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "load_trace",
    "to_chrome_json",
]


class _NullSpan:
    """Shared no-op context manager returned by every disabled ``span`` call."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


#: The one no-op span instance; never allocate another.
NULL_SPAN = _NullSpan()


class _Span:
    """A live span: records its start on ``__enter__``, emits on ``__exit__``."""

    __slots__ = ("_tracer", "name", "args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start_ns = 0

    def __enter__(self) -> "_Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._emit_complete(self.name, self._start_ns, time.perf_counter_ns(), self.args)


class Tracer:
    """Streams Chrome trace events to a JSONL file.

    Parameters
    ----------
    path:
        Target JSONL file.  Opened with ``O_APPEND`` so concurrent writers
        (forked pool workers inherit the descriptor; separate worker
        processes may open the same path) interleave whole lines, never
        fragments.
    """

    enabled = True

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        # perf_counter_ns is CLOCK_MONOTONIC: one epoch per tracer, inherited
        # by forked children, keeps every process on the same time axis.
        self._epoch_ns = time.perf_counter_ns()

    def span(self, name: str, **args: Any) -> _Span:
        """A ``with``-able span; emits one complete ("X") event on exit."""
        return _Span(self, name, args)

    def instant(self, name: str, **args: Any) -> None:
        """Emit an instant ("i") event at the current time."""
        self._write(
            {
                "name": name,
                "ph": "i",
                "ts": (time.perf_counter_ns() - self._epoch_ns) / 1000.0,
                "s": "p",
                "pid": os.getpid(),
                "tid": threading.get_ident() & 0xFFFFFFFF,
                "args": args,
            }
        )

    def _emit_complete(self, name: str, start_ns: int, end_ns: int, args: Dict[str, Any]) -> None:
        event: Dict[str, Any] = {
            "name": name,
            "ph": "X",
            "ts": (start_ns - self._epoch_ns) / 1000.0,
            "dur": (end_ns - start_ns) / 1000.0,
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
        }
        if args:
            event["args"] = args
        self._write(event)

    def _write(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, separators=(",", ":")) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        """Close the underlying descriptor (idempotent)."""
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except OSError:
            pass


class NullTracer:
    """The disabled tracer: every operation is a no-op, nothing allocates."""

    enabled = False

    def span(self, name: str, **args: Any) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, **args: Any) -> None:
        return None

    def close(self) -> None:
        return None


#: The one disabled tracer instance.
NULL_TRACER = NullTracer()


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a trace JSONL file back into a list of event dicts.

    Every non-blank line must be a valid JSON object; a torn line would mean
    the O_APPEND whole-line write contract was violated, so it raises rather
    than being skipped silently.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def to_chrome_json(events: List[Dict[str, Any]]) -> str:
    """Wrap events into the ``{"traceEvents": [...]}`` document Perfetto loads."""
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
