"""E10 -- Erasure coding cuts stored bytes to a constant-factor overhead (Section 4.4).

Replication stores ``committee_size * |I|`` bytes per item; Rabin IDA stores
``L * |I| / K`` bytes, a constant-factor blow-up.  The committee handover is
the risky part: the leader must gather K surviving pieces, reconstruct, and
re-disperse.  We compare replication and erasure modes under the same churn:
stored bytes per item, availability over the horizon, handover counts and
reconstruction failures, over a sweep of item sizes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import mean_ci
from repro.analysis.tables import ResultTable
from repro.core.params import ProtocolParameters
from repro.experiments.common import run_storage_trial
from repro.experiments.spec import register_experiment
from repro.sim.experiment import ExperimentConfig
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import GridSpec, Sweep

EXPERIMENT_ID = "E10"
TITLE = "Erasure-coded storage: constant-factor space overhead with the same availability"
CLAIM = (
    "Applying IDA, each committee member stores a piece of size |I|/((h-2) log n); any (h-2) log n pieces "
    "reconstruct the item, reducing total storage to a constant-factor overhead (Section 4.4)."
)

ITEM_SIZES = (256, 1024, 4096)

#: Default sweep grid: item size x storage mode (run(item_sizes=...) can override).
GRID = GridSpec.product({"item_size": ITEM_SIZES, "storage_mode": ("replicate", "erasure")})


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=256, seeds=(0, 1), measure_rounds=40, items=2, workers=workers)


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=1024, seeds=(0, 1, 2), measure_rounds=120, items=3, workers=workers)


def _trial(config: ExperimentConfig, seed: int) -> Dict[str, float]:
    payload = run_storage_trial(config, seed)
    system = payload["system"]
    item_ids = payload["item_ids"]
    stored = [system.storage.stored_bytes(i) for i in item_ids]
    available = [system.storage.is_available(i) for i in item_ids]
    readable = [system.storage.read(i) is not None for i in item_ids]
    handovers = [system.storage.items[i].handover_count for i in item_ids]
    failures = [system.storage.items[i].reconstruction_failures for i in item_ids]
    return {
        "stored_bytes": float(np.mean(stored)),
        "availability": float(np.mean(available)),
        "readable": float(np.mean(readable)),
        "handovers": float(np.mean(handovers)),
        "reconstruction_failures": float(np.sum(failures)),
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
    grid=GRID,
)
def run(config: Optional[ExperimentConfig] = None, item_sizes=ITEM_SIZES) -> ExperimentResult:
    """Run E10 and return its result tables."""
    base = quick_config() if config is None else config
    params = ProtocolParameters.for_network(base.n, delta=base.delta)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=base,
        config_summary={
            "item_sizes": list(item_sizes),
            "L": params.erasure_total_pieces,
            "K": params.erasure_required_pieces,
        },
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: replication vs IDA after {base.measure_rounds} rounds (n={base.n})",
        columns=[
            "item_size_bytes",
            "mode",
            "stored_bytes_per_item",
            "overhead_factor",
            "availability",
            "readable_fraction",
            "handovers",
            "reconstruction_failures",
        ],
    )
    with timed_experiment(result):
        grid = GridSpec.product(
            {"item_size": tuple(item_sizes), "storage_mode": ("replicate", "erasure")}
        )
        for cell in Sweep(base, grid, _trial).run():
            overrides = cell.cell.override_dict()
            item_size, mode = overrides["item_size"], overrides["storage_mode"]
            trials = cell.trials
            stored = mean_ci([t.payload["stored_bytes"] for t in trials])
            table.add_row(
                item_size_bytes=item_size,
                mode=mode,
                stored_bytes_per_item=stored.mean,
                overhead_factor=stored.mean / item_size,
                availability=mean_ci([t.payload["availability"] for t in trials]).mean,
                readable_fraction=mean_ci([t.payload["readable"] for t in trials]).mean,
                handovers=mean_ci([t.payload["handovers"] for t in trials]).mean,
                reconstruction_failures=sum(t.payload["reconstruction_failures"] for t in trials),
            )
        table.add_note(
            f"Replication stores ~committee_size={params.committee_size} copies; IDA stores L/K = "
            f"{params.erasure_total_pieces}/{params.erasure_required_pieces} = "
            f"{params.erasure_total_pieces / params.erasure_required_pieces:.2f}x the item size."
        )
        result.add_table(table)
        rep_rows = [r for r in table.rows if r["mode"] == "replicate"]
        ida_rows = [r for r in table.rows if r["mode"] == "erasure"]
        if rep_rows and ida_rows:
            ratio = np.mean([r["overhead_factor"] for r in rep_rows]) / max(
                1e-9, np.mean([r["overhead_factor"] for r in ida_rows])
            )
            result.add_finding(
                f"IDA reduces stored bytes by ~{ratio:.1f}x relative to replication while keeping availability "
                f"within {abs(np.mean([r['availability'] for r in rep_rows]) - np.mean([r['availability'] for r in ida_rows])):.2f} "
                "of the replicated scheme."
            )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
