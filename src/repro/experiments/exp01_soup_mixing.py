"""E1 -- Soup Theorem: near-uniform walk destinations under churn (Theorem 1, Lemma 3).

Every node injects a cohort of walks in round 0; after one walk length
(~2 tau rounds) the surviving walks are delivered.  The theorem predicts that
for a Core of n - o(n) nodes the per-pair hit probability lies in
[1/17n, 3/2n]; empirically we measure (i) the total-variation distance of the
aggregate destination distribution from uniform, (ii) the max/uniform ratio,
and (iii) the fraction of nodes receiving at least one sample, across churn
rates from zero up to the paper's limit.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import mean_ci
from repro.analysis.tables import ResultTable
from repro.analysis.theory import PaperBounds
from repro.sim.experiment import ExperimentConfig
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import GridSpec, Sweep
from repro.experiments.common import run_soup_only
from repro.experiments.spec import register_experiment
from repro.walks.mixing import destination_distribution, total_variation_from_uniform

EXPERIMENT_ID = "E1"
TITLE = "Soup Theorem: near-uniform walk destinations under churn"
CLAIM = (
    "For a Core of n - o(n) nodes, a walk started at any Core node ends at any other Core node "
    "after 2*tau rounds with probability in [1/17n, 3/2n] (Theorem 1)."
)

#: Churn expressed as fractions of the paper's limit 4n/(ln n)^{1+delta}.
CHURN_FRACTIONS = (0.0, 0.02, 0.05, 0.1)

#: Default sweep grid: one cell per churn fraction, paired with its adversary kind.
GRID = GridSpec.from_cells(
    [
        {"churn_fraction": fraction, "adversary": "none" if fraction == 0 else "uniform"}
        for fraction in CHURN_FRACTIONS
    ]
)


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=256, seeds=(0, 1), measure_rounds=0, workers=workers)


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=2048, seeds=(0, 1, 2, 3), measure_rounds=0, workers=workers)


def _trial(config: ExperimentConfig, seed: int, walks_per_source: int = 8) -> Dict[str, float]:
    run_result = run_soup_only(config, seed, walks_per_source=walks_per_source)
    counts = destination_distribution(run_result.delivery)
    report = total_variation_from_uniform(counts, run_result.population)
    return {
        "tv": report.tv_distance,
        "max_over_uniform": report.max_over_uniform,
        "coverage": report.coverage,
        "churn": run_result.churn_rate,
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
    grid=GRID,
)
def run(config: Optional[ExperimentConfig] = None, walks_per_source: int = 8) -> ExperimentResult:
    """Run E1 and return its result tables."""
    config = quick_config() if config is None else config
    bounds = PaperBounds(config.n, config.delta)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=config,
        config_summary={"walks_per_source": walks_per_source},
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: destination uniformity vs churn (n={config.n})",
        columns=[
            "churn_fraction",
            "churn_per_round",
            "tv_distance",
            "max_over_uniform",
            "coverage",
            "paper_max_over_uniform",
        ],
    )
    with timed_experiment(result):
        sweep = Sweep(config, GRID, partial(_trial, walks_per_source=walks_per_source)).run()
        for fraction, cell in zip(CHURN_FRACTIONS, sweep):
            trials = cell.trials
            tv = mean_ci([t.payload["tv"] for t in trials])
            ratio = mean_ci([t.payload["max_over_uniform"] for t in trials])
            coverage = mean_ci([t.payload["coverage"] for t in trials])
            table.add_row(
                churn_fraction=fraction,
                churn_per_round=trials[0].payload["churn"],
                tv_distance=tv.mean,
                max_over_uniform=ratio.mean,
                coverage=coverage.mean,
                paper_max_over_uniform=1.5,
            )
        table.add_note(
            "paper_max_over_uniform is the Soup Theorem's upper bound 3/2n expressed as a multiple of 1/n; "
            "tv_distance includes sampling noise of order sqrt(n / #delivered walks)."
        )
        result.add_table(table)
        low_churn_tv = table.rows[0]["tv_distance"]
        high_churn_tv = table.rows[-1]["tv_distance"]
        result.add_finding(
            f"TV distance from uniform moves from {low_churn_tv:.3f} (no churn) to {high_churn_tv:.3f} "
            f"at {CHURN_FRACTIONS[-1]:.0%} of the paper's churn limit; coverage stays near "
            f"{table.rows[0]['coverage']:.2f}, consistent with near-uniform sampling over a large Core."
        )
        result.add_finding(
            f"Paper bound reference: hit probability window [{bounds.hit_probability_window()[0]:.2e}, "
            f"{bounds.hit_probability_window()[1]:.2e}] per pair."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
