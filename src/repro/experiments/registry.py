"""Experiment registry and command-line entry point.

Maps experiment ids (``E1`` .. ``E12``) to their modules and provides:

* :func:`get_experiment` / :func:`all_experiments` for programmatic access;
* :func:`run_experiment` which runs one experiment in quick or full mode;
* :func:`main`, installed as the ``repro-experiment`` console script::

      repro-experiment E5            # quick configuration
      repro-experiment E5 --full     # EXPERIMENTS.md configuration
      repro-experiment all           # every experiment, quick mode
      repro-experiment list          # what exists
"""

from __future__ import annotations

import argparse
import sys
from types import ModuleType
from typing import Dict, List, Optional

from repro.experiments import (
    exp01_soup_mixing,
    exp02_walk_survival,
    exp03_committee,
    exp04_landmarks,
    exp05_storage_availability,
    exp06_retrieval,
    exp07_churn_sweep,
    exp08_message_complexity,
    exp09_baselines,
    exp10_erasure,
    exp11_reversibility,
    exp12_adaptive_ablation,
)
from repro.sim.results import ExperimentResult

__all__ = ["EXPERIMENTS", "get_experiment", "all_experiments", "run_experiment", "main"]

EXPERIMENTS: Dict[str, ModuleType] = {
    "E1": exp01_soup_mixing,
    "E2": exp02_walk_survival,
    "E3": exp03_committee,
    "E4": exp04_landmarks,
    "E5": exp05_storage_availability,
    "E6": exp06_retrieval,
    "E7": exp07_churn_sweep,
    "E8": exp08_message_complexity,
    "E9": exp09_baselines,
    "E10": exp10_erasure,
    "E11": exp11_reversibility,
    "E12": exp12_adaptive_ablation,
}


def get_experiment(experiment_id: str) -> ModuleType:
    """Return the module implementing ``experiment_id`` (case-insensitive)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key]


def all_experiments() -> List[str]:
    """All experiment ids in numeric order."""
    return sorted(EXPERIMENTS, key=lambda e: int(e[1:]))


def run_experiment(experiment_id: str, full: bool = False, workers: int = 1) -> ExperimentResult:
    """Run one experiment in quick (default) or full mode on ``workers`` processes."""
    module = get_experiment(experiment_id)
    config = module.full_config(workers=workers) if full else module.quick_config(workers=workers)
    return module.run(config)


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point (``repro-experiment``)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Run the reproduction experiments for 'Storage and Search in Dynamic P2P Networks'.",
    )
    parser.add_argument("experiment", help="experiment id (E1..E12), 'all', or 'list'")
    parser.add_argument("--full", action="store_true", help="use the full (slow) configuration")
    parser.add_argument("--markdown", action="store_true", help="emit Markdown instead of plain text")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the Monte-Carlo trials (seed-deterministic; 1 = sequential)",
    )
    args = parser.parse_args(argv)

    if args.experiment.lower() == "list":
        for experiment_id in all_experiments():
            module = EXPERIMENTS[experiment_id]
            print(f"{experiment_id}: {module.TITLE}")
        return 0

    targets = all_experiments() if args.experiment.lower() == "all" else [args.experiment]
    for experiment_id in targets:
        result = run_experiment(experiment_id, full=args.full, workers=args.workers)
        print(result.to_markdown() if args.markdown else result.to_text())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
