"""Experiment registry façade and command-line entry point.

Experiments register themselves via :func:`repro.experiments.spec.
register_experiment`; importing :mod:`repro.experiments` pulls in every
``expNN_*`` module, which populates the registry as a side effect of the
decorators.  This module exposes the registry programmatically
(:func:`get_experiment` / :func:`all_experiments` / :func:`run_experiment`,
all operating on :class:`~repro.experiments.spec.ExperimentSpec` objects) and
installs :func:`main` as the ``repro-experiment`` console script::

    repro-experiment run E5                       # quick configuration
    repro-experiment run E5 --full --workers 4    # EXPERIMENTS.md configuration
    repro-experiment run E5 --set n=1024 --set adversary=burst --seeds 0..9
    repro-experiment run E5 --json-out results/   # persist per-cell artifacts
    repro-experiment resume results/E5-<stamp>    # finish an interrupted run
    repro-experiment all                          # every experiment + summary footer
    repro-experiment list                         # ids, titles and paper claims

    repro-experiment dispatch E7 --json-out results/   # create a shared run dir, run nothing
    repro-experiment worker results/E7-<stamp>         # join as a worker (run N of these)
    repro-experiment status results/E7-<stamp>         # progress, claims, worker heartbeats

    repro-experiment E5 --full                    # legacy positional form (shimmed)

``dispatch``/``worker``/``status`` are the distributed execution surface
(see :mod:`repro.sim.dispatch` and docs/DISTRIBUTED.md): ``dispatch`` only
creates the run directory and manifest; any number of ``worker`` processes
-- started on one host or on several hosts sharing the directory -- then
claim and compute the missing cells cooperatively, each writing the same
final ``result.json`` a single-process ``run`` would have produced.

``--json-out`` creates a run directory managed by :class:`~repro.sim.store.
ResultStore`: a ``manifest.json`` recording the invocation, one JSON artifact
per completed sweep cell, and the final ``result.json`` (an
:class:`~repro.sim.results.ExperimentResult` document).  ``resume`` re-invokes
the same experiment against that directory; completed cells are loaded from
disk and only the missing ones are computed.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import repro.experiments  # noqa: F401  - imports every expNN module, populating the registry
from repro.experiments.spec import REGISTRY, ExperimentSpec, registered_ids
from repro.obs.observer import Observer, use_observer
from repro.obs.report import percentile_stats, render_report
from repro.obs.trace import Tracer
from repro.sim.backends import BACKENDS, make_backend
from repro.sim.dispatch import (
    DEFAULT_CHUNK_SEEDS,
    DEFAULT_CLAIM_BATCH,
    DEFAULT_MIN_TRIALS_PER_TASK,
    DispatchDrained,
    DispatchWorker,
    use_dispatcher,
)
from repro.sim.results import ExperimentResult
from repro.sim.store import ResultStore, use_store

__all__ = [
    "EXPERIMENTS",
    "get_experiment",
    "all_experiments",
    "run_experiment",
    "parse_seed_spec",
    "parse_set_overrides",
    "main",
]

#: The registry, keyed by experiment id.  Kept under the historical name so
#: ``registry.EXPERIMENTS["E5"]`` keeps working; values are now
#: :class:`ExperimentSpec` objects rather than bare modules.
EXPERIMENTS: Dict[str, ExperimentSpec] = REGISTRY

_SUBCOMMANDS = ("run", "resume", "list", "all", "dispatch", "worker", "status", "report")
_LEGACY_ID = re.compile(r"^[eE]\d+$")


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Return the :class:`ExperimentSpec` for ``experiment_id`` (case-insensitive)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key]


def all_experiments() -> List[str]:
    """All experiment ids in numeric order."""
    return registered_ids()


def run_experiment(
    experiment_id: str,
    full: bool = False,
    workers: int = 1,
    overrides: Optional[Dict[str, Any]] = None,
    seeds: Optional[Sequence[int]] = None,
    store: Optional[ResultStore] = None,
) -> ExperimentResult:
    """Run one experiment through its spec and return its result.

    ``overrides`` are :class:`~repro.sim.experiment.ExperimentConfig` field
    replacements applied on top of the quick/full preset; ``seeds`` replaces
    the preset's seed list.  When ``store`` is given the run is persisted
    cell-by-cell (and resumed from whatever the store already holds), and the
    final report is written as ``result.json``.
    """
    spec = get_experiment(experiment_id)
    config = spec.config(full=full, workers=workers)
    if overrides:
        config = config.with_overrides(**overrides)
    if seeds is not None:
        config = config.with_overrides(seeds=tuple(int(seed) for seed in seeds))
    observer = _build_observer(config, store)
    try:
        with use_store(store), use_observer(observer):
            result = spec.run(config)
    finally:
        if observer is not None:
            observer.close()
    if observer is not None and observer.telemetry and store is not None:
        # The run-level registry holds whatever was counted in this process
        # outside any trial scope (e.g. dispatch.lease_steals).
        store.save_telemetry(
            f"run-{os.getpid()}", observer.counters.snapshot(), experiment=experiment_id
        )
    if store is not None:
        store.save_result(result)
    return result


def _build_observer(config: Any, store: Optional[ResultStore]) -> Optional[Observer]:
    """An :class:`~repro.obs.observer.Observer` for ``config.observe`` (None when off).

    Trace streams land under the store's ``telemetry/`` directory (one
    ``trace-<pid>.jsonl`` per process -- forked pool workers append to the
    parent's file via O_APPEND) or, without a store, next to the caller as
    ``trace-<name>-<pid>.jsonl``.
    """
    observe = getattr(config, "observe", None) or {}
    trace = bool(observe.get("trace"))
    telemetry = bool(observe.get("telemetry"))
    if not trace and not telemetry:
        return None
    tracer = None
    if trace:
        if store is not None:
            store.telemetry_dir.mkdir(parents=True, exist_ok=True)
            trace_path = store.telemetry_dir / f"trace-{os.getpid()}.jsonl"
        else:
            trace_path = Path(f"trace-{config.name}-{os.getpid()}.jsonl")
        tracer = Tracer(trace_path)
    return Observer(tracer=tracer, telemetry=telemetry)


# ---------------------------------------------------------------------- CLI parsing
def parse_seed_spec(spec: str) -> List[int]:
    """Parse a ``--seeds`` argument: ``"0..9"`` (inclusive range) or ``"0,3,5"``."""
    text = spec.strip()
    if ".." in text:
        lo_text, _, hi_text = text.partition("..")
        lo, hi = int(lo_text), int(hi_text)
        if hi < lo:
            raise ValueError(f"empty seed range {spec!r}")
        return list(range(lo, hi + 1))
    return [int(part) for part in text.split(",") if part.strip() != ""]


def parse_set_overrides(assignments: Sequence[str]) -> Dict[str, Any]:
    """Parse repeated ``--set key=value`` flags into a config-override dict.

    Values are decoded as JSON when possible (``1024`` -> int, ``0.1`` ->
    float, ``true`` -> bool, ``[0, 1]`` -> list) and fall back to plain
    strings (``burst`` stays ``"burst"``).
    """
    overrides: Dict[str, Any] = {}
    for assignment in assignments:
        key, sep, raw = assignment.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(f"--set expects key=value, got {assignment!r}")
        try:
            value: Any = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        if key == "seeds" and isinstance(value, list):
            value = tuple(int(seed) for seed in value)
        overrides[key] = value
    return overrides


def _shim_legacy_argv(argv: List[str]) -> List[str]:
    """Rewrite pre-subcommand invocations onto the subcommand grammar.

    The old single-parser CLI accepted flags in any position, so both
    ``repro-experiment E5 --full`` and ``repro-experiment --markdown E5`` (or
    ``--full all``) were valid.  Find the first positional token, skipping
    flags (and the value of flags that take one); an experiment id becomes
    ``run`` + original argv, and a displaced subcommand word is moved to the
    front.  Modern invocations (subcommand first) pass through untouched.
    """
    if not argv or argv[0] in _SUBCOMMANDS:
        return argv
    value_flags = {"--workers", "--json-out", "--seeds", "--set"}
    index = 0
    while index < len(argv):
        token = argv[index]
        if token.startswith("-"):
            index += 2 if token in value_flags else 1
            continue
        if _LEGACY_ID.match(token):
            return ["run"] + argv
        if token in _SUBCOMMANDS:
            return [token] + argv[:index] + argv[index + 1 :]
        break
    return argv


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Run the reproduction experiments for 'Storage and Search in Dynamic P2P Networks'.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--full", action="store_true", help="use the full (slow) configuration")
        p.add_argument("--markdown", action="store_true", help="emit Markdown instead of plain text")
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="worker processes for the Monte-Carlo trials (seed-deterministic; 1 = sequential)",
        )
        p.add_argument(
            "--json-out",
            metavar="DIR",
            default=None,
            help="persist per-cell artifacts and result.json under DIR/<id>-<stamp>/",
        )
        p.add_argument(
            "--trace",
            action="store_true",
            help="stream Chrome-trace spans to telemetry/trace-<pid>.jsonl (zero perturbation: "
            "results stay byte-identical)",
        )
        p.add_argument(
            "--telemetry",
            action="store_true",
            help="record named counters per trial, aggregated under telemetry/ (outside the "
            "byte-compared artifacts)",
        )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (E1..E14)")
    add_common(run_parser)
    run_parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override an ExperimentConfig field (repeatable), e.g. --set n=1024 --set adversary=burst",
    )
    run_parser.add_argument(
        "--seeds",
        default=None,
        metavar="SPEC",
        help="replace the preset seeds: '0..9' (inclusive) or '0,3,5'",
    )

    all_parser = sub.add_parser("all", help="run every experiment and print a timing summary")
    add_common(all_parser)

    sub.add_parser("list", help="list experiment ids, titles and paper claims")

    resume_parser = sub.add_parser("resume", help="resume an interrupted --json-out run directory")
    resume_parser.add_argument("run_dir", help="run directory created by 'run --json-out'")
    resume_parser.add_argument("--markdown", action="store_true", help="emit Markdown instead of plain text")
    resume_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the worker count recorded in the manifest",
    )

    dispatch_parser = sub.add_parser(
        "dispatch",
        help="create a shared run directory for distributed workers (runs nothing itself)",
    )
    dispatch_parser.add_argument("experiment", help="experiment id (E1..E14)")
    add_common(dispatch_parser)
    dispatch_parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override an ExperimentConfig field (repeatable)",
    )
    dispatch_parser.add_argument(
        "--seeds",
        default=None,
        metavar="SPEC",
        help="replace the preset seeds: '0..9' (inclusive) or '0,3,5'",
    )
    dispatch_parser.add_argument(
        "--chunk-seeds",
        type=int,
        default=DEFAULT_CHUNK_SEEDS,
        metavar="N",
        help="recorded in the manifest: split cells with more than N seeds into N-seed chunks "
        f"(default {DEFAULT_CHUNK_SEEDS}); every worker must use the same value or task plans diverge",
    )
    dispatch_parser.add_argument(
        "--min-task-trials",
        type=int,
        default=DEFAULT_MIN_TRIALS_PER_TASK,
        metavar="N",
        help="recorded in the manifest: batch tiny cells into tasks of at least N trials "
        f"(default {DEFAULT_MIN_TRIALS_PER_TASK})",
    )
    dispatch_parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="filesystem",
        help="recorded in the manifest: claim/lease backend every worker uses -- "
        "'filesystem' (claim files; works on shared/NFS directories) or "
        "'sqlite' (one WAL database; workers must share one host)",
    )
    dispatch_parser.add_argument(
        "--claim-batch",
        type=int,
        default=DEFAULT_CLAIM_BATCH,
        metavar="N",
        help="recorded in the manifest: how many tasks one claim round-trip covers "
        f"(default {DEFAULT_CLAIM_BATCH}; raise for sweeps of sub-millisecond cells)",
    )

    worker_parser = sub.add_parser(
        "worker",
        help="join a dispatched run directory as a cooperating worker",
    )
    worker_parser.add_argument("run_dir", help="run directory created by 'dispatch' (or 'run --json-out')")
    worker_parser.add_argument("--markdown", action="store_true", help="emit Markdown instead of plain text")
    worker_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="local process-pool size for this worker's trials (default: manifest value)",
    )
    worker_parser.add_argument(
        "--worker-id",
        default=None,
        help="identity used in claims/heartbeats (default: <host>-<pid>-<random>)",
    )
    worker_parser.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help="claim lease: a worker silent for this long is considered crashed (default 30)",
    )
    worker_parser.add_argument(
        "--poll",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sleep between scans while peers hold all remaining work (default 0.2)",
    )
    worker_parser.add_argument(
        "--chunk-seeds",
        type=int,
        default=None,
        metavar="N",
        help="override the manifest's chunking (default: manifest value, else 16); "
        "workers with diverging values derive disjoint task plans and duplicate work",
    )
    worker_parser.add_argument(
        "--min-task-trials",
        type=int,
        default=None,
        metavar="N",
        help="override the manifest's tiny-cell batching (default: manifest value, else 6)",
    )
    worker_parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="override the manifest's claim backend (default: manifest value, else filesystem); "
        "workers on different backends do not see each other's claims",
    )
    worker_parser.add_argument(
        "--claim-batch",
        type=int,
        default=None,
        metavar="N",
        help="override the manifest's claim batching (default: manifest value, else 1)",
    )
    worker_parser.add_argument(
        "--wait-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up after this long without observable progress from any worker (default: wait forever)",
    )
    worker_parser.add_argument(
        "--drain-and-exit",
        action="store_true",
        help="compute (and steal from crashed peers) while anything is claimable, then exit "
        "instead of waiting for live peers to finish -- for elastic / spot-instance fleets",
    )

    status_parser = sub.add_parser("status", help="progress of a dispatched run directory")
    status_parser.add_argument("run_dir", help="run directory created by 'dispatch' (or 'run --json-out')")
    status_parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-print every SECONDS until result.json appears",
    )

    report_parser = sub.add_parser(
        "report",
        help="observability report of a run directory: per-phase wall time, "
        "dispatch timeline and top counters",
    )
    report_parser.add_argument("run_dir", help="run directory holding timings/ and telemetry/")
    report_parser.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="N",
        help="how many counters to show (default 20)",
    )
    return parser


def _fold_observe_flags(args: argparse.Namespace, overrides: Dict[str, Any]) -> Dict[str, Any]:
    """Merge ``--trace``/``--telemetry`` into the config overrides.

    Routing the flags through the ``observe`` config field (rather than a CLI
    side channel) bakes them into the run manifest, so ``resume`` and every
    dispatch ``worker`` inherit the same observability setting.
    """
    observe = dict(overrides.get("observe") or {})
    if getattr(args, "trace", False):
        observe["trace"] = True
    if getattr(args, "telemetry", False):
        observe["telemetry"] = True
    if observe:
        overrides["observe"] = observe
    return overrides


def _make_run_dir(json_out: str, experiment_id: str) -> Path:
    """A fresh run directory DIR/<id>-<stamp>[-k] that does not exist yet."""
    base = Path(json_out)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    candidate = base / f"{experiment_id}-{stamp}"
    suffix = 1
    while candidate.exists():
        suffix += 1
        candidate = base / f"{experiment_id}-{stamp}-{suffix}"
    return candidate


def _create_store(
    json_out: str,
    experiment_id: str,
    full: bool,
    workers: int,
    overrides: Dict[str, Any],
    seeds: Optional[Sequence[int]],
    dispatch_options: Optional[Dict[str, Any]] = None,
) -> ResultStore:
    run_dir = _make_run_dir(json_out, experiment_id)
    manifest = {
        "experiment": experiment_id,
        "full": bool(full),
        "workers": int(workers),
        "overrides": overrides,
        "seeds": None if seeds is None else [int(seed) for seed in seeds],
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    if dispatch_options is not None:
        # The chunked-scheduler knobs and the claim backend are part of the
        # shared run identity, so they live in the manifest, not on each
        # worker.  ``backend`` is the one string-valued knob.
        manifest["dispatch"] = {
            key: (value if key == "backend" else int(value))
            for key, value in dispatch_options.items()
        }
    return ResultStore.create(run_dir, manifest)


def _print_result(result: ExperimentResult, markdown: bool) -> None:
    print(result.to_markdown() if markdown else result.to_text())
    print()


def _cmd_run(args: argparse.Namespace) -> int:
    experiment_id = args.experiment.upper()
    try:
        overrides = _fold_observe_flags(args, parse_set_overrides(args.overrides))
        seeds = None if args.seeds is None else parse_seed_spec(args.seeds)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = None
    if args.json_out is not None:
        store = _create_store(args.json_out, experiment_id, args.full, args.workers, overrides, seeds)
    result = run_experiment(
        experiment_id,
        full=args.full,
        workers=args.workers,
        overrides=overrides,
        seeds=seeds,
        store=store,
    )
    _print_result(result, args.markdown)
    if store is not None:
        print(f"results written to {store.root}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    store = ResultStore.open(Path(args.run_dir))
    manifest = store.manifest()
    workers = manifest.get("workers", 1) if args.workers is None else args.workers
    result = run_experiment(
        manifest["experiment"],
        full=bool(manifest.get("full", False)),
        workers=workers,
        overrides=manifest.get("overrides") or {},
        seeds=manifest.get("seeds"),
        store=store,
    )
    _print_result(result, args.markdown)
    print(f"results written to {store.root}")
    return 0


def _cmd_list() -> int:
    for experiment_id in all_experiments():
        spec = EXPERIMENTS[experiment_id]
        print(f"{experiment_id}: {spec.title}")
        print(f"    claim: {spec.claim}")
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    timings: List[tuple] = []
    observe_overrides = _fold_observe_flags(args, {})
    for experiment_id in all_experiments():
        store = None
        if args.json_out is not None:
            store = _create_store(
                args.json_out, experiment_id, args.full, args.workers, observe_overrides, None
            )
        result = run_experiment(
            experiment_id,
            full=args.full,
            workers=args.workers,
            overrides=observe_overrides,
            store=store,
        )
        _print_result(result, args.markdown)
        timings.append((experiment_id, result.elapsed_seconds))
    width = max(len(eid) for eid, _ in timings)
    print("summary:")
    for experiment_id, elapsed in timings:
        print(f"  {experiment_id.ljust(width)}  {elapsed:8.2f}s")
    total = sum(elapsed for _, elapsed in timings)
    print(f"  {'total'.ljust(width)}  {total:8.2f}s  ({len(timings)} experiments)")
    return 0


def _cmd_dispatch(args: argparse.Namespace) -> int:
    """Create a shared run directory + manifest; workers do the computing."""
    if args.json_out is None:
        print("error: dispatch requires --json-out DIR (the shared run directory location)", file=sys.stderr)
        return 2
    experiment_id = args.experiment.upper()
    try:
        get_experiment(experiment_id)
        overrides = _fold_observe_flags(args, parse_set_overrides(args.overrides))
        seeds = None if args.seeds is None else parse_seed_spec(args.seeds)
        # Validate the scheduler knobs BEFORE they are baked into the
        # manifest -- a poisoned manifest would crash every future worker.
        if args.chunk_seeds < 1:
            raise ValueError(f"--chunk-seeds must be >= 1, got {args.chunk_seeds}")
        if args.min_task_trials < 1:
            raise ValueError(f"--min-task-trials must be >= 1, got {args.min_task_trials}")
        if args.claim_batch < 1:
            raise ValueError(f"--claim-batch must be >= 1, got {args.claim_batch}")
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = _create_store(
        args.json_out,
        experiment_id,
        args.full,
        args.workers,
        overrides,
        seeds,
        dispatch_options={
            "chunk_seeds": args.chunk_seeds,
            "min_trials_per_task": args.min_task_trials,
            "claim_batch": args.claim_batch,
            "backend": args.backend,
        },
    )
    print(f"dispatched {experiment_id} to {store.root}")
    print(f"start workers with:  repro-experiment worker {store.root}")
    print(f"watch progress with: repro-experiment status {store.root} --watch 2")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Join a dispatched run as one cooperating worker."""
    store = ResultStore.open(Path(args.run_dir))
    manifest = store.manifest()
    workers = manifest.get("workers", 1) if args.workers is None else args.workers
    dispatch_kwargs = {}
    if args.worker_id is not None:
        dispatch_kwargs["worker_id"] = args.worker_id
    if args.lease is not None:
        dispatch_kwargs["lease_seconds"] = args.lease
    if args.poll is not None:
        dispatch_kwargs["poll_seconds"] = args.poll
    # Scheduler knobs default to the manifest so every worker derives the
    # same task plan; an explicit flag wins but gets a loud warning, because
    # diverging plans silently duplicate work instead of partitioning it.
    recorded = manifest.get("dispatch") or {}
    for flag, manifest_key, kwarg in (
        (args.chunk_seeds, "chunk_seeds", "chunk_seeds"),
        (args.min_task_trials, "min_trials_per_task", "min_trials_per_task"),
        (args.claim_batch, "claim_batch", "claim_batch"),
    ):
        if flag is not None:
            if manifest_key in recorded and int(recorded[manifest_key]) != int(flag):
                print(
                    f"warning: --{manifest_key.replace('_', '-')}={flag} overrides the manifest's "
                    f"{recorded[manifest_key]}; workers with different values do not share a task plan",
                    file=sys.stderr,
                )
            dispatch_kwargs[kwarg] = flag
        elif manifest_key in recorded:
            dispatch_kwargs[kwarg] = int(recorded[manifest_key])
    # The backend resolves from the manifest by default (store.backend does
    # that lazily); an explicit --backend rebinds the store so claims, worker
    # records and timings all go through the chosen backend.
    if args.backend is not None:
        recorded_backend = recorded.get("backend", "filesystem")
        if args.backend != recorded_backend:
            print(
                f"warning: --backend={args.backend} overrides the manifest's "
                f"{recorded_backend!r}; workers on different backends do not "
                "see each other's claims",
                file=sys.stderr,
            )
        store.attach_backend(make_backend(store, args.backend))
    if args.wait_timeout is not None:
        dispatch_kwargs["wait_timeout"] = args.wait_timeout
    if args.drain_and_exit:
        dispatch_kwargs["drain_and_exit"] = True
    worker = DispatchWorker(store, **dispatch_kwargs)
    print(f"worker {worker.worker_id} joining {store.root}")
    try:
        with use_dispatcher(worker):
            result = run_experiment(
                manifest["experiment"],
                full=bool(manifest.get("full", False)),
                workers=workers,
                overrides=manifest.get("overrides") or {},
                seeds=manifest.get("seeds"),
                store=store,
            )
    except DispatchDrained as drained:
        # A clean exit for elastic fleets: this worker computed everything it
        # could claim; live peers still hold the rest.
        print(
            f"worker {worker.worker_id} drained: computed {len(worker.computed_tasks)} task(s), "
            f"{len(drained.missing)} cell(s) left with live peers; exiting without waiting"
        )
        return 0
    _print_result(result, args.markdown)
    print(
        f"worker {worker.worker_id} done: computed {len(worker.computed_tasks)} task(s); "
        f"results written to {store.root}"
    )
    return 0


def _describe_claim(store: ResultStore, claim: Dict[str, Any]) -> str:
    # Backends attach the heartbeat age measured against their own clock;
    # fall back to local wall-clock arithmetic for claims that predate it.
    age = float(claim.get("_heartbeat_age", time.time() - float(claim.get("heartbeat_at", 0.0))))
    state = "EXPIRED" if store.claim_expired(claim) else "active"
    return (
        f"  {claim.get('task', '?')}: worker={claim.get('worker', '?')} "
        f"heartbeat={age:.1f}s ago lease={float(claim.get('lease_seconds', 0.0)):.0f}s [{state}]"
    )


def _print_status(store: ResultStore) -> bool:
    """One status snapshot; returns True when the run is complete."""
    manifest = store.manifest()
    cells = len(store.completed_keys())
    chunks = len(list(store.chunks_dir.glob("*.json"))) if store.chunks_dir.exists() else 0
    claims = store.active_claims()
    finished = store.result_path.exists()
    print(f"run: {store.root}  (experiment {manifest.get('experiment', '?')})")
    print(f"  cells completed: {cells}   pending chunks: {chunks}   result.json: {'yes' if finished else 'no'}")
    if claims:
        print("claims:")
        for claim in claims:
            print(_describe_claim(store, claim))
    workers = store.worker_records()
    if workers:
        print("workers:")
        for record in workers:
            age = time.time() - float(record.get("heartbeat_at", 0.0))
            state = "finished" if record.get("finished") else f"computing={record.get('computing')}"
            print(f"  {record.get('worker', '?')}: heartbeat={age:.1f}s ago {state}")
    timings = store.task_timings()
    if timings:
        total = sum(float(t.get("seconds", 0.0)) for t in timings)
        stats = percentile_stats([float(t.get("seconds", 0.0)) for t in timings])
        print(f"task timings ({len(timings)} tasks, {total:.1f}s total):")
        print(
            f"  per-task wall time: p50={stats['p50']:.2f}s"
            f" p99={stats['p99']:.2f}s max={stats['max']:.2f}s"
        )
        slowest = sorted(timings, key=lambda t: float(t.get("seconds", 0.0)), reverse=True)
        for record in slowest[:12]:
            print(
                f"  {record.get('task', '?')}: {float(record.get('seconds', 0.0)):.2f}s"
                f" ({record.get('trials', '?')} trials, worker {record.get('worker', '?')})"
            )
        if len(slowest) > 12:
            print(f"  ... and {len(slowest) - 12} more")
    return finished


def _cmd_status(args: argparse.Namespace) -> int:
    store = ResultStore.open(Path(args.run_dir))
    if args.watch is None:
        _print_status(store)
        return 0
    while True:
        finished = _print_status(store)
        if finished:
            return 0
        time.sleep(max(0.1, args.watch))
        print()


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore.open(Path(args.run_dir))
    print(render_report(store, top=args.top))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point (``repro-experiment``)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    argv = _shim_legacy_argv(argv)
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "all":
        return _cmd_all(args)
    if args.command == "dispatch":
        return _cmd_dispatch(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
