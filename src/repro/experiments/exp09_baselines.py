"""E9 -- Comparison against baseline storage/search schemes (Section 1.3, Section 4 intro).

Four schemes run on the *same* churn schedule and network substrate:

* the paper's committee + landmark protocol (replication mode);
* **flooding** -- available but Theta(n) copies and Theta(n * |I|) traffic;
* **birthday replication** -- sqrt(n log n) copies placed once, never
  maintained: availability decays and searches start failing;
* **Chord-style DHT** -- O(log n) lookups while its routing invariants hold,
  but the rate-limited stabiliser cannot keep up with heavy churn;
* **random-probe search** -- same Theta(log n) replicas as the paper but no
  landmarks: searches need Theta(n/log^2 n) rounds instead of O(log n).

The table reports availability, search success, search latency and stored
bytes per item after a fixed horizon at the same churn rate.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import mean_ci
from repro.analysis.tables import ResultTable
from repro.baselines.birthday import BirthdayReplicationStore
from repro.baselines.chord import ChordDHT
from repro.baselines.flooding import FloodingStore
from repro.baselines.random_probe import RandomProbeSearch
from repro.sim.experiment import ExperimentConfig, build_system, run_trials
from repro.sim.results import ExperimentResult, timed_experiment
from repro.experiments.common import store_items
from repro.experiments.spec import register_experiment

EXPERIMENT_ID = "E9"
TITLE = "Committee/landmark scheme vs flooding, birthday replication, Chord and random probing"
CLAIM = (
    "Only the committee/landmark scheme simultaneously keeps items available, finds them in O(log n) rounds, "
    "stores Theta(log n) copies and sends sublinear messages under adversarial churn (Sections 1.3 and 4)."
)


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=256, seeds=(0, 1), measure_rounds=40, items=2, workers=workers)


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=1024, seeds=(0, 1, 2), measure_rounds=120, items=3, workers=workers)


def _trial(config: ExperimentConfig, seed: int) -> Dict[str, Dict[str, float]]:
    """Run all schemes on one shared system/churn schedule."""
    system = build_system(config, seed)
    system.warm_up(config.warmup_rounds)
    rng = np.random.default_rng(seed + 30_000)

    # Paper scheme items.
    paper_items = store_items(system, config, rng)

    # Baseline state sharing the same network object (hence the same churn).
    flooding = FloodingStore(system.network, system.rng.protocol.spawn("flood"))
    birthday = BirthdayReplicationStore(system.network, system.rng.protocol.spawn("birthday"))
    chord = ChordDHT(system.network, system.rng.protocol.spawn("chord"))
    probe = RandomProbeSearch(
        system.network,
        system.sampler,
        system.rng.protocol.spawn("probe"),
        copies=system.params.committee_size,
        timeout=config.measure_rounds,
    )
    payload = bytes(rng.integers(0, 256, size=config.item_size, dtype=np.uint8))
    origin = system.random_alive_node()
    flood_item = flooding.store(origin, payload)
    birthday_item = birthday.store(origin, payload)
    chord.store(origin, item_key=12345, data=payload)
    probe_item = probe.store(origin, payload)
    probe_query = probe.search(system.random_alive_node(), probe_item.item_id)

    # Shared horizon: the paper scheme steps inside run_round; the baselines
    # consume the same round's churn report afterwards.
    for _ in range(config.measure_rounds):
        system.run_round()
        report = system.last_churn_report
        flooding.step(report)
        birthday.step(report)
        chord.step(report)
        probe.step(report)

    # End-of-horizon searches.
    chord_lookup = chord.lookup(system.random_alive_node(), 12345)
    birthday_hit = birthday.search(system.random_alive_node(), birthday_item.item_id)
    flood_hit = flooding.search(system.random_alive_node(), flood_item.item_id)
    paper_ops = [system.retrieve(i) for i in paper_items]
    system.run_until_finished(paper_ops)

    item_size = config.item_size
    return {
        "paper": {
            "availability": float(np.mean([system.storage.is_available(i) for i in paper_items])),
            "search_success": float(np.mean([op.succeeded for op in paper_ops])),
            "search_latency": float(np.mean([op.latency for op in paper_ops if op.succeeded]))
            if any(op.succeeded for op in paper_ops)
            else float("nan"),
            "stored_bytes": float(np.mean([system.storage.stored_bytes(i) for i in paper_items])),
        },
        "flooding": {
            "availability": 1.0 if flooding.is_available(flood_item.item_id) else 0.0,
            "search_success": 1.0 if flood_hit is not None else 0.0,
            "search_latency": 1.0,
            "stored_bytes": float(flooding.stored_bytes(flood_item.item_id)),
        },
        "birthday": {
            "availability": 1.0 if birthday.is_available(birthday_item.item_id) else 0.0,
            "search_success": 1.0 if birthday_hit is not None else 0.0,
            "search_latency": 1.0,
            "stored_bytes": float(birthday.stored_bytes(birthday_item.item_id)),
        },
        "chord": {
            "availability": 1.0 if chord.replica_count(12345) > 0 else 0.0,
            "search_success": 1.0 if chord_lookup.success else 0.0,
            "search_latency": float(chord_lookup.hops),
            "stored_bytes": float(chord.replica_count(12345) * item_size),
        },
        "random_probe": {
            "availability": 1.0 if probe.replica_count(probe_item.item_id) > 0 else 0.0,
            "search_success": 1.0 if probe_query.status == "succeeded" else 0.0,
            "search_latency": float(probe_query.latency) if probe_query.latency is not None else float("nan"),
            "stored_bytes": float(probe.replica_count(probe_item.item_id) * item_size),
        },
    }


SCHEMES = ("paper", "flooding", "birthday", "chord", "random_probe")


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
)
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run E9 and return its result tables."""
    config = quick_config() if config is None else config
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=config,
        config_summary={"schemes": list(SCHEMES)},
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: schemes after {config.measure_rounds} rounds at churn fraction "
        f"{config.churn_fraction} (n={config.n})",
        columns=[
            "scheme",
            "availability",
            "search_success",
            "search_latency_rounds",
            "stored_bytes_per_item",
            "stored_copies_equiv",
        ],
    )
    with timed_experiment(result):
        # All seeds of the four-way baseline comparison fan into one pool;
        # each seeded trial runs every scheme on the same churn schedule.
        trials = run_trials(config, _trial)
        for scheme in SCHEMES:
            availability = mean_ci([t.payload[scheme]["availability"] for t in trials])
            success = mean_ci([t.payload[scheme]["search_success"] for t in trials])
            latencies = [
                t.payload[scheme]["search_latency"]
                for t in trials
                if not np.isnan(t.payload[scheme]["search_latency"])
            ]
            stored = mean_ci([t.payload[scheme]["stored_bytes"] for t in trials])
            table.add_row(
                scheme=scheme,
                availability=availability.mean,
                search_success=success.mean,
                search_latency_rounds=float(np.mean(latencies)) if latencies else float("nan"),
                stored_bytes_per_item=stored.mean,
                stored_copies_equiv=stored.mean / config.item_size,
            )
        table.add_note(
            "flooding latency is 1 round by construction (any neighbour has the item) and chord latency is in "
            "overlay hops; both hide their much larger storage / maintenance costs, which the stored_bytes and "
            "stored_copies_equiv columns expose."
        )
        result.add_table(table)
        paper_row = table.rows[0]
        flood_row = table.rows[1]
        result.add_finding(
            f"The paper's scheme stores {paper_row['stored_copies_equiv']:.1f} copies per item versus "
            f"{flood_row['stored_copies_equiv']:.0f} for flooding while keeping availability "
            f"{paper_row['availability']:.2f} and search success {paper_row['search_success']:.2f}."
        )
        result.add_finding(
            "Birthday replication and plain Chord degrade over the horizon because nothing replenishes their "
            "state under churn; random probing keeps the data but needs far more rounds to find it."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
