"""Shared helpers for the experiment modules E1-E12.

Every experiment module follows the same shape:

* module constants ``EXPERIMENT_ID``, ``TITLE``, ``CLAIM`` (and usually a
  module-level ``GRID`` or grid-factory for its default sweep);
* ``quick_config(workers=1)`` -- a small configuration meant for benchmarks
  and CI (seconds, not minutes);
* ``full_config(workers=1)`` -- a larger configuration for producing the
  numbers recorded in EXPERIMENTS.md;
* ``run(config=None) -> ExperimentResult``, decorated with
  :func:`repro.experiments.spec.register_experiment`, which bundles all of
  the above into an :class:`~repro.experiments.spec.ExperimentSpec` and
  installs it in the registry the ``repro-experiment`` CLI works from;
* a module-level ``_trial(config, seed) -> dict`` returning plain picklable
  data, so trials can be dispatched to worker processes and persisted as
  JSON cell artifacts by :class:`repro.sim.store.ResultStore`.

The ``workers`` knob threads through to :class:`repro.sim.runner.TrialRunner`:
``workers=1`` runs trials sequentially in-process, ``workers=k`` fans every
(config, seed) cell of the experiment (including its sweep grid, via
:class:`repro.sim.runner.Sweep`) into a pool of ``k`` processes.  Because each
trial derives all randomness from its seed, the knob changes wall-clock time
only -- payloads are byte-identical either way.

This module holds the pieces several experiments share: a soup-only run
(network + walks, no storage protocol) used by the mixing/survival
experiments, and a storage run helper used by the availability/retrieval
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.params import ProtocolParameters
from repro.core.protocol import P2PStorageSystem
from repro.net.network import DynamicNetwork
from repro.sim.experiment import ExperimentConfig, build_adversary, build_system, resolve_churn_rate
from repro.util.rng import SplitRng
from repro.walks.mixing import SurvivalReport, survival_by_source, tally_deliveries
from repro.walks.sampler import NodeSampler
from repro.walks.soup import SampleDelivery, WalkSoup

__all__ = [
    "SoupRunResult",
    "run_soup_only",
    "run_storage_trial",
    "store_items",
]


@dataclass(frozen=True)
class SoupRunResult:
    """Outcome of a soup-only run used by E1/E2/E11."""

    n: int
    churn_rate: int
    walk_length: int
    injected_sources: np.ndarray
    delivery: SampleDelivery
    survival: SurvivalReport
    population: np.ndarray
    rounds: int


def run_soup_only(
    config: ExperimentConfig,
    seed: int,
    walks_per_source: int = 8,
    single_cohort: bool = True,
) -> SoupRunResult:
    """Run network + walk soup without the storage protocol.

    With ``single_cohort=True`` every node injects ``walks_per_source`` walks
    in round 0 only (the setting of Theorem 1 / Lemmas 2-4); otherwise walks
    are injected every round as in the full protocol.
    """
    split = SplitRng(seed)
    adversary = build_adversary(config, split)
    params = ProtocolParameters.for_network(config.n, delta=config.delta, degree=config.degree)
    network = DynamicNetwork(
        n_slots=config.n,
        degree=config.degree,
        adversary=adversary,
        adversary_rng=split.adversary.spawn("topology"),
    )
    soup = WalkSoup(
        network,
        walk_length=params.walk_length,
        walks_per_node=walks_per_source,
        rng=split.protocol.spawn("soup"),
    )
    deliveries: List[SampleDelivery] = []
    injected_sources: List[np.ndarray] = []
    rounds = params.walk_length + 2
    for r in range(rounds):
        report = network.begin_round()
        soup.apply_churn(report)
        if r == 0 or not single_cohort:
            before = soup.stats.generated
            soup.inject_from_all(report.round_index, per_node=walks_per_source)
            injected_sources.append(np.repeat(network.slot_uid_view().copy(), walks_per_source))
        deliveries.append(soup.step_and_collect(report.round_index))
        network.end_round()
    delivery = tally_deliveries(deliveries)
    injected = np.concatenate(injected_sources) if injected_sources else np.empty(0, dtype=np.int64)
    survival = survival_by_source(injected, delivery)
    return SoupRunResult(
        n=config.n,
        churn_rate=resolve_churn_rate(config),
        walk_length=params.walk_length,
        injected_sources=injected,
        delivery=delivery,
        survival=survival,
        population=network.alive_uids(),
        rounds=rounds,
    )


def store_items(system: P2PStorageSystem, config: ExperimentConfig, rng: np.random.Generator) -> List[int]:
    """Store ``config.items`` items of ``config.item_size`` random bytes; return their ids."""
    item_ids: List[int] = []
    for _ in range(config.items):
        data = rng.integers(0, 256, size=config.item_size, dtype=np.uint8).tobytes()
        item = system.store(data)
        item_ids.append(item.item_id)
    return item_ids


def run_storage_trial(
    config: ExperimentConfig,
    seed: int,
    measure_rounds: Optional[int] = None,
    retrievals_per_item: int = 0,
) -> Dict[str, object]:
    """Common storage trial: warm up, store items, run, optionally retrieve.

    Returns a payload dict with the system, stored item ids and issued
    retrieval operations, for experiment modules to post-process.
    """
    system = build_system(config, seed)
    system.warm_up(config.warmup_rounds)
    rng = np.random.default_rng(seed + 10_000)
    item_ids = store_items(system, config, rng)
    rounds = config.measure_rounds if measure_rounds is None else measure_rounds
    system.run_rounds(rounds)

    operations = []
    if retrievals_per_item > 0:
        for item_id in item_ids:
            for _ in range(retrievals_per_item):
                operations.append(system.retrieve(item_id))
        system.run_until_finished(operations)
    return {
        "system": system,
        "item_ids": item_ids,
        "operations": operations,
    }
