"""E14 -- Retrieval latency under stragglers and transient partitions.

Retrieval (Algorithm 4) is the protocol layer most exposed to latency: a
probe only helps once the walk samples it rides on have actually arrived.
Using the event-driven engine we stress retrieval under progressively harsher
latency models -- zero (lockstep baseline), a heavy-tailed lognormal
("stragglers": most messages are fast, a tail is very slow), and a two-region
matrix with slow cross-region links (a transient-partition stand-in).  Items
are stored in one batch (:meth:`repro.core.storage.StorageService.store_many`,
the pooled committee gather added alongside this experiment), then retrieved
by random requesters while churn keeps running.  The claim holds if the
success rate stays high and the latency distribution shifts by roughly the
RTT scale rather than collapsing.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import percentile, success_fraction
from repro.analysis.tables import ResultTable
from repro.experiments.spec import register_experiment
from repro.sim.experiment import ExperimentConfig, build_system
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import GridSpec, Sweep

EXPERIMENT_ID = "E14"
TITLE = "Retrieval tolerates stragglers and transient partitions"
CLAIM = (
    "Retrieval keeps succeeding under realistic message latency: heavy-tailed per-message delays and "
    "slow cross-region links shift the latency distribution by the RTT scale but do not break the "
    "O(log n) search (Theorem 4's robustness claim)."
)

RETRIEVALS_PER_ITEM = 2

#: Zero latency, heavy-tailed stragglers, and a partition-like region matrix.
LATENCY_CELLS = (
    {"engine": "events", "latency": {"kind": "zero"}},
    {"engine": "events", "latency": {"kind": "lognormal", "mu": 0.0, "sigma": 1.0}},
    {
        "engine": "events",
        "latency": {"kind": "region", "regions": 2, "matrix": [[0.0, 4.0], [4.0, 0.0]], "jitter": 0.5},
    },
)

GRID = GridSpec.from_cells(LATENCY_CELLS)


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(
        name=EXPERIMENT_ID, n=128, seeds=(0, 1), measure_rounds=8, items=2, workers=workers
    )


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(
        name=EXPERIMENT_ID, n=512, seeds=(0, 1, 2), measure_rounds=16, items=3, workers=workers
    )


def _trial(config: ExperimentConfig, seed: int) -> Dict[str, object]:
    system = build_system(config, seed)
    system.warm_up(config.warmup_rounds)
    rng = np.random.default_rng(seed + 10_000)
    owners = [system.random_alive_node() for _ in range(config.items)]
    datas = [
        rng.integers(0, 256, size=config.item_size, dtype=np.uint8).tobytes()
        for _ in range(config.items)
    ]
    items = system.storage.store_many(owners, datas)
    system.run_rounds(config.measure_rounds)
    operations = []
    for item in items:
        for _ in range(RETRIEVALS_PER_ITEM):
            operations.append(system.retrieve(item.item_id))
    system.run_until_finished(operations)
    return {
        "latency_kind": (config.latency or {"kind": "zero"})["kind"],
        "success": [op.succeeded for op in operations],
        "latencies": [op.latency for op in operations if op.succeeded],
        "probes": [op.probes_sent for op in operations],
        "availability": system.availability(),
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
    grid=GRID,
)
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run E14 over the latency-model sweep and return its result tables."""
    base = quick_config() if config is None else config
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=base,
        config_summary={
            "latency_axis": [cell["latency"]["kind"] for cell in LATENCY_CELLS],
            "retrievals_per_item": RETRIEVALS_PER_ITEM,
        },
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: retrieval under latency models",
        columns=[
            "latency",
            "success_rate",
            "mean_latency",
            "p90_latency",
            "mean_probes",
            "availability",
        ],
    )
    with timed_experiment(result):
        sweep = Sweep(base, GRID, _trial).run()
        for cell in sweep:
            trials = cell.trials
            kind = trials[0].payload["latency_kind"]
            successes = [s for t in trials for s in t.payload["success"]]
            latencies = [l for t in trials for l in t.payload["latencies"]]
            probes = [p for t in trials for p in t.payload["probes"]]
            rate, _, _ = success_fraction(successes)
            table.add_row(
                latency=kind,
                success_rate=rate,
                mean_latency=float(np.mean(latencies)) if latencies else float("nan"),
                p90_latency=percentile(latencies, 90),
                mean_probes=float(np.mean(probes)) if probes else float("nan"),
                availability=float(np.mean([t.payload["availability"] for t in trials])),
            )
        result.add_table(table)
        baseline = table.rows[0]
        worst = min(row["success_rate"] for row in table.rows)
        result.add_finding(
            f"Success rate stays at {worst:.2f} or higher across every latency model (zero-latency baseline "
            f"{baseline['success_rate']:.2f}); mean latency shifts from {baseline['mean_latency']:.1f} rounds "
            f"to at most {max(row['mean_latency'] for row in table.rows):.1f} under stragglers and slow "
            "cross-region links -- a shift on the RTT scale, not a search breakdown."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
