"""E13 -- Walk-soup mixing under heterogeneous message latency.

The paper analyses the walk soup in a synchronous round model, but its
near-uniform-sampling guarantee is claimed to degrade gracefully when
messages take longer than a round.  The event-driven engine
(:mod:`repro.sim.events`) makes latency a first-class axis: each delivered
walk token arrives ``floor(delay)`` rounds after completing, with the delay
drawn from a configurable model (:mod:`repro.net.latency`).  We sweep the
latency model -- zero (the lockstep baseline), uniform, heavy-tailed
lognormal, and a two-region RTT matrix -- and measure the sample throughput,
the total-variation distance of the per-node sample distribution from
uniform, and the fraction of nodes receiving samples at all.  The claim
holds if uniformity and coverage survive realistic RTT heterogeneity with
only the delivery *rate* (and hence effective mixing time) shifting.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import mean_ci
from repro.analysis.tables import ResultTable
from repro.experiments.spec import register_experiment
from repro.sim.experiment import ExperimentConfig, build_system
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import GridSpec, Sweep
from repro.walks.mixing import total_variation_from_uniform

EXPERIMENT_ID = "E13"
TITLE = "Soup mixing survives heterogeneous RTTs"
CLAIM = (
    "The walk soup's near-uniform sampling (Theorem 1) degrades gracefully under message latency: "
    "nonzero per-message RTTs delay deliveries but leave the sample distribution near-uniform, so "
    "the effective mixing time grows only by the latency scale."
)

#: The latency axis: lockstep-equivalent zero latency, bounded uniform RTTs,
#: heavy-tailed stragglers, and a two-region topology with slow cross links.
LATENCY_CELLS = (
    {"engine": "events", "latency": {"kind": "zero"}},
    {"engine": "events", "latency": {"kind": "uniform", "low": 0.0, "high": 2.0}},
    {"engine": "events", "latency": {"kind": "lognormal", "mu": 0.0, "sigma": 0.75}},
    {
        "engine": "events",
        "latency": {"kind": "region", "regions": 2, "matrix": [[0.0, 3.0], [3.0, 0.0]], "jitter": 0.5},
    },
)

GRID = GridSpec.from_cells(LATENCY_CELLS)


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(
        name=EXPERIMENT_ID, n=128, seeds=(0, 1), measure_rounds=12, items=0, workers=workers
    )


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(
        name=EXPERIMENT_ID, n=512, seeds=(0, 1, 2), measure_rounds=24, items=0, workers=workers
    )


def _trial(config: ExperimentConfig, seed: int) -> Dict[str, object]:
    system = build_system(config, seed)
    system.warm_up(config.warmup_rounds)
    summaries = system.run_rounds(config.measure_rounds)
    alive = system.network.alive_uids()
    counts = system.sampler.sample_counts(alive, round_index=system.round_index)
    report = total_variation_from_uniform(np.asarray(counts), alive)
    return {
        "latency_kind": (config.latency or {"kind": "zero"})["kind"],
        "delivered_per_round": float(np.mean([s.walks_delivered for s in summaries])),
        "tv_distance": report.tv_distance,
        "max_over_uniform": report.max_over_uniform,
        "coverage": report.coverage,
        "samples_in_window": report.sample_count,
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
    grid=GRID,
)
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run E13 over the latency-model sweep and return its result tables."""
    base = quick_config() if config is None else config
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=base,
        config_summary={"latency_axis": [cell["latency"]["kind"] for cell in LATENCY_CELLS]},
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: sample uniformity vs latency model",
        columns=[
            "latency",
            "delivered_per_round",
            "tv_distance",
            "tv_ci",
            "max_over_uniform",
            "coverage",
        ],
    )
    with timed_experiment(result):
        sweep = Sweep(base, GRID, _trial).run()
        for cell in sweep:
            trials = cell.trials
            kind = trials[0].payload["latency_kind"]
            tvs = [t.payload["tv_distance"] for t in trials]
            tv = mean_ci(tvs)
            table.add_row(
                latency=kind,
                delivered_per_round=float(np.mean([t.payload["delivered_per_round"] for t in trials])),
                tv_distance=tv.mean,
                tv_ci=f"[{tv.lower:.3f}, {tv.upper:.3f}]",
                max_over_uniform=float(np.mean([t.payload["max_over_uniform"] for t in trials])),
                coverage=float(np.mean([t.payload["coverage"] for t in trials])),
            )
        zero_tv = table.rows[0]["tv_distance"]
        worst_tv = max(row["tv_distance"] for row in table.rows)
        result.add_table(table)
        result.add_finding(
            f"Total-variation distance from uniform moves from {zero_tv:.3f} at zero latency to at most "
            f"{worst_tv:.3f} under heavy-tailed and cross-region RTTs, while coverage stays at "
            f"{min(row['coverage'] for row in table.rows):.2f} or higher: latency thins and delays the "
            "sample stream without biasing where samples land."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
