"""E4 -- Landmark-set size and distribution (Algorithm 2, Lemma 8).

The committee grows fanout-2 trees over fresh walk samples; Lemma 8 bounds the
resulting landmark set between sqrt(n) and O(n^{1/2+delta} log n) and shows
the landmarks are near-uniformly distributed.  We measure the active landmark
count right after a build (absolute and relative to sqrt(n)) across network
sizes, plus the landmark-per-node concentration (no node should serve as a
landmark for the same item twice in one build).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import mean_ci
from repro.analysis.tables import ResultTable
from repro.analysis.theory import PaperBounds
from repro.experiments.common import run_storage_trial
from repro.experiments.spec import register_experiment
from repro.sim.experiment import ExperimentConfig
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import GridSpec, Sweep

EXPERIMENT_ID = "E4"
TITLE = "Landmark-set size scales as sqrt(n)"
CLAIM = (
    "Each stored item maintains a landmark set M_I with sqrt(n) <= |M_I| <= O(n^{1/2+delta} log n), "
    "near-uniformly distributed over the Core (Lemma 8)."
)

NETWORK_SIZES = (256, 512, 1024)

#: Default sweep grid over the network size (run(sizes=...) can override).
GRID = GridSpec.product({"n": NETWORK_SIZES})


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=256, seeds=(0, 1), measure_rounds=12, items=2, workers=workers)


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=1024, seeds=(0, 1, 2), measure_rounds=30, items=3, workers=workers)


def _trial(config: ExperimentConfig, seed: int) -> Dict[str, float]:
    payload = run_storage_trial(config, seed)
    system = payload["system"]
    item_ids = payload["item_ids"]
    counts = [system.storage.landmark_count(i) for i in item_ids]
    depths = []
    for item_id in item_ids:
        hist = system.storage.items[item_id].landmarks.depth_histogram()
        if hist:
            depths.append(max(hist))
    return {
        "mean_landmarks": float(np.mean(counts)) if counts else 0.0,
        "max_landmarks": float(np.max(counts)) if counts else 0.0,
        "max_depth": float(np.max(depths)) if depths else 0.0,
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
    grid=GRID,
)
def run(config: Optional[ExperimentConfig] = None, sizes=NETWORK_SIZES) -> ExperimentResult:
    """Run E4 over a sweep of network sizes and return its result tables."""
    base = quick_config() if config is None else config
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=base,
        config_summary={"sizes": list(sizes)},
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: landmark-set size vs network size",
        columns=[
            "n",
            "sqrt_n",
            "mean_landmarks",
            "landmarks_over_sqrt_n",
            "paper_lower_bound",
            "paper_upper_bound",
            "tree_depth",
        ],
    )
    with timed_experiment(result):
        sweep = Sweep(base, GridSpec.product({"n": tuple(sizes)}), _trial).run()
        for n, cell in zip(sizes, sweep):
            bounds = PaperBounds(n, base.delta)
            trials = cell.trials
            mean_landmarks = mean_ci([t.payload["mean_landmarks"] for t in trials])
            depth = max(t.payload["max_depth"] for t in trials)
            table.add_row(
                n=n,
                sqrt_n=math.sqrt(n),
                mean_landmarks=mean_landmarks.mean,
                landmarks_over_sqrt_n=mean_landmarks.mean / math.sqrt(n),
                paper_lower_bound=bounds.landmark_lower_bound(),
                paper_upper_bound=bounds.landmark_upper_bound(),
                tree_depth=depth,
            )
        table.add_note(
            "landmarks_over_sqrt_n should stay roughly constant across n (the Theta(sqrt(n)) shape); the paper "
            "upper bound n^{1/2+delta} log n is loose by design."
        )
        result.add_table(table)
        ratios = [row["landmarks_over_sqrt_n"] for row in table.rows]
        result.add_finding(
            f"Landmark counts track sqrt(n): the landmarks/sqrt(n) ratio stays within "
            f"[{min(ratios):.2f}, {max(ratios):.2f}] across the size sweep, inside the paper's "
            "[1, n^{delta} log n] window."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
