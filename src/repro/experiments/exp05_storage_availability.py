"""E5 -- Data availability over long horizons (Algorithm 3, Theorem 3).

Items stored via the committee + landmark scheme should remain *available*
(recoverable, with only Theta(log n) copies at any time) for a polynomial
number of rounds despite continuous churn.  We store several items, run a
long horizon at several churn rates, and report the fraction of items still
available at the end, the minimum availability seen, the mean replica count
(which must stay Theta(log n), not grow), and the number of loss events.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import mean_ci, success_fraction
from repro.analysis.tables import ResultTable
from repro.analysis.theory import PaperBounds
from repro.sim.experiment import ExperimentConfig, build_system
from repro.sim.metrics import MetricsCollector
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import GridSpec, Sweep
from repro.experiments.common import store_items
from repro.experiments.spec import register_experiment

EXPERIMENT_ID = "E5"
TITLE = "Stored items stay available under churn with Theta(log n) copies"
CLAIM = (
    "A data item stored by a node in the good set remains available for a polynomial number of rounds "
    "whp, using only Theta(log n) copies, at churn up to O(n/log^{1+delta} n) (Theorem 3)."
)

CHURN_FRACTIONS = (0.02, 0.05, 0.1)

#: Default sweep grid over the churn fraction.
GRID = GridSpec.product({"churn_fraction": CHURN_FRACTIONS})


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=256, seeds=(0, 1), measure_rounds=60, items=3, workers=workers)


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(
        name=EXPERIMENT_ID, n=1024, seeds=(0, 1, 2, 3), measure_rounds=250, items=5, workers=workers
    )


def _trial(config: ExperimentConfig, seed: int) -> Dict[str, float]:
    system = build_system(config, seed)
    system.warm_up(config.warmup_rounds)
    rng = np.random.default_rng(seed + 20_000)
    item_ids = store_items(system, config, rng)
    collector = MetricsCollector(system)
    collector.run_and_observe(config.measure_rounds)
    available = [system.storage.is_available(i) for i in item_ids]
    readable = [system.storage.read(i) is not None for i in item_ids]
    return {
        "final_availability": float(np.mean(available)),
        "readable": float(np.mean(readable)),
        "min_availability": collector.min_availability(),
        "mean_replicas": float(np.mean([system.storage.replica_count(i) for i in item_ids])),
        "loss_events": float(len(system.storage.loss_events)),
        "committee_good_fraction": collector.committee_goodness_fraction(),
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
    grid=GRID,
)
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run E5 and return its result tables."""
    config = quick_config() if config is None else config
    bounds = PaperBounds(config.n, config.delta)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=config,
        config_summary={"theta_log_n_copies": int(round(bounds.storage_copies()))},
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: availability after {config.measure_rounds} rounds (n={config.n})",
        columns=[
            "churn_fraction",
            "final_availability",
            "min_availability",
            "readable_fraction",
            "mean_replicas",
            "target_replicas",
            "loss_events",
            "committee_good_fraction",
        ],
    )
    with timed_experiment(result):
        sweep = Sweep(config, GRID, _trial).run()
        for fraction, cell in zip(CHURN_FRACTIONS, sweep):
            cfg = cell.cell.config
            trials = cell.trials
            table.add_row(
                churn_fraction=fraction,
                final_availability=mean_ci([t.payload["final_availability"] for t in trials]).mean,
                min_availability=mean_ci([t.payload["min_availability"] for t in trials]).mean,
                readable_fraction=mean_ci([t.payload["readable"] for t in trials]).mean,
                mean_replicas=mean_ci([t.payload["mean_replicas"] for t in trials]).mean,
                target_replicas=cfg.items and PaperBounds(cfg.n, cfg.delta).storage_copies(),
                loss_events=mean_ci([t.payload["loss_events"] for t in trials]).mean,
                committee_good_fraction=mean_ci([t.payload["committee_good_fraction"] for t in trials]).mean,
            )
        table.add_note(
            "mean_replicas must remain near the Theta(log n) target: the scheme neither lets copies die out nor "
            "inflates them to regain availability."
        )
        result.add_table(table)
        result.add_finding(
            f"At churn fractions up to {CHURN_FRACTIONS[-1]:.0%} of the paper's limit, availability stays at "
            f"{table.rows[0]['final_availability']:.2f}-{table.rows[-1]['final_availability']:.2f} over "
            f"{config.measure_rounds} rounds with ~{table.rows[0]['mean_replicas']:.1f} replicas per item."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
