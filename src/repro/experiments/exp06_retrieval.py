"""E6 -- Retrieval latency is O(log n) (Algorithm 4, Theorem 4).

Retrievals issued by random nodes against stored items should succeed for
n - o(n) nodes within O(log n) rounds.  We sweep the network size, measure the
success rate and latency distribution, and fit latency against ln n: a clean
O(log n) claim shows up as latency growing linearly in ln n (and, in
particular, far slower than sqrt(n) or n).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import log_fit_slope, mean_ci, percentile, success_fraction
from repro.analysis.tables import ResultTable
from repro.analysis.theory import PaperBounds
from repro.experiments.common import run_storage_trial
from repro.experiments.spec import register_experiment
from repro.sim.experiment import ExperimentConfig
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import GridSpec, Sweep

EXPERIMENT_ID = "E6"
TITLE = "Retrieval succeeds in O(log n) rounds"
CLAIM = (
    "Any available item can be retrieved by n - o(n) nodes in O(log n) rounds whp, at churn up to "
    "O(n/log^{1+delta} n) (Theorem 4)."
)

NETWORK_SIZES = (256, 512, 1024)
RETRIEVALS_PER_ITEM = 2

#: Default sweep grid over the network size (run(sizes=...) can override).
GRID = GridSpec.product({"n": NETWORK_SIZES})


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=256, seeds=(0, 1), measure_rounds=10, items=2, workers=workers)


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=1024, seeds=(0, 1, 2), measure_rounds=20, items=3, workers=workers)


def _trial(config: ExperimentConfig, seed: int) -> Dict[str, object]:
    payload = run_storage_trial(config, seed, retrievals_per_item=RETRIEVALS_PER_ITEM)
    operations = payload["operations"]
    latencies = [op.latency for op in operations if op.succeeded]
    return {
        "success": [op.succeeded for op in operations],
        "latencies": latencies,
        "probes": [op.probes_sent for op in operations],
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
    grid=GRID,
)
def run(config: Optional[ExperimentConfig] = None, sizes=NETWORK_SIZES) -> ExperimentResult:
    """Run E6 over a network-size sweep and return its result tables."""
    base = quick_config() if config is None else config
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=base,
        config_summary={"sizes": list(sizes), "retrievals_per_item": RETRIEVALS_PER_ITEM},
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: retrieval success and latency vs n",
        columns=[
            "n",
            "ln_n",
            "success_rate",
            "mean_latency",
            "p90_latency",
            "mean_probes",
            "paper_latency_scale",
        ],
    )
    with timed_experiment(result):
        all_ns = []
        all_latencies = []
        sweep = Sweep(base, GridSpec.product({"n": tuple(sizes)}), _trial).run()
        for n, cell in zip(sizes, sweep):
            bounds = PaperBounds(n, base.delta)
            trials = cell.trials
            successes = [s for t in trials for s in t.payload["success"]]
            latencies = [l for t in trials for l in t.payload["latencies"]]
            probes = [p for t in trials for p in t.payload["probes"]]
            rate, _, _ = success_fraction(successes)
            mean_latency = float(np.mean(latencies)) if latencies else float("nan")
            all_ns.extend([n] * len(latencies))
            all_latencies.extend(latencies)
            table.add_row(
                n=n,
                ln_n=bounds.log_n,
                success_rate=rate,
                mean_latency=mean_latency,
                p90_latency=percentile(latencies, 90),
                mean_probes=float(np.mean(probes)) if probes else float("nan"),
                paper_latency_scale=bounds.retrieval_rounds(),
            )
        slope = log_fit_slope(all_ns, all_latencies) if len(set(all_ns)) > 1 and all_latencies else float("nan")
        table.add_note(
            f"latency vs ln(n) least-squares slope = {slope:.2f} rounds per ln-unit; an O(log n) protocol shows a "
            "modest constant slope, while sqrt(n)-style search would grow by >10x over this size range."
        )
        result.add_table(table)
        result.add_finding(
            f"Retrieval success rate stays at {min(r['success_rate'] for r in table.rows):.2f} or higher across the "
            f"sweep and mean latency grows only from {table.rows[0]['mean_latency']:.1f} to "
            f"{table.rows[-1]['mean_latency']:.1f} rounds as n grows {sizes[0]} -> {sizes[-1]}, consistent with O(log n)."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
