"""E12 -- Ablation: the oblivious-adversary assumption is load-bearing (Section 2.1).

The paper's guarantees assume the adversary commits to the churn sequence
before the protocol's coin flips.  This ablation runs the identical protocol
at the identical churn *rate* against (a) the oblivious uniform adversary and
(b) an adaptive adversary that watches which nodes currently hold items or
serve on storage committees and churns exactly those.  Availability should
collapse under (b) -- demonstrating that the assumption is not a technical
convenience but a real boundary of the result.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import mean_ci
from repro.analysis.tables import ResultTable
from repro.experiments.common import store_items
from repro.experiments.spec import register_experiment
from repro.sim.experiment import ExperimentConfig, build_system
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import GridSpec, Sweep

EXPERIMENT_ID = "E12"
TITLE = "Ablation: adaptive (non-oblivious) churn destroys availability at the same rate"
CLAIM = (
    "The storage/search guarantees hold against an oblivious adversary; the model explicitly excludes "
    "adversaries that can see the protocol's random choices (Section 2.1)."
)

CHURN_FRACTIONS = (0.02, 0.05)

#: Default sweep grid: churn fraction x adversary kind.
GRID = GridSpec.product({"churn_fraction": CHURN_FRACTIONS, "adversary": ("uniform", "adaptive")})


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=256, seeds=(0, 1), measure_rounds=40, items=3, workers=workers)


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=1024, seeds=(0, 1, 2), measure_rounds=100, items=4, workers=workers)


def _trial(config: ExperimentConfig, seed: int) -> Dict[str, float]:
    system = build_system(config, seed)
    system.warm_up(config.warmup_rounds)
    rng = np.random.default_rng(seed + 40_000)
    item_ids = store_items(system, config, rng)
    rounds_to_first_loss = None
    for _ in range(config.measure_rounds):
        system.run_round()
        if rounds_to_first_loss is None and system.storage.loss_events:
            rounds_to_first_loss = system.round_index
    ops = [system.retrieve(i) for i in item_ids if system.storage.is_available(i)]
    system.run_until_finished(ops)
    return {
        "availability": float(np.mean([system.storage.is_available(i) for i in item_ids])),
        "loss_events": float(len(system.storage.loss_events)),
        "rounds_to_first_loss": float(rounds_to_first_loss) if rounds_to_first_loss is not None else float("nan"),
        "retrieval_success": float(np.mean([op.succeeded for op in ops])) if ops else 0.0,
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
    grid=GRID,
)
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run E12 and return its result tables."""
    config = quick_config() if config is None else config
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=config,
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: oblivious vs adaptive adversary at equal churn rate (n={config.n})",
        columns=[
            "churn_fraction",
            "adversary",
            "availability",
            "items_lost",
            "rounds_to_first_loss",
            "retrieval_success",
        ],
    )
    with timed_experiment(result):
        for cell in Sweep(config, GRID, _trial).run():
            overrides = cell.cell.override_dict()
            fraction, adversary = overrides["churn_fraction"], overrides["adversary"]
            trials = cell.trials
            losses = [t.payload["rounds_to_first_loss"] for t in trials]
            losses = [l for l in losses if not np.isnan(l)]
            table.add_row(
                churn_fraction=fraction,
                adversary="oblivious-uniform" if adversary == "uniform" else "ADAPTIVE (excluded by model)",
                availability=mean_ci([t.payload["availability"] for t in trials]).mean,
                items_lost=mean_ci([t.payload["loss_events"] for t in trials]).mean,
                rounds_to_first_loss=float(np.mean(losses)) if losses else float("nan"),
                retrieval_success=mean_ci([t.payload["retrieval_success"] for t in trials]).mean,
            )
        table.add_note(
            "The adaptive adversary inspects the live protocol state (storage committee membership and holders) "
            "every round, which the paper's model forbids; it is included only to show the assumption matters."
        )
        result.add_table(table)
        oblivious = [r for r in table.rows if r["adversary"].startswith("oblivious")]
        adaptive = [r for r in table.rows if r["adversary"].startswith("ADAPTIVE")]
        result.add_finding(
            f"At the same churn rate, availability is {np.mean([r['availability'] for r in oblivious]):.2f} "
            f"against the oblivious adversary but only {np.mean([r['availability'] for r in adaptive]):.2f} "
            "against the adaptive one -- obliviousness is a real requirement, not a proof convenience."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
