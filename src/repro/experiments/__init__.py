"""The reproduction experiments E1-E14 (one module per claim; see DESIGN.md).

Each ``expNN_*`` module declares itself to the harness with the
:func:`~repro.experiments.spec.register_experiment` decorator, which bundles
its title, paper claim, quick/full config presets, per-seed trial callable
and default sweep grid into an :class:`~repro.experiments.spec.
ExperimentSpec`.  Importing this package therefore populates the registry;
``repro.experiments.registry`` exposes it programmatically and as the
``repro-experiment`` CLI.
"""

from repro.experiments import (
    exp01_soup_mixing,
    exp02_walk_survival,
    exp03_committee,
    exp04_landmarks,
    exp05_storage_availability,
    exp06_retrieval,
    exp07_churn_sweep,
    exp08_message_complexity,
    exp09_baselines,
    exp10_erasure,
    exp11_reversibility,
    exp12_adaptive_ablation,
    exp13_latency_mixing,
    exp14_latency_retrieval,
)
from repro.experiments.spec import REGISTRY, ExperimentSpec, register_experiment, registered_ids

__all__ = [
    "exp01_soup_mixing",
    "exp02_walk_survival",
    "exp03_committee",
    "exp04_landmarks",
    "exp05_storage_availability",
    "exp06_retrieval",
    "exp07_churn_sweep",
    "exp08_message_complexity",
    "exp09_baselines",
    "exp10_erasure",
    "exp11_reversibility",
    "exp12_adaptive_ablation",
    "exp13_latency_mixing",
    "exp14_latency_retrieval",
    "REGISTRY",
    "ExperimentSpec",
    "register_experiment",
    "registered_ids",
]
