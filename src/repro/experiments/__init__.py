"""The reproduction experiments E1-E12 (one module per claim; see DESIGN.md)."""

from repro.experiments import (
    exp01_soup_mixing,
    exp02_walk_survival,
    exp03_committee,
    exp04_landmarks,
    exp05_storage_availability,
    exp06_retrieval,
    exp07_churn_sweep,
    exp08_message_complexity,
    exp09_baselines,
    exp10_erasure,
    exp11_reversibility,
    exp12_adaptive_ablation,
)

__all__ = [
    "exp01_soup_mixing",
    "exp02_walk_survival",
    "exp03_committee",
    "exp04_landmarks",
    "exp05_storage_availability",
    "exp06_retrieval",
    "exp07_churn_sweep",
    "exp08_message_complexity",
    "exp09_baselines",
    "exp10_erasure",
    "exp11_reversibility",
    "exp12_adaptive_ablation",
]
