"""E11 -- Reversibility: walk origins are near-uniform (Lemma 4).

Lemma 4 is the mirror image of Lemma 3: for most destinations d, a walk that
*arrived* at d after tau rounds originated at any of n - o(n) sources with
probability in [1/4n, 3/2n].  Empirically we aggregate all delivered walks,
look at the distribution of their *origins*, and measure its total-variation
distance from uniform plus the max-over-uniform ratio, under churn.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import mean_ci
from repro.analysis.tables import ResultTable
from repro.experiments.common import run_soup_only
from repro.experiments.spec import register_experiment
from repro.sim.experiment import ExperimentConfig
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import GridSpec, Sweep
from repro.walks.mixing import origin_distribution, total_variation_from_uniform

EXPERIMENT_ID = "E11"
TITLE = "Reversibility: the origin of a surviving walk is near-uniform"
CLAIM = (
    "For most destinations, a walk that survived to the mixing time originated at any of n - o(n) sources "
    "with probability in [1/4n, 3/2n] (Lemma 4)."
)

CHURN_FRACTIONS = (0.0, 0.05, 0.1)

#: Default sweep grid: one cell per churn fraction, paired with its adversary kind.
GRID = GridSpec.from_cells(
    [
        {"churn_fraction": fraction, "adversary": "none" if fraction == 0 else "uniform"}
        for fraction in CHURN_FRACTIONS
    ]
)


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=256, seeds=(0, 1), measure_rounds=0, workers=workers)


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=2048, seeds=(0, 1, 2, 3), measure_rounds=0, workers=workers)


def _trial(config: ExperimentConfig, seed: int, walks_per_source: int = 8) -> Dict[str, float]:
    run_result = run_soup_only(config, seed, walks_per_source=walks_per_source)
    # The reference population for *origins* is the round-0 population
    # (sources no longer alive can still be legitimate origins).
    population = np.unique(run_result.injected_sources)
    counts = origin_distribution(run_result.delivery)
    report = total_variation_from_uniform(counts, population)
    return {
        "tv": report.tv_distance,
        "ratio": report.max_over_uniform,
        "coverage": report.coverage,
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
    grid=GRID,
)
def run(config: Optional[ExperimentConfig] = None, walks_per_source: int = 8) -> ExperimentResult:
    """Run E11 and return its result tables."""
    config = quick_config() if config is None else config
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=config,
        config_summary={"walks_per_source": walks_per_source},
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: origin uniformity of surviving walks (n={config.n})",
        columns=[
            "churn_fraction",
            "origin_tv_distance",
            "origin_max_over_uniform",
            "surviving_source_coverage",
            "paper_max_over_uniform",
        ],
    )
    with timed_experiment(result):
        sweep = Sweep(config, GRID, partial(_trial, walks_per_source=walks_per_source)).run()
        for fraction, cell in zip(CHURN_FRACTIONS, sweep):
            trials = cell.trials
            table.add_row(
                churn_fraction=fraction,
                origin_tv_distance=mean_ci([t.payload["tv"] for t in trials]).mean,
                origin_max_over_uniform=mean_ci([t.payload["ratio"] for t in trials]).mean,
                surviving_source_coverage=mean_ci([t.payload["coverage"] for t in trials]).mean,
                paper_max_over_uniform=1.5,
            )
        table.add_note(
            "coverage is the fraction of round-0 sources represented among delivered walks; Lemma 4 predicts it "
            "stays near 1 - o(1) at the paper's churn rates."
        )
        result.add_table(table)
        result.add_finding(
            "Origins of surviving walks stay close to uniform under churn (TV distance comparable to the "
            "no-churn sampling noise), which is what allows a committee leader to treat received samples as "
            "uniform recruits."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
