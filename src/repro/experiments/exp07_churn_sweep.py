"""E7 -- How much churn can the scheme take? (Section 5's conjecture).

The paper proves the scheme works at O(n/log^{1+delta} n) churn per round and
conjectures that no random-walk-based scheme can survive Omega(n/log n) churn
(a constant fraction of nodes would be replaced before any walk mixes).  We
sweep the absolute churn rate from zero past n/log n and record availability,
retrieval success and walk survival, looking for the knee of the degradation
curve.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import mean_ci, success_fraction
from repro.analysis.tables import ResultTable
from repro.analysis.theory import PaperBounds
from repro.experiments.common import run_storage_trial
from repro.experiments.spec import register_experiment
from repro.sim.experiment import ExperimentConfig
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import GridSpec, Sweep

EXPERIMENT_ID = "E7"
TITLE = "Churn-rate sweep: where the protocol degrades"
CLAIM = (
    "The protocols tolerate churn up to O(n/log^{1+delta} n) per round; the paper conjectures a hard limit "
    "at o(n/log n) for any random-walk based scheme (Section 5)."
)

#: Churn expressed as multiples of n / ln(n)^{1+delta} -- 1.0 is the paper's limit (constant 4 omitted).
SWEEP_MULTIPLIERS = (0.0, 0.05, 0.125, 0.25, 0.5, 1.0)


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=256, seeds=(0, 1), measure_rounds=30, items=2, workers=workers)


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=1024, seeds=(0, 1, 2), measure_rounds=80, items=3, workers=workers)


def _rate_for(n: float, delta: float, multiplier: float) -> int:
    """Absolute churn for a multiplier of n/(ln n)^{1+delta} (constant 1, not 4)."""
    bounds = PaperBounds(int(n), delta)
    return int(round(multiplier * n / (bounds.log_n ** (1.0 + delta))))


def sweep_grid(config: ExperimentConfig) -> GridSpec:
    """The churn-rate grid for ``config``: one cell per *distinct* absolute rate.

    At small n several multipliers round to the same absolute churn rate;
    the grid runs each distinct rate once and ``run`` reuses the cell for
    every multiplier that maps to it.
    """
    rates = [_rate_for(config.n, config.delta, m) for m in SWEEP_MULTIPLIERS]
    unique_rates = list(dict.fromkeys(rates))
    return GridSpec.from_cells(
        [{"churn_rate": rate, "adversary": "none" if rate == 0 else "uniform"} for rate in unique_rates]
    )


def _trial(config: ExperimentConfig, seed: int) -> Dict[str, object]:
    payload = run_storage_trial(config, seed, retrievals_per_item=1)
    system = payload["system"]
    operations = payload["operations"]
    return {
        "availability": system.availability(),
        "success": [op.succeeded for op in operations],
        "walk_survival": system.soup.stats.survival_rate,
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
    grid=sweep_grid,
)
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run E7 and return its result tables."""
    config = quick_config() if config is None else config
    bounds = PaperBounds(config.n, config.delta)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=config,
        config_summary={
            "paper_limit_per_round": int(bounds.churn_limit()),
            "conjectured_ceiling_per_round": int(bounds.conjectured_churn_ceiling()),
        },
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: degradation vs churn rate (n={config.n})",
        columns=[
            "churn_multiplier",
            "churn_per_round",
            "fraction_of_n_per_round",
            "availability",
            "retrieval_success",
            "walk_survival",
        ],
    )
    with timed_experiment(result):
        rates = [_rate_for(config.n, config.delta, m) for m in SWEEP_MULTIPLIERS]
        grid = sweep_grid(config)
        sweep = Sweep(config, grid, _trial).run()
        cell_by_rate = {overrides["churn_rate"]: cell for overrides, cell in zip(grid.overrides(), sweep)}
        for multiplier, rate in zip(SWEEP_MULTIPLIERS, rates):
            trials = cell_by_rate[rate].trials
            availability = mean_ci([t.payload["availability"] for t in trials])
            successes = [s for t in trials for s in t.payload["success"]]
            success_rate, _, _ = success_fraction(successes)
            survival = mean_ci([t.payload["walk_survival"] for t in trials])
            table.add_row(
                churn_multiplier=multiplier,
                churn_per_round=rate,
                fraction_of_n_per_round=rate / config.n,
                availability=availability.mean,
                retrieval_success=success_rate,
                walk_survival=survival.mean,
            )
        table.add_note(
            "churn_multiplier is in units of n/(ln n)^{1+delta} per round; the paper's analysis covers the regime "
            "up to a constant times this value, and the Section-5 conjecture predicts collapse near n/ln n "
            f"(= multiplier ~{bounds.log_n ** config.delta:.1f} here)."
        )
        result.add_table(table)
        degraded = [r for r in table.rows if r["availability"] < 0.5]
        knee = degraded[0]["churn_multiplier"] if degraded else None
        result.add_finding(
            "Availability and retrieval success stay high at small multipliers and collapse as churn approaches a "
            f"constant fraction of n per round (first multiplier below 50% availability: {knee})."
        )
        result.add_finding(
            "Walk survival decays geometrically with churn x walk-length, which is the mechanism behind the "
            "conjectured n/log n ceiling: once a constant fraction of nodes turns over within one mixing time, "
            "most walks die before delivering a sample."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
