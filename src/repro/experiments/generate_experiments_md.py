"""Regenerate EXPERIMENTS.md from live experiment runs.

Usage::

    python -m repro.experiments.generate_experiments_md [--full] [--output PATH]

Runs every registered experiment (quick configuration by default, ``--full``
for the larger ones) through its :class:`~repro.experiments.spec.
ExperimentSpec`, collects their Markdown reports, and writes the
claims-vs-measured document.  The file checked into the repository was
produced by the quick configuration so it can be regenerated in a couple of
minutes.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import List, Optional

from repro.experiments.registry import all_experiments, get_experiment

__all__ = ["generate", "main"]

HEADER = """# EXPERIMENTS — paper claims vs. measured results

The paper (*Storage and Search in Dynamic Peer-to-Peer Networks*, SPAA 2013)
is a theory paper: it contains **no empirical tables or figures**.  Its
"evaluation" is the set of theorems and lemmas in Sections 3-4.  This file
therefore records, for every provable claim, the experiment that exercises it
on our simulator and the measured result.  Regenerate it with
``python -m repro.experiments.generate_experiments_md`` (add ``--full`` for
the larger configurations) or rerun individual experiments with
``repro-experiment run E<k> [--full] [--json-out DIR]`` (the old positional
form still works; ``resume DIR`` finishes an interrupted ``--json-out`` run).

**How to read the numbers.**  The theorems are asymptotic ("with high
probability", constants such as ``4 n / ln^{1+d} n``) and several are vacuous
at laptop-scale *n* (documented per experiment).  The reproduction therefore
checks the *shape* of each claim -- who wins, how the quantity scales with n
or churn, where degradation sets in -- rather than the literal constants.
All logarithms are natural, matching the paper.

Finite-size caveats (apply throughout): the paper's literal churn constant
``4n/ln^{1+d} n`` is ~25% of the network per round at n~500, a regime where
the asymptotic bounds are vacuous; experiments therefore sweep churn as a
fraction of that bound and report absolute rates.  Similarly Equation (4)'s
tree depth degenerates at small n, so the landmark trees target the
functional Theta(sqrt(n)) size directly (see DESIGN.md, "Substitutions").

---
"""


def generate(full: bool = False, experiment_ids: Optional[List[str]] = None) -> str:
    """Run the experiments through their specs and return the Markdown document."""
    parts = [HEADER]
    for eid in experiment_ids or all_experiments():
        spec = get_experiment(eid)
        start = time.time()
        result = spec.run(spec.config(full=full))
        parts.append(result.to_markdown())
        parts.append("")
        print(f"{eid} finished in {time.time() - start:.1f}s", flush=True)
    return "\n".join(parts) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the full experiment configurations")
    parser.add_argument("--output", default="EXPERIMENTS.md", help="output path")
    args = parser.parse_args(argv)
    document = generate(full=args.full)
    Path(args.output).write_text(document)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
