"""First-class experiment specifications and the decorator-based registry.

Historically each ``expNN_*`` module was an informal duck type -- ad-hoc
``TITLE`` / ``quick_config()`` / ``full_config()`` / ``run()`` symbols wired
into a hardcoded dict in ``registry.py``.  This module makes experiments
first-class: an :class:`ExperimentSpec` bundles everything the harness needs
to run, sweep, persist and document one experiment, and modules register
themselves by decorating their ``run`` function::

    @register_experiment(
        "E5",
        title=TITLE,
        claim=CLAIM,
        quick=quick_config,
        full=full_config,
        trial=_trial,
        grid=GRID,
    )
    def run(config=None):
        ...

The registry (:data:`REGISTRY`) is keyed by upper-case experiment id;
``repro.experiments.registry`` exposes it through :func:`get_experiment`,
:func:`run_experiment` and the ``repro-experiment`` CLI, all of which work
uniformly over specs instead of duck-typed modules.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from types import ModuleType
from typing import Any, Callable, Dict, Optional

from repro.sim.experiment import ExperimentConfig
from repro.sim.results import ExperimentResult
from repro.sim.runner import GridSpec

__all__ = ["ExperimentSpec", "register_experiment", "REGISTRY", "registered_ids"]

_ID_PATTERN = re.compile(r"^E\d+$")

#: The global experiment registry, keyed by upper-case id ("E1" .. "E12").
REGISTRY: Dict[str, "ExperimentSpec"] = {}


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment.

    Attributes
    ----------
    experiment_id:
        Canonical id (``"E5"``).
    title / claim:
        Human-readable title and the paper claim the experiment exercises.
    run_fn:
        The experiment body: ``run_fn(config) -> ExperimentResult``.
    quick / full:
        Config presets: ``quick(workers=1) -> ExperimentConfig`` for
        benchmarks/CI, ``full(workers=1)`` for EXPERIMENTS.md numbers.
    trial:
        The per-seed trial callable (``None`` for experiments whose run body
        is not a single trial map, e.g. multi-scheme comparisons).
    grid:
        The default sweep grid: a :class:`~repro.sim.runner.GridSpec`, a
        callable ``grid(config) -> GridSpec`` for config-dependent grids, or
        ``None`` when the experiment does not sweep.
    module:
        The defining module (handy for docs and benchmarks).
    """

    experiment_id: str
    title: str
    claim: str
    run_fn: Callable[..., ExperimentResult]
    quick: Callable[..., ExperimentConfig]
    full: Callable[..., ExperimentConfig]
    trial: Optional[Callable[..., Dict[str, Any]]] = None
    grid: Optional[Any] = None
    module: Optional[ModuleType] = field(default=None, compare=False, repr=False)

    # ------------------------------------------------------------------ configs
    def config(self, full: bool = False, workers: int = 1) -> ExperimentConfig:
        """The quick or full preset config with the ``workers`` knob applied."""
        preset = self.full if full else self.quick
        return preset(workers=workers)

    def grid_for(self, config: ExperimentConfig) -> Optional[GridSpec]:
        """Resolve the default grid for ``config`` (None when the spec has none)."""
        if self.grid is None:
            return None
        if isinstance(self.grid, GridSpec):
            return self.grid
        return self.grid(config)

    # ------------------------------------------------------------------ running
    def run(self, config: Optional[ExperimentConfig] = None, **kwargs: Any) -> ExperimentResult:
        """Run the experiment (quick preset when ``config`` is None)."""
        return self.run_fn(self.config() if config is None else config, **kwargs)

    @property
    def number(self) -> int:
        """The numeric part of the id, for ordering."""
        return int(self.experiment_id[1:])


def register_experiment(
    experiment_id: str,
    *,
    title: str,
    claim: str,
    quick: Callable[..., ExperimentConfig],
    full: Callable[..., ExperimentConfig],
    trial: Optional[Callable[..., Dict[str, Any]]] = None,
    grid: Optional[Any] = None,
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Class the decorated ``run`` function as experiment ``experiment_id``.

    Builds an :class:`ExperimentSpec` from the decorator arguments plus the
    decorated function, installs it in :data:`REGISTRY`, and attaches it to
    the function as ``run.spec``.  Re-registering an id from a *different*
    module is an error (two experiments claiming the same id); re-running the
    same module (``importlib.reload``) replaces the spec silently.
    """
    key = experiment_id.upper()
    if not _ID_PATTERN.match(key):
        raise ValueError(f"experiment id must look like 'E<number>', got {experiment_id!r}")

    def decorate(run_fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        existing = REGISTRY.get(key)
        if existing is not None and existing.run_fn.__module__ != run_fn.__module__:
            raise ValueError(
                f"experiment {key} already registered by {existing.run_fn.__module__}; "
                f"refusing duplicate from {run_fn.__module__}"
            )
        spec = ExperimentSpec(
            experiment_id=key,
            title=title,
            claim=claim,
            run_fn=run_fn,
            quick=quick,
            full=full,
            trial=trial,
            grid=grid,
            module=sys.modules.get(run_fn.__module__),
        )
        REGISTRY[key] = spec
        run_fn.spec = spec  # type: ignore[attr-defined]
        return run_fn

    return decorate


def registered_ids() -> list:
    """All registered experiment ids in numeric order."""
    return sorted(REGISTRY, key=lambda eid: int(eid[1:]))
