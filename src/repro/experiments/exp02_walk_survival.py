"""E2 -- Walk survival under churn (Lemma 2).

Lemma 2: at churn 4n/log^k n, there is a set S of at least
n - 4n/log^{(k-1)/2} n source nodes whose round-0 walks survive to the mixing
time with probability at least 1 - 1/log^{(k-1)/2} n.  We measure the overall
survival fraction and the fraction of sources above the paper's per-source
threshold, sweeping the churn rate.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional

from repro.analysis.stats import mean_ci
from repro.analysis.tables import ResultTable
from repro.analysis.theory import PaperBounds
from repro.experiments.common import run_soup_only
from repro.experiments.spec import register_experiment
from repro.sim.experiment import ExperimentConfig
from repro.sim.results import ExperimentResult, timed_experiment
from repro.sim.runner import GridSpec, Sweep

EXPERIMENT_ID = "E2"
TITLE = "Random-walk survival under churn"
CLAIM = (
    "At churn 4n/log^k n, at least n - 4n/log^{(k-1)/2} n sources have walk-survival probability "
    ">= 1 - 1/log^{(k-1)/2} n at the mixing time (Lemma 2)."
)

CHURN_FRACTIONS = (0.0, 0.02, 0.05, 0.1, 0.25)

#: Default sweep grid: one cell per churn fraction, paired with its adversary kind.
GRID = GridSpec.from_cells(
    [
        {"churn_fraction": fraction, "adversary": "none" if fraction == 0 else "uniform"}
        for fraction in CHURN_FRACTIONS
    ]
)


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=256, seeds=(0, 1), measure_rounds=0, workers=workers)


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=2048, seeds=(0, 1, 2, 3), measure_rounds=0, workers=workers)


def _trial(config: ExperimentConfig, seed: int, walks_per_source: int = 8, threshold: float = 0.0) -> Dict[str, float]:
    run_result = run_soup_only(config, seed, walks_per_source=walks_per_source)
    survival = run_result.survival
    naive = (1.0 - run_result.churn_rate / config.n) ** run_result.walk_length
    return {
        "overall": survival.overall_survival,
        "above": survival.fraction_above(threshold),
        "churn": run_result.churn_rate,
        "naive": naive,
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
    grid=GRID,
)
def run(config: Optional[ExperimentConfig] = None, walks_per_source: int = 8) -> ExperimentResult:
    """Run E2 and return its result tables."""
    config = quick_config() if config is None else config
    bounds = PaperBounds(config.n, config.delta)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=config,
        config_summary={"walks_per_source": walks_per_source},
    )
    threshold = max(0.0, bounds.survival_probability_lower_bound())
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: walk survival vs churn (n={config.n})",
        columns=[
            "churn_fraction",
            "churn_per_round",
            "overall_survival",
            "sources_above_threshold",
            "paper_survival_bound",
            "expected_no_churn_survival",
        ],
    )
    with timed_experiment(result):
        trial = partial(_trial, walks_per_source=walks_per_source, threshold=threshold)
        sweep = Sweep(config, GRID, trial).run()
        for fraction, cell in zip(CHURN_FRACTIONS, sweep):
            trials = cell.trials
            overall = mean_ci([t.payload["overall"] for t in trials])
            above = mean_ci([t.payload["above"] for t in trials])
            table.add_row(
                churn_fraction=fraction,
                churn_per_round=trials[0].payload["churn"],
                overall_survival=overall.mean,
                sources_above_threshold=above.mean,
                paper_survival_bound=threshold,
                expected_no_churn_survival=trials[0].payload["naive"],
            )
        table.add_note(
            "expected_no_churn_survival is the memoryless prediction (1 - churn/n)^walk_length; the measured "
            "overall survival should track it, confirming the adversary gains nothing beyond random deletion "
            "when it is oblivious."
        )
        result.add_table(table)
        result.add_finding(
            f"Survival decays smoothly with churn and closely follows the (1 - churn/n)^T prediction; "
            f"the paper's per-source bound ({threshold:.2f} at this n) is met at low churn fractions."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
