"""E8 -- Per-node bandwidth is polylogarithmic (Sections 1.1 and 2.1).

The model requires every node to send only polylog(n) bits per round; the
protocols achieve this because (i) each node forwards Theta(log^2 n) walk
tokens of O(log n) bits each, and (ii) committee/landmark/probe traffic per
stored or searched item touches only O(n^{1/2+delta} polylog n) nodes in
total, i.e. o(1) messages per node per round.  We measure, across a sweep of
network sizes, the protocol-message bits per node per round (from the
ledger), the walk-token traffic estimate, and compare against the flooding
baseline's per-node cost for one store.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import mean_ci
from repro.analysis.tables import ResultTable
from repro.baselines.flooding import FloodingStore
from repro.experiments.common import run_storage_trial
from repro.experiments.spec import register_experiment
from repro.sim.experiment import ExperimentConfig, build_system, run_trials
from repro.sim.results import ExperimentResult, timed_experiment

EXPERIMENT_ID = "E8"
TITLE = "Per-node traffic stays polylogarithmic in n"
CLAIM = (
    "Every node processes and sends only polylog(n) bits per round; storage/search operations involve "
    "O(n^{1/2+delta} polylog n) messages in total, versus Theta(n) for flooding (Sections 1.1, 2.1, 4)."
)

NETWORK_SIZES = (256, 512, 1024)


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=256, seeds=(0, 1), measure_rounds=20, items=2, workers=workers)


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=1024, seeds=(0, 1, 2), measure_rounds=40, items=3, workers=workers)


def _protocol_trial(config: ExperimentConfig, seed: int) -> Dict[str, float]:
    payload = run_storage_trial(config, seed, retrievals_per_item=1)
    system = payload["system"]
    bw = system.bandwidth_summary()
    rounds = max(1, system.round_index + 1)
    return {
        "protocol_bits_per_node_round": bw["total_bits"] / (config.n * rounds),
        "max_bits_any_node_round": bw["max_bits_per_node_round"],
        "walk_bits_per_node_round": bw["walk_bits_per_node_round_estimate"],
        "cap_bits": bw["cap_bits"],
        "violations": bw["violation_count"],
        "messages_total": bw["total_messages"],
    }


def _flooding_trial(config: ExperimentConfig, seed: int) -> Dict[str, float]:
    system = build_system(config, seed)
    system.run_rounds(2)
    flooding = FloodingStore(system.network, system.rng.protocol.spawn("flood"))
    origin = system.random_alive_node(require_samples=False)
    item = flooding.store(origin, bytes(config.item_size))
    rounds = 0
    while item.frontier and rounds < 4 * math.ceil(math.log(config.n)):
        report = system.network.begin_round()
        system.soup.advance_round(report, inject=False)
        flooding.step(report)
        system.network.end_round()
        rounds += 1
    return {
        "flood_messages": float(item.messages_sent),
        "flood_messages_per_node": item.messages_sent / config.n,
        "flood_rounds": float(rounds),
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_protocol_trial,
)
def run(config: Optional[ExperimentConfig] = None, sizes=NETWORK_SIZES) -> ExperimentResult:
    """Run E8 over a network-size sweep and return its result tables."""
    base = quick_config() if config is None else config
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=base,
        config_summary={"sizes": list(sizes)},
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: per-node traffic vs n",
        columns=[
            "n",
            "protocol_bits_per_node_round",
            "walk_bits_per_node_round",
            "polylog_cap_bits",
            "cap_violations",
            "flood_messages_per_node_per_store",
            "protocol_over_polylog",
        ],
    )
    with timed_experiment(result):
        for n in sizes:
            cfg = base.with_overrides(n=n)
            protocol_trials = run_trials(cfg, _protocol_trial)
            flood_trials = run_trials(cfg, _flooding_trial, seeds=cfg.seeds[:1])
            bits = mean_ci([t.payload["protocol_bits_per_node_round"] for t in protocol_trials])
            walk_bits = mean_ci([t.payload["walk_bits_per_node_round"] for t in protocol_trials])
            cap = protocol_trials[0].payload["cap_bits"]
            polylog = math.log2(n) ** 3
            table.add_row(
                n=n,
                protocol_bits_per_node_round=bits.mean,
                walk_bits_per_node_round=walk_bits.mean,
                polylog_cap_bits=cap,
                cap_violations=sum(t.payload["violations"] for t in protocol_trials),
                flood_messages_per_node_per_store=flood_trials[0].payload["flood_messages_per_node"],
                protocol_over_polylog=bits.mean / polylog,
            )
        table.add_note(
            "protocol_bits counts committee/landmark/store/probe messages (mean over all nodes and rounds); "
            "walk_bits is the per-node token-forwarding estimate Theta(log^2 n * log n) bits; flooding needs "
            "~degree messages per node for a single store, each of item size."
        )
        result.add_table(table)
        ratios = [row["protocol_over_polylog"] for row in table.rows]
        result.add_finding(
            f"Protocol traffic per node per round grows slower than log^3(n): the bits/log^3(n) ratio moves from "
            f"{ratios[0]:.3g} to {ratios[-1]:.3g} over the sweep (a polylog bound would keep it roughly constant "
            "or decreasing), and no node ever exceeded the configured polylog cap."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
