"""E3 -- Committee maintenance under churn (Algorithm 1, Theorem 2).

A committee of Theta(log n) near-random nodes is created and re-formed every
refresh period from the leader's fresh walk samples.  Theorem 2 says the
committee stays "good" (a (1-eps) fraction of its target size alive) for a
polynomial number of rounds whp.  We measure, over a long horizon and a churn
sweep: the fraction of observed rounds in which the committee is good, the
mean alive fraction, the number of successful re-formations, and -- as the
ablation the theorem implicitly contains -- the lifetime of an *unmaintained*
committee (no refresh), which dies in O(n/churn * log n / n) = O(log^{1+delta} n)
rounds.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import mean_ci
from repro.analysis.tables import ResultTable
from repro.analysis.theory import PaperBounds
from repro.core.committee import Committee
from repro.experiments.spec import register_experiment
from repro.sim.experiment import ExperimentConfig, build_system, run_trials
from repro.sim.results import ExperimentResult, timed_experiment

EXPERIMENT_ID = "E3"
TITLE = "Committee election and maintenance under churn"
CLAIM = (
    "A committee of Theta(log n) nodes can be elected and, by re-forming every 2*tau rounds from the "
    "leader's fresh samples, remains good for a polynomial number of rounds whp (Theorem 2)."
)

CHURN_FRACTIONS = (0.02, 0.05, 0.1)


def quick_config(workers: int = 1) -> ExperimentConfig:
    """Small configuration for benchmarks/CI."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=256, seeds=(0, 1), measure_rounds=60, workers=workers)


def full_config(workers: int = 1) -> ExperimentConfig:
    """Larger configuration for EXPERIMENTS.md numbers."""
    return ExperimentConfig(name=EXPERIMENT_ID, n=1024, seeds=(0, 1, 2, 3), measure_rounds=200, workers=workers)


def _trial(config: ExperimentConfig, seed: int, maintain: bool) -> Dict[str, float]:
    """One committee-longevity trial; ``maintain=False`` disables refresh (ablation)."""
    system = build_system(config, seed)
    system.warm_up(config.warmup_rounds)
    creator = system.random_alive_node()
    committee = Committee.create(system.ctx, creator_uid=creator, task="storage")
    good_rounds = 0
    alive_fractions = []
    death_round: Optional[int] = None
    for _ in range(config.measure_rounds):
        system.run_round()
        if maintain:
            committee.step(system.round_index)
        alive = len(committee.alive_members())
        alive_fractions.append(alive / max(1, system.params.committee_size))
        if committee.is_good():
            good_rounds += 1
        if alive == 0 and death_round is None:
            death_round = system.round_index
    return {
        "good_fraction": good_rounds / config.measure_rounds,
        "mean_alive_fraction": float(np.mean(alive_fractions)),
        "reformations": committee.refresh_successes,
        "death_round": float(death_round - committee.created_round) if death_round is not None else float("nan"),
        "survived": 1.0 if death_round is None else 0.0,
    }


@register_experiment(
    EXPERIMENT_ID,
    title=TITLE,
    claim=CLAIM,
    quick=quick_config,
    full=full_config,
    trial=_trial,
)
def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run E3 and return its result tables."""
    config = quick_config() if config is None else config
    bounds = PaperBounds(config.n, config.delta)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        config=config,
        config_summary={"committee_size": int(round(bounds.committee_size()))},
    )
    table = ResultTable(
        title=f"{EXPERIMENT_ID}: committee goodness over {config.measure_rounds} rounds (n={config.n})",
        columns=[
            "churn_fraction",
            "maintained",
            "good_round_fraction",
            "mean_alive_fraction",
            "reformations",
            "survived_fraction",
            "mean_rounds_to_death",
        ],
    )
    with timed_experiment(result):
        for fraction in CHURN_FRACTIONS:
            cfg = config.with_overrides(churn_fraction=fraction)
            for maintain in (True, False):
                trials = run_trials(cfg, partial(_trial, maintain=maintain))
                good = mean_ci([t.payload["good_fraction"] for t in trials])
                alive = mean_ci([t.payload["mean_alive_fraction"] for t in trials])
                reform = mean_ci([t.payload["reformations"] for t in trials])
                survived = mean_ci([t.payload["survived"] for t in trials])
                deaths = [t.payload["death_round"] for t in trials if not np.isnan(t.payload["death_round"])]
                table.add_row(
                    churn_fraction=fraction,
                    maintained=maintain,
                    good_round_fraction=good.mean,
                    mean_alive_fraction=alive.mean,
                    reformations=reform.mean,
                    survived_fraction=survived.mean,
                    mean_rounds_to_death=float(np.mean(deaths)) if deaths else float("nan"),
                )
        table.add_note(
            "maintained=no rows are the ablation: the same committee without Algorithm 1's refresh; the paper's "
            "claim is about the maintained rows."
        )
        result.add_table(table)
        maintained_rows = [r for r in table.rows if r["maintained"]]
        unmaintained_rows = [r for r in table.rows if not r["maintained"]]
        result.add_finding(
            f"Maintained committees survive the whole horizon in {np.mean([r['survived_fraction'] for r in maintained_rows]):.0%} "
            f"of trials, versus {np.mean([r['survived_fraction'] for r in unmaintained_rows]):.0%} without maintenance."
        )
        result.add_finding(
            "The refresh mechanism keeps the alive fraction near 1 between refreshes, matching Theorem 2's "
            "geometric-lifetime argument (failure probability per refresh is polynomially small)."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().to_text())
