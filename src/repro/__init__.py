"""repro -- reproduction of *Storage and Search in Dynamic Peer-to-Peer Networks*.

Augustine, Molla, Morsy, Pandurangan, Robinson, Upfal (SPAA 2013,
arXiv:1305.1121).  The library provides:

* a synchronous dynamic-network simulator with per-round d-regular expander
  topologies and oblivious churn adversaries (``repro.net``);
* the continuously running random-walk "soup" used for near-uniform node
  sampling under churn (``repro.walks``);
* the paper's storage and search protocols -- committee election and
  maintenance, landmark trees, replicated or erasure-coded storage, and
  O(log n)-round retrieval (``repro.core``);
* baseline schemes for comparison (``repro.baselines``);
* a simulation/experiment harness and the per-claim experiments
  (``repro.sim``, ``repro.experiments``, ``repro.analysis``).

Quickstart::

    from repro import P2PStorageSystem

    system = P2PStorageSystem(n=1024, churn_rate=8, seed=7)
    system.warm_up()
    item = system.store(b"hello, dynamic world")
    system.run_rounds(20)
    op = system.retrieve(item.item_id)
    system.run_until_finished(op)
    print(op.succeeded, op.latency, op.holder_ids)
"""

from repro.core.erasure import InformationDispersal
from repro.core.params import ProtocolParameters
from repro.core.protocol import P2PStorageSystem, RoundSummary
from repro.core.retrieval import RetrievalOperation
from repro.core.storage import StoredItem
from repro.net.churn import (
    AdaptiveAdversary,
    BurstChurn,
    NoChurn,
    SequentialSweepChurn,
    UniformRandomChurn,
    paper_churn_limit,
)
from repro.net.network import DynamicNetwork
from repro.walks.soup import WalkSoup

__version__ = "1.0.0"

__all__ = [
    "InformationDispersal",
    "ProtocolParameters",
    "P2PStorageSystem",
    "RoundSummary",
    "RetrievalOperation",
    "StoredItem",
    "AdaptiveAdversary",
    "BurstChurn",
    "NoChurn",
    "SequentialSweepChurn",
    "UniformRandomChurn",
    "paper_churn_limit",
    "DynamicNetwork",
    "WalkSoup",
    "__version__",
]
