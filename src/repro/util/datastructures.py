"""Small data structures used throughout the simulator.

The simulator repeatedly needs (i) uniform random sampling from a mutable set
of node identifiers in O(1), (ii) bounded per-round counters, and (iii) a
sliding-window history of recent samples.  These are deliberately simple,
pure-Python structures: they sit outside the vectorised hot loop (the random
walk soup) and their per-round work is polylog(n) per node.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Optional, TypeVar

import numpy as np

__all__ = [
    "IndexedSet",
    "SlidingWindow",
    "BoundedCounter",
    "RoundTimer",
]

T = TypeVar("T", bound=Hashable)


class IndexedSet(Generic[T]):
    """A set supporting O(1) add, discard, membership test and uniform sampling.

    Implemented as the classic list + position-map combination: elements live
    in a dense list, a dict maps each element to its index, and removal swaps
    the removed element with the last one.

    Examples
    --------
    >>> s = IndexedSet([1, 2, 3])
    >>> s.add(4)
    >>> 4 in s
    True
    >>> s.discard(2)
    >>> sorted(s)
    [1, 3, 4]
    """

    __slots__ = ("_items", "_pos")

    def __init__(self, items: Optional[Iterable[T]] = None) -> None:
        self._items: List[T] = []
        self._pos: Dict[T, int] = {}
        if items is not None:
            for item in items:
                self.add(item)

    def add(self, item: T) -> None:
        """Insert ``item``; no-op if already present."""
        if item in self._pos:
            return
        self._pos[item] = len(self._items)
        self._items.append(item)

    def discard(self, item: T) -> bool:
        """Remove ``item`` if present.  Returns True if it was removed."""
        idx = self._pos.pop(item, None)
        if idx is None:
            return False
        last = self._items.pop()
        if idx < len(self._items):
            self._items[idx] = last
            self._pos[last] = idx
        return True

    def sample(self, rng: np.random.Generator, k: int = 1, replace: bool = False) -> List[T]:
        """Draw ``k`` elements uniformly at random.

        With ``replace=False`` and ``k`` larger than the set size, every
        element is returned (a full sample) rather than raising.
        """
        if not self._items:
            return []
        if replace:
            idx = rng.integers(0, len(self._items), size=k)
            return [self._items[int(i)] for i in idx]
        k_eff = min(k, len(self._items))
        idx = rng.choice(len(self._items), size=k_eff, replace=False)
        return [self._items[int(i)] for i in idx]

    def sample_one(self, rng: np.random.Generator) -> Optional[T]:
        """Draw a single uniform element, or ``None`` if empty."""
        if not self._items:
            return None
        return self._items[int(rng.integers(0, len(self._items)))]

    def __contains__(self, item: object) -> bool:
        return item in self._pos

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedSet({self._items!r})"


class SlidingWindow(Generic[T]):
    """Keep the most recent ``maxlen`` items, discarding the oldest.

    Used by nodes to remember the samples (walk tokens) received over the
    last few rounds -- the paper's protocols only ever use samples from the
    current or previous round, so a small window suffices.
    """

    __slots__ = ("_window", "maxlen")

    def __init__(self, maxlen: int) -> None:
        if maxlen <= 0:
            raise ValueError(f"maxlen must be positive, got {maxlen}")
        self.maxlen = maxlen
        self._window: deque[T] = deque(maxlen=maxlen)

    def push(self, item: T) -> None:
        """Append an item, evicting the oldest if the window is full."""
        self._window.append(item)

    def extend(self, items: Iterable[T]) -> None:
        """Append many items in order."""
        self._window.extend(items)

    def items(self) -> List[T]:
        """Return a snapshot list (most recent last)."""
        return list(self._window)

    def clear(self) -> None:
        """Drop all items."""
        self._window.clear()

    def __len__(self) -> int:
        return len(self._window)

    def __iter__(self) -> Iterator[T]:
        return iter(self._window)


@dataclass
class BoundedCounter:
    """A counter with an upper bound, used for per-round forwarding caps.

    The paper caps the number of random-walk tokens a node forwards per round
    at ``2 h log n``; the walk soup uses this class to account for (and test)
    that cap.
    """

    limit: int
    count: int = 0

    def try_increment(self, amount: int = 1) -> bool:
        """Increment by ``amount`` if that stays within the limit.

        Returns True on success, False (and leaves the count unchanged) if
        the increment would exceed the limit.
        """
        if self.count + amount > self.limit:
            return False
        self.count += amount
        return True

    @property
    def remaining(self) -> int:
        """How many more increments fit under the limit."""
        return max(0, self.limit - self.count)

    def reset(self) -> None:
        """Reset the count to zero (start of a new round)."""
        self.count = 0


@dataclass
class RoundTimer:
    """Tracks events scheduled to fire every ``period`` rounds after ``start``.

    Algorithm 1 re-forms the committee every ``2 tau`` rounds; Algorithm 2
    rebuilds the landmark set every ``tau`` rounds.  This helper answers "is
    round r a firing round?" and "how many periods have elapsed?".
    """

    start: int
    period: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")

    def fires_at(self, round_index: int) -> bool:
        """True if the timer fires in ``round_index``."""
        delta = round_index - self.start - self.offset
        return delta >= 0 and delta % self.period == 0

    def periods_elapsed(self, round_index: int) -> int:
        """Number of complete periods elapsed by ``round_index`` (0 if before start)."""
        delta = round_index - self.start - self.offset
        if delta < 0:
            return 0
        return delta // self.period

    def next_fire(self, round_index: int) -> int:
        """The first round >= ``round_index`` at which the timer fires."""
        base = self.start + self.offset
        if round_index <= base:
            return base
        delta = round_index - base
        remainder = delta % self.period
        if remainder == 0:
            return round_index
        return round_index + (self.period - remainder)
