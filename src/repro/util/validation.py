"""Parameter-validation helpers shared across the library.

Every public constructor validates its inputs eagerly with these helpers so
that configuration errors surface as :class:`ValueError`/:class:`TypeError`
at construction time rather than as silent mis-simulation many rounds later.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = [
    "require",
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive_float",
    "check_probability",
    "check_even",
    "check_in_range",
    "check_choice",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_nonnegative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_positive_float(value: Any, name: str) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    try:
        fvalue = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from exc
    if not (fvalue > 0):
        raise ValueError(f"{name} must be positive, got {value}")
    return fvalue


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    try:
        fvalue = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from exc
    if not (0.0 <= fvalue <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return fvalue


def check_even(value: int, name: str) -> int:
    """Validate that ``value`` is an even integer (needed for perfect matchings)."""
    ivalue = check_positive_int(value, name)
    if ivalue % 2 != 0:
        raise ValueError(f"{name} must be even, got {value}")
    return ivalue


def check_in_range(value: Any, name: str, low: float, high: float) -> float:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    fvalue = float(value)
    if not (low <= fvalue <= high):
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")
    return fvalue


def check_choice(value: Any, name: str, choices: Sequence[Any] | Iterable[Any]) -> Any:
    """Validate that ``value`` is one of ``choices``."""
    allowed = list(choices)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
