"""Compare a benchmark summary against a committed baseline.

The benchmark harness (``benchmarks/conftest.py``) writes a one-file summary
of every benchmark that ran -- ``{"benchmarks": [{name, mean_seconds, ...}]}``
-- when ``$REPRO_BENCH_SUMMARY`` is set.  The repo keeps the current baseline
committed at the root (``BENCH_pr5.json``), so CI can detect perf regressions
by re-running the same benchmarks and comparing mean times here.

The comparison is deliberately coarse: CI machines are noisy, so only
slowdowns beyond a generous multiplicative threshold (default 1.25x) on
benchmarks that take long enough to time reliably (default >= 50 ms baseline
mean) count as regressions.  New benchmarks (absent from the baseline) and
removed ones are reported but never fail the check -- the baseline is
refreshed by committing a new summary, not by blocking the PR that adds a
benchmark.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

#: Multiplicative slowdown beyond which a benchmark counts as regressed.
DEFAULT_MAX_SLOWDOWN = 1.25

#: Baseline means below this floor (seconds) are too noisy to compare.
DEFAULT_MIN_SECONDS = 0.05

#: Environment override for the slowdown threshold (a float like ``1.5``).
MAX_SLOWDOWN_ENV = "REPRO_BENCH_MAX_SLOWDOWN"


@dataclass
class BenchComparison:
    """Outcome of comparing a current benchmark summary to a baseline."""

    max_slowdown: float
    min_seconds: float
    #: ``(name, baseline_mean, current_mean, ratio)`` for regressed benchmarks.
    regressions: List[tuple] = field(default_factory=list)
    #: Human-readable report lines, one per benchmark plus notes.
    lines: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def report(self) -> str:
        return "\n".join(self.lines)


def _entries(doc: Mapping) -> Dict[str, Mapping]:
    """Index a summary document's benchmark entries by name."""
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ValueError("summary document has no 'benchmarks' list")
    by_name: Dict[str, Mapping] = {}
    for entry in benchmarks:
        name = entry.get("name")
        mean = entry.get("mean_seconds")
        if not isinstance(name, str) or not isinstance(mean, (int, float)):
            raise ValueError(f"malformed benchmark entry: {entry!r}")
        by_name[name] = entry
    return by_name


def resolve_max_slowdown(default: float = DEFAULT_MAX_SLOWDOWN) -> float:
    """The slowdown threshold, honouring $REPRO_BENCH_MAX_SLOWDOWN."""
    raw = os.environ.get(MAX_SLOWDOWN_ENV, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"{MAX_SLOWDOWN_ENV} must be a float, got {raw!r}") from exc
    if value < 1.0:
        raise ValueError(f"{MAX_SLOWDOWN_ENV} must be >= 1.0, got {value}")
    return value


def compare(
    baseline_doc: Mapping,
    current_doc: Mapping,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> BenchComparison:
    """Compare two benchmark summary documents on ``mean_seconds``.

    A benchmark regresses when it appears in both documents, its baseline
    mean is at least ``min_seconds``, and its current mean exceeds
    ``max_slowdown`` times the baseline mean.
    """
    baseline = _entries(baseline_doc)
    current = _entries(current_doc)
    result = BenchComparison(max_slowdown=max_slowdown, min_seconds=min_seconds)

    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            result.lines.append(f"SKIP {name}: not in current run (removed benchmark?)")
            continue
        if name not in baseline:
            result.lines.append(f"NEW  {name}: no baseline entry, not compared")
            continue
        base_mean = float(baseline[name]["mean_seconds"])
        cur_mean = float(current[name]["mean_seconds"])
        if base_mean < min_seconds:
            result.lines.append(
                f"SKIP {name}: baseline mean {base_mean * 1e3:.1f} ms below "
                f"{min_seconds * 1e3:.0f} ms comparison floor"
            )
            continue
        ratio = cur_mean / base_mean if base_mean > 0 else float("inf")
        verdict = "FAIL" if ratio > max_slowdown else "OK  "
        result.lines.append(
            f"{verdict} {name}: {base_mean:.3f}s -> {cur_mean:.3f}s ({ratio:.2f}x)"
        )
        if ratio > max_slowdown:
            result.regressions.append((name, base_mean, cur_mean, ratio))

    status = "PASS" if result.ok else f"FAIL ({len(result.regressions)} regression(s))"
    result.lines.append(
        f"benchmark comparison {status}: threshold {max_slowdown:.2f}x, "
        f"floor {min_seconds * 1e3:.0f} ms"
    )
    return result


def compare_files(
    baseline_path: Union[str, Path],
    current_path: Union[str, Path],
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> BenchComparison:
    """Load two summary JSON files and :func:`compare` them."""
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline_doc = json.load(fh)
    with open(current_path, "r", encoding="utf-8") as fh:
        current_doc = json.load(fh)
    return compare(baseline_doc, current_doc, max_slowdown, min_seconds)


def main(argv: Sequence[str] = None) -> int:
    """CLI entry point: exit 1 when any benchmark regressed."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Compare a benchmark summary JSON against the committed baseline."
    )
    parser.add_argument("--baseline", required=True, help="committed baseline summary JSON")
    parser.add_argument("--current", required=True, help="freshly produced summary JSON")
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=None,
        help=f"slowdown threshold (default {DEFAULT_MAX_SLOWDOWN}, env {MAX_SLOWDOWN_ENV})",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="ignore benchmarks whose baseline mean is below this many seconds",
    )
    args = parser.parse_args(argv)
    threshold = (
        resolve_max_slowdown() if args.max_slowdown is None else float(args.max_slowdown)
    )
    result = compare_files(args.baseline, args.current, threshold, args.min_seconds)
    print(result.report())
    return 0 if result.ok else 1


compare_bench_summaries = compare

if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
