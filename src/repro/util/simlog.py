"""Lightweight structured logging for simulations.

Standard-library logging is perfectly adequate for the library code, but
experiments additionally want a cheap, structured, in-memory event trace so
that tests and analysis can assert on *what happened* (e.g. "the committee
re-formed in round 40") without parsing log text.  :class:`SimulationLog`
provides both: events are appended to a ring buffer and optionally echoed to
a :mod:`logging` logger.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional

__all__ = ["SimEvent", "SimulationLog", "get_logger"]

_LOGGER_NAME = "repro"


def get_logger(child: str | None = None) -> logging.Logger:
    """Return the library logger (optionally a named child)."""
    name = _LOGGER_NAME if child is None else f"{_LOGGER_NAME}.{child}"
    return logging.getLogger(name)


@dataclass(frozen=True)
class SimEvent:
    """A single structured event emitted during a simulation.

    Attributes
    ----------
    round_index:
        Simulation round in which the event occurred.
    category:
        Short machine-readable category (``"committee"``, ``"storage"``, ...).
    message:
        Human-readable description.
    data:
        Arbitrary structured payload for analysis.
    """

    round_index: int
    category: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # The dataclass is frozen but a caller-supplied dict is aliased, so
        # mutating it afterwards would silently rewrite recorded history.
        # Copy defensively (via object.__setattr__, the frozen-field escape
        # hatch) so every event owns its payload.
        object.__setattr__(self, "data", dict(self.data))


class SimulationLog:
    """In-memory event trace with bounded size.

    Parameters
    ----------
    maxlen:
        Maximum number of retained events (oldest dropped first).
    echo:
        When True, events are also emitted at DEBUG level on the library logger.
    """

    def __init__(self, maxlen: int = 100_000, echo: bool = False) -> None:
        self._events: Deque[SimEvent] = deque(maxlen=maxlen)
        self._echo = echo
        self._logger = get_logger("sim")

    def record(
        self,
        round_index: int,
        category: str,
        message: str,
        **data: Any,
    ) -> SimEvent:
        """Append an event and return it."""
        event = SimEvent(round_index=round_index, category=category, message=message, data=dict(data))
        self._events.append(event)
        if self._echo:
            self._logger.debug("[r=%d] %s: %s %s", round_index, category, message, data)
        return event

    def events(self, category: Optional[str] = None) -> List[SimEvent]:
        """All retained events, optionally filtered by category."""
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def categories(self) -> List[str]:
        """Distinct categories seen so far."""
        return sorted({e.category for e in self._events})

    def count(self, category: Optional[str] = None) -> int:
        """Number of retained events (optionally of one category)."""
        if category is None:
            return len(self._events)
        return sum(1 for e in self._events if e.category == category)

    def last(self, category: Optional[str] = None) -> Optional[SimEvent]:
        """Most recent event (optionally of one category)."""
        if category is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.category == category:
                return event
        return None

    def clear(self) -> None:
        """Drop all retained events."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterable[SimEvent]:
        return iter(self._events)
