"""Shared utilities: RNG management, validation, data structures, accounting."""

from repro.util.benchcompare import BenchComparison, compare_bench_summaries
from repro.util.bitbudget import BitBudgetLedger, MessageCost
from repro.util.datastructures import BoundedCounter, IndexedSet, RoundTimer, SlidingWindow
from repro.util.rng import RngStream, SplitRng, derive_seed, make_rng
from repro.util.serialization import dumps_artifact, dumps_compact, jsonify
from repro.util.simlog import SimEvent, SimulationLog, get_logger
from repro.util.validation import (
    check_choice,
    check_even,
    check_in_range,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    require,
)

__all__ = [
    "BenchComparison",
    "compare_bench_summaries",
    "BitBudgetLedger",
    "MessageCost",
    "BoundedCounter",
    "IndexedSet",
    "RoundTimer",
    "SlidingWindow",
    "RngStream",
    "SplitRng",
    "derive_seed",
    "make_rng",
    "dumps_artifact",
    "dumps_compact",
    "jsonify",
    "SimEvent",
    "SimulationLog",
    "get_logger",
    "check_choice",
    "check_even",
    "check_in_range",
    "check_nonnegative_int",
    "check_positive_float",
    "check_positive_int",
    "check_probability",
    "require",
]
