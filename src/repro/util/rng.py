"""Seeded random-number-generator management.

The paper's adversary is *oblivious*: it commits to the entire churn and
topology sequence before round 0 and, in particular, never sees the random
choices made by the protocol.  We enforce obliviousness *by construction* by
deriving two independent RNG streams from a single experiment seed:

* the **adversary stream** drives churn schedules and per-round topologies,
* the **protocol stream** drives every random choice made by the algorithm
  (walk steps, committee invitations, landmark child selection, ...).

Both streams are created eagerly from the root seed, so nothing the protocol
does can influence the adversary's draws and vice versa.  Sub-streams can be
spawned for individual components (each data item, each walk soup, each
baseline) so that adding a component never perturbs the draws of another --
this keeps experiments reproducible when composed.

All generators are :class:`numpy.random.Generator` instances backed by
PCG64; spawning uses :class:`numpy.random.SeedSequence` so the derived
streams are statistically independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = [
    "RngStream",
    "SplitRng",
    "make_rng",
    "derive_seed",
]


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy :class:`~numpy.random.Generator` seeded with ``seed``.

    ``None`` gives OS entropy; anything else is reproducible.
    """
    return np.random.default_rng(seed)


def derive_seed(root_seed: int, *keys: int | str) -> int:
    """Derive a child seed deterministically from ``root_seed`` and ``keys``.

    The keys are hashed into the spawn key of a :class:`numpy.random.SeedSequence`
    so different key tuples yield independent streams.  Strings are folded to
    integers via a stable (non-salted) hash.
    """
    folded: list[int] = []
    for key in keys:
        if isinstance(key, str):
            acc = 0
            for ch in key:
                acc = (acc * 131 + ord(ch)) % (2**32)
            folded.append(acc)
        else:
            folded.append(int(key) % (2**32))
    seq = np.random.SeedSequence(entropy=root_seed, spawn_key=tuple(folded))
    return int(seq.generate_state(1, dtype=np.uint64)[0])


@dataclass
class RngStream:
    """A named, spawnable RNG stream.

    Parameters
    ----------
    seed:
        Root seed for this stream.
    name:
        Human-readable label used when spawning children (purely cosmetic,
        but it makes debugging a mis-seeded experiment much easier).
    """

    seed: int
    name: str = "stream"
    _seq: np.random.SeedSequence = field(init=False, repr=False)
    _gen: np.random.Generator = field(init=False, repr=False)
    _children: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        self._seq = np.random.SeedSequence(self.seed)
        self._gen = np.random.Generator(np.random.PCG64(self._seq))

    @property
    def generator(self) -> np.random.Generator:
        """The underlying NumPy generator."""
        return self._gen

    def spawn(self, name: str | None = None) -> "RngStream":
        """Spawn an independent child stream.

        Each call advances an internal counter, so the i-th spawn of a stream
        is always the same regardless of what was drawn from the parent.
        """
        child_seq = self._seq.spawn(self._children + 1)[self._children]
        self._children += 1
        child_seed = int(child_seq.generate_state(1, dtype=np.uint64)[0])
        return RngStream(child_seed, name=name or f"{self.name}/{self._children}")

    # -- convenience passthroughs -------------------------------------------------
    def integers(self, *args, **kwargs):
        """Proxy for :meth:`numpy.random.Generator.integers`."""
        return self._gen.integers(*args, **kwargs)

    def random(self, *args, **kwargs):
        """Proxy for :meth:`numpy.random.Generator.random`."""
        return self._gen.random(*args, **kwargs)

    def choice(self, *args, **kwargs):
        """Proxy for :meth:`numpy.random.Generator.choice`."""
        return self._gen.choice(*args, **kwargs)

    def permutation(self, *args, **kwargs):
        """Proxy for :meth:`numpy.random.Generator.permutation`."""
        return self._gen.permutation(*args, **kwargs)

    def shuffle(self, *args, **kwargs):
        """Proxy for :meth:`numpy.random.Generator.shuffle`."""
        return self._gen.shuffle(*args, **kwargs)

    def exponential(self, *args, **kwargs):
        """Proxy for :meth:`numpy.random.Generator.exponential`."""
        return self._gen.exponential(*args, **kwargs)


@dataclass
class SplitRng:
    """Adversary / protocol RNG split for one experiment.

    Obliviousness of the adversary is guaranteed because both streams are
    derived from the root seed *before* the simulation starts and never
    cross-pollinate.

    Examples
    --------
    >>> split = SplitRng(seed=7)
    >>> a = split.adversary.integers(0, 100)
    >>> p = split.protocol.integers(0, 100)
    >>> split2 = SplitRng(seed=7)
    >>> int(a) == int(split2.adversary.integers(0, 100))
    True
    """

    seed: int
    adversary: RngStream = field(init=False)
    protocol: RngStream = field(init=False)
    analysis: RngStream = field(init=False)

    def __post_init__(self) -> None:
        self.adversary = RngStream(derive_seed(self.seed, "adversary"), name="adversary")
        self.protocol = RngStream(derive_seed(self.seed, "protocol"), name="protocol")
        self.analysis = RngStream(derive_seed(self.seed, "analysis"), name="analysis")

    def seeds(self) -> Iterator[int]:
        """Yield the three derived root seeds (adversary, protocol, analysis)."""
        yield self.adversary.seed
        yield self.protocol.seed
        yield self.analysis.seed
