"""JSON plumbing shared by every serializable result object.

The experiment layer persists configs, trial payloads, sweep cells and whole
experiment reports as JSON (see ``repro.sim.store``).  Trial payloads are
produced by numerical code, so they routinely contain numpy scalars and
arrays; :func:`jsonify` normalises all of that into plain Python containers
*deterministically*, which is what lets a resumed sweep write artifacts that
are byte-identical to an uninterrupted run.

Two dump flavours are provided on purpose:

* :func:`dumps_compact` -- single-line, for log lines and report headers;
* :func:`dumps_artifact` -- indented with a trailing newline, for files.

Both preserve insertion order (no ``sort_keys``): the objects being dumped
build their dicts in a deterministic order already, and keeping that order
makes the artifacts readable in the same order as the in-memory objects.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

__all__ = ["jsonify", "dumps_compact", "dumps_artifact"]


def jsonify(value: Any) -> Any:
    """Normalise ``value`` into plain JSON-serialisable Python data.

    Handles numpy scalars/arrays, tuples (become lists) and nested
    containers.  Anything else that JSON cannot represent raises
    ``TypeError`` eagerly -- a payload that cannot be persisted should fail
    at the experiment, not when someone later tries to resume a sweep.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return jsonify(value.tolist())
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    raise TypeError(f"cannot serialise {type(value).__name__!r} value {value!r} to JSON")


def dumps_compact(value: Any) -> str:
    """One-line JSON used in rendered reports and log lines."""
    return json.dumps(jsonify(value), ensure_ascii=False, separators=(", ", ": "))


def dumps_artifact(value: Any) -> str:
    """Deterministic indented JSON used for on-disk artifacts."""
    return json.dumps(jsonify(value), ensure_ascii=False, indent=2) + "\n"
