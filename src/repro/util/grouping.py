"""Vectorised group-by for flat integer-keyed columns.

The walk soup hands deliveries around as struct-of-arrays batches (parallel
``destination_uids`` / ``source_uids`` / ``birth_rounds`` columns).  Several
consumers -- the columnar :class:`repro.walks.sampler.NodeSampler`, the
``SampleDelivery.by_destination`` view -- need the same operation: group row
indices by an integer key column without a Python-level loop over rows.

:class:`GroupIndex` does it once per column with a single stable ``argsort``
plus ``np.unique`` boundary extraction; every per-key lookup afterwards is a
``searchsorted`` and an array slice.  Stability matters: within one key the
original row order (delivery order) is preserved, which the protocols rely on
for seed-identical sample draws.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["GroupIndex", "group_lists_by_key"]


class GroupIndex:
    """Row indices of a flat array grouped by an integer key column.

    Built with one stable ``argsort``; ``rows_of`` / ``counts_of`` then answer
    per-key queries with ``searchsorted`` instead of Python dict probes.
    """

    __slots__ = ("order", "keys", "starts", "ends")

    def __init__(self, key_column: np.ndarray) -> None:
        keys = np.asarray(key_column)
        self.order = np.argsort(keys, kind="stable")
        sorted_keys = keys[self.order]
        self.keys, self.starts = np.unique(sorted_keys, return_index=True)
        if self.keys.size:
            self.ends = np.append(self.starts[1:], sorted_keys.size)
        else:
            self.ends = self.starts

    @property
    def n_groups(self) -> int:
        """Number of distinct keys."""
        return int(self.keys.size)

    def counts(self) -> np.ndarray:
        """Group sizes, aligned with :attr:`keys`."""
        return self.ends - self.starts

    def rows_of(self, key: int) -> np.ndarray:
        """Original row indices of ``key``'s group, in original row order."""
        i = int(np.searchsorted(self.keys, key))
        if i >= self.keys.size or self.keys[i] != key:
            return np.empty(0, dtype=self.order.dtype)
        return self.order[self.starts[i] : self.ends[i]]

    def counts_of(self, query_keys: np.ndarray) -> np.ndarray:
        """Group size of each key in ``query_keys`` (0 for absent keys)."""
        query = np.asarray(query_keys, dtype=self.keys.dtype if self.keys.size else np.int64)
        if query.size == 0:
            return np.empty(0, dtype=np.int64)
        if self.keys.size == 0:
            return np.zeros(query.size, dtype=np.int64)
        idx = np.searchsorted(self.keys, query)
        idx_clipped = np.minimum(idx, self.keys.size - 1)
        found = self.keys[idx_clipped] == query
        out = np.where(found, (self.ends - self.starts)[idx_clipped], 0)
        return out.astype(np.int64)


def group_lists_by_key(key_column: np.ndarray, value_column: np.ndarray) -> Dict[int, List[int]]:
    """Group ``value_column`` entries by ``key_column`` into a dict of lists.

    Keys appear in first-occurrence order (matching the dict a Python
    ``setdefault`` loop over the rows would build); values within one key keep
    their original row order.
    """
    keys = np.asarray(key_column)
    if keys.size == 0:
        return {}
    index = GroupIndex(keys)
    values = np.asarray(value_column)
    # First-occurrence order of each key among the original rows.
    first_rows = np.empty(index.n_groups, dtype=np.int64)
    np.minimum.reduceat(index.order, index.starts, out=first_rows)
    out: Dict[int, List[int]] = {}
    for g in np.argsort(first_rows, kind="stable"):
        rows = index.order[index.starts[g] : index.ends[g]]
        out[int(index.keys[g])] = values[rows].tolist()
    return out
