"""Per-node bandwidth accounting.

The paper's scalability requirement is that every node processes and sends
only **polylogarithmic in n** bits per round (Section 2.1).  The flooding
baseline, by contrast, sends Theta(n) messages network-wide.  To make this
difference measurable (experiment E8) every protocol charges its messages to
a :class:`BitBudgetLedger`, which records per-node per-round bit counts and
can report maxima, means, and violations of a configured polylog cap.

Message sizes are approximated from their logical content: node identifiers
cost ``ceil(log2(id_space))`` bits, item identifiers likewise, payload bytes
cost 8 bits each, and a small constant header is added per message.  The
absolute constants do not matter for the paper's claims; the *growth with n*
does, and that is what the experiments check.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "MessageCost",
    "BitBudgetLedger",
]

#: Fixed per-message header cost in bits (round number, message type tag).
HEADER_BITS = 64


@dataclass(frozen=True)
class MessageCost:
    """Breakdown of the bit cost of one logical message.

    Attributes
    ----------
    ids:
        Number of node/item identifiers carried by the message.
    payload_bytes:
        Raw payload bytes (e.g. a stored data-item fragment).
    id_bits:
        Bits charged per identifier (``ceil(log2(id_space))``).
    """

    ids: int = 0
    payload_bytes: int = 0
    id_bits: int = 64

    @property
    def bits(self) -> int:
        """Total bit cost including the fixed header."""
        return HEADER_BITS + self.ids * self.id_bits + 8 * self.payload_bytes


class BitBudgetLedger:
    """Records the bits sent by every node in every round.

    Parameters
    ----------
    n:
        Stable network size; used both for identifier sizing and for the
        default polylog cap.
    polylog_exponent:
        The cap checked by :meth:`violations` is
        ``cap_constant * log2(n) ** polylog_exponent`` bits per node per
        round.  The paper allows any polylog; the default exponent of 3 is
        generous but still distinguishes the protocols from flooding.
    cap_constant:
        Multiplicative constant of the cap.
    enabled:
        When False, charging is a no-op (used by performance-sensitive
        benchmark runs that do not need accounting).
    """

    def __init__(
        self,
        n: int,
        polylog_exponent: float = 3.0,
        cap_constant: float = 64.0,
        enabled: bool = True,
    ) -> None:
        if n <= 1:
            raise ValueError(f"n must be > 1, got {n}")
        self.n = n
        self.id_bits = max(1, math.ceil(math.log2(n))) + 32  # uid space is larger than n
        self.polylog_exponent = float(polylog_exponent)
        self.cap_constant = float(cap_constant)
        self.enabled = enabled
        #: round -> node uid -> bits sent
        self._per_round: Dict[int, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._total_bits = 0
        self._total_messages = 0

    # -- charging ------------------------------------------------------------------
    def charge(
        self,
        round_index: int,
        sender: int,
        ids: int = 0,
        payload_bytes: int = 0,
    ) -> int:
        """Charge one message sent by ``sender`` in ``round_index``.

        Returns the number of bits charged.
        """
        if not self.enabled:
            return 0
        cost = MessageCost(ids=ids, payload_bytes=payload_bytes, id_bits=self.id_bits)
        bits = cost.bits
        self._per_round[round_index][sender] += bits
        self._total_bits += bits
        self._total_messages += 1
        return bits

    def charge_many(
        self,
        round_index: int,
        sender: int,
        count: int,
        ids_each: int = 0,
        payload_bytes_each: int = 0,
    ) -> int:
        """Charge ``count`` identical messages at once (bulk path for the walk soup)."""
        if not self.enabled or count <= 0:
            return 0
        cost = MessageCost(ids=ids_each, payload_bytes=payload_bytes_each, id_bits=self.id_bits)
        bits = cost.bits * count
        self._per_round[round_index][sender] += bits
        self._total_bits += bits
        self._total_messages += count
        return bits

    # -- reporting -----------------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Total bits charged across all nodes and rounds."""
        return self._total_bits

    @property
    def total_messages(self) -> int:
        """Total messages charged across all nodes and rounds."""
        return self._total_messages

    def cap_bits(self) -> float:
        """The per-node per-round polylog cap in bits."""
        return self.cap_constant * math.log2(self.n) ** self.polylog_exponent

    def per_node_bits(self, round_index: int) -> Dict[int, int]:
        """Bits sent by each node in ``round_index`` (missing nodes sent zero)."""
        return dict(self._per_round.get(round_index, {}))

    def max_bits_per_node_round(self) -> int:
        """The largest number of bits any single node sent in any single round."""
        best = 0
        for per_node in self._per_round.values():
            if per_node:
                best = max(best, max(per_node.values()))
        return best

    def mean_bits_per_node_round(self) -> float:
        """Mean bits per node per round, averaged over rounds with any traffic."""
        if not self._per_round:
            return 0.0
        totals = [sum(per_node.values()) / self.n for per_node in self._per_round.values()]
        return sum(totals) / len(totals)

    def violations(self, cap_bits: Optional[float] = None) -> List[Tuple[int, int, int]]:
        """Return (round, node, bits) triples exceeding the polylog cap."""
        cap = self.cap_bits() if cap_bits is None else cap_bits
        out: List[Tuple[int, int, int]] = []
        for round_index, per_node in self._per_round.items():
            for node, bits in per_node.items():
                if bits > cap:
                    out.append((round_index, node, bits))
        return out

    def rounds(self) -> Iterable[int]:
        """Rounds that saw any charged traffic."""
        return sorted(self._per_round.keys())

    def summary(self) -> Dict[str, float]:
        """A small dict summary used by the experiment tables."""
        return {
            "total_bits": float(self._total_bits),
            "total_messages": float(self._total_messages),
            "max_bits_per_node_round": float(self.max_bits_per_node_round()),
            "mean_bits_per_node_round": float(self.mean_bits_per_node_round()),
            "cap_bits": float(self.cap_bits()),
            "violation_count": float(len(self.violations())),
        }

    def reset(self) -> None:
        """Forget all charges."""
        self._per_round.clear()
        self._total_bits = 0
        self._total_messages = 0
