"""Rabin's Information Dispersal Algorithm (IDA) over GF(2^8).

Section 4.4 of the paper replaces full replication with erasure coding: a
data item ``I`` of length ``|I|`` is split into ``L`` pieces of length
``|I| / K`` each such that *any* ``K`` pieces suffice to reconstruct ``I``;
the space blow-up is ``L / K``.  The committee stores one piece per member
(L = h log n) and the handover leader reconstructs and re-disperses the item
every refresh.

This module implements the coder itself:

* arithmetic in the finite field GF(256) via log/antilog tables (the standard
  Rijndael polynomial x^8 + x^4 + x^3 + x + 1), vectorised with NumPy;
* a **systematic Cauchy-style encoding matrix**: the first ``K`` rows are the
  identity (so the first ``K`` pieces are literal chunks of the data, which
  makes the common no-loss path free), the remaining ``L - K`` rows are rows
  of a Vandermonde matrix chosen so that every ``K x K`` submatrix of the
  full matrix is invertible;
* :func:`encode` / :func:`decode` operating on ``bytes``.

The implementation is self-contained (no external erasure-coding library)
and intentionally favours clarity over raw throughput: items in the
simulator are small and coding happens only at stores and committee
handovers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["Piece", "InformationDispersal", "gf_mul", "gf_inv", "gf_matmul"]

_PRIMITIVE_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1 (AES field)

# ---------------------------------------------------------------------------- GF(256)
_EXP = np.zeros(512, dtype=np.uint8)
_LOG = np.zeros(256, dtype=np.int32)


def _slow_mul(a: int, b: int) -> int:
    """Bitwise ("Russian peasant") multiplication in GF(256); used only to build tables."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= _PRIMITIVE_POLY
    return result


def _build_tables() -> None:
    # 0x03 is a primitive element of GF(256) with the AES polynomial
    # (0x02 is not -- it generates a subgroup of order 51).
    x = 1
    for i in range(255):
        _EXP[i] = x
        _LOG[x] = i
        x = _slow_mul(x, 0x03)
    # Duplicate so summed logs (up to 508) need no modulo reduction.
    for i in range(255, 512):
        _EXP[i] = _EXP[i - 255]


_build_tables()


def gf_mul(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray:
    """Element-wise multiplication in GF(256) (vectorised, broadcasting)."""
    a_arr = np.asarray(a, dtype=np.uint8)
    b_arr = np.asarray(b, dtype=np.uint8)
    shape = np.broadcast(a_arr, b_arr).shape
    a_b = np.broadcast_to(a_arr, shape)
    b_b = np.broadcast_to(b_arr, shape)
    result = np.zeros(shape, dtype=np.uint8)
    mask = (a_b != 0) & (b_b != 0)
    if np.any(mask):
        result[mask] = _EXP[_LOG[a_b[mask]] + _LOG[b_b[mask]]]
    return result


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(256); raises on zero."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(_EXP[255 - _LOG[a]])


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256) of uint8 matrices ``a (m,k)`` and ``b (k,n)``."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError("inner dimensions do not match")
    out = np.zeros((m, n), dtype=np.uint8)
    for i in range(k):
        col = a[:, i][:, None]  # (m, 1)
        row = b[i, :][None, :]  # (1, n)
        out ^= gf_mul(col, row)
    return out


def _gf_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` over GF(256) by Gaussian elimination.

    ``matrix`` is (k, k) uint8, ``rhs`` is (k, n) uint8; returns x of shape (k, n).
    Raises :class:`np.linalg.LinAlgError` if the matrix is singular.
    """
    k = matrix.shape[0]
    aug = np.concatenate([matrix.astype(np.uint8).copy(), rhs.astype(np.uint8).copy()], axis=1)
    for col in range(k):
        pivot = None
        for row in range(col, k):
            if aug[row, col] != 0:
                pivot = row
                break
        if pivot is None:
            raise np.linalg.LinAlgError("singular matrix over GF(256)")
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        inv = gf_inv(int(aug[col, col]))
        aug[col] = gf_mul(aug[col], inv)
        for row in range(k):
            if row != col and aug[row, col] != 0:
                factor = int(aug[row, col])
                aug[row] ^= gf_mul(aug[col], factor)
    return aug[:, k:]


# ---------------------------------------------------------------------------- IDA
@dataclass(frozen=True)
class Piece:
    """One dispersed piece of an item.

    Attributes
    ----------
    index:
        Row index of the encoding matrix that produced this piece (0-based;
        indices < K are systematic chunks of the original data).
    data:
        Piece payload.
    original_length:
        Byte length of the original item (needed to strip padding).
    total_pieces, required_pieces:
        The (L, K) parameters the piece was encoded with.
    """

    index: int
    data: bytes
    original_length: int
    total_pieces: int
    required_pieces: int

    @property
    def size_bytes(self) -> int:
        """Length of this piece's payload."""
        return len(self.data)


class InformationDispersal:
    """Rabin IDA encoder/decoder with parameters ``(total_pieces L, required_pieces K)``.

    Any ``K`` of the ``L`` produced pieces reconstruct the item exactly.
    ``L`` must not exceed 255 + K (row identifiers live in GF(256)).

    Examples
    --------
    >>> ida = InformationDispersal(total_pieces=7, required_pieces=3)
    >>> pieces = ida.encode(b"the quick brown fox jumps over the lazy dog")
    >>> ida.decode(pieces[2:5]) == b"the quick brown fox jumps over the lazy dog"
    True
    """

    def __init__(self, total_pieces: int, required_pieces: int) -> None:
        self.total_pieces = check_positive_int(total_pieces, "total_pieces")
        self.required_pieces = check_positive_int(required_pieces, "required_pieces")
        if required_pieces > total_pieces:
            raise ValueError("required_pieces cannot exceed total_pieces")
        if total_pieces > 256:
            raise ValueError("at most 256 total pieces are supported (GF(256) row labels)")
        self._matrix = self._build_matrix(total_pieces, required_pieces)

    @staticmethod
    def _build_matrix(total: int, required: int) -> np.ndarray:
        """Systematic encoding matrix: identity on top, Cauchy rows below.

        A Cauchy matrix C[i, j] = 1 / (x_i + y_j) with all x_i, y_j distinct
        has every square submatrix invertible, and stacking it under the
        identity preserves the any-K-rows-invertible property needed by IDA.
        """
        matrix = np.zeros((total, required), dtype=np.uint8)
        matrix[:required, :required] = np.eye(required, dtype=np.uint8)
        parity_rows = total - required
        if parity_rows > 0:
            xs = np.arange(required, required + parity_rows, dtype=np.int32)
            ys = np.arange(0, required, dtype=np.int32)
            for i in range(parity_rows):
                for j in range(required):
                    denom = int(xs[i]) ^ int(ys[j])
                    matrix[required + i, j] = gf_inv(denom)
        return matrix

    @property
    def blowup(self) -> float:
        """Space overhead L / K (the paper keeps this close to 1)."""
        return self.total_pieces / self.required_pieces

    def piece_length(self, item_length: int) -> int:
        """Byte length of each piece for an item of ``item_length`` bytes."""
        return math.ceil(max(item_length, 1) / self.required_pieces)

    # ------------------------------------------------------------------ encode / decode
    def encode(self, data: bytes) -> List[Piece]:
        """Split ``data`` into ``total_pieces`` pieces, any ``required_pieces`` of which reconstruct it."""
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError("data must be bytes")
        original_length = len(data)
        k = self.required_pieces
        piece_len = self.piece_length(original_length)
        padded = np.frombuffer(bytes(data).ljust(piece_len * k, b"\0"), dtype=np.uint8)
        chunks = padded.reshape(k, piece_len)  # (K, piece_len)
        encoded = gf_matmul(self._matrix, chunks)  # (L, piece_len)
        return [
            Piece(
                index=i,
                data=encoded[i].tobytes(),
                original_length=original_length,
                total_pieces=self.total_pieces,
                required_pieces=k,
            )
            for i in range(self.total_pieces)
        ]

    def decode(self, pieces: Sequence[Piece]) -> bytes:
        """Reconstruct the original item from any ``required_pieces`` distinct pieces."""
        unique: Dict[int, Piece] = {}
        for piece in pieces:
            if piece.required_pieces != self.required_pieces or piece.total_pieces != self.total_pieces:
                raise ValueError("piece was encoded with different (L, K) parameters")
            unique.setdefault(piece.index, piece)
        if len(unique) < self.required_pieces:
            raise ValueError(
                f"need at least {self.required_pieces} distinct pieces, got {len(unique)}"
            )
        chosen = sorted(unique.values(), key=lambda p: p.index)[: self.required_pieces]
        original_length = chosen[0].original_length
        piece_len = len(chosen[0].data)
        for piece in chosen:
            if len(piece.data) != piece_len or piece.original_length != original_length:
                raise ValueError("inconsistent piece metadata")
        sub_matrix = self._matrix[[p.index for p in chosen], :]
        rhs = np.stack([np.frombuffer(p.data, dtype=np.uint8) for p in chosen], axis=0)
        chunks = _gf_solve(sub_matrix, rhs)  # (K, piece_len)
        return chunks.reshape(-1).tobytes()[:original_length]

    # ------------------------------------------------------------------ accounting
    def total_stored_bytes(self, item_length: int) -> int:
        """Bytes stored network-wide for one item under IDA."""
        return self.piece_length(item_length) * self.total_pieces

    @staticmethod
    def replication_stored_bytes(item_length: int, copies: int) -> int:
        """Bytes stored network-wide under plain replication (for comparison)."""
        return item_length * copies
