"""Committee election and maintenance (Algorithm 1).

A *committee* is a small (Theta(log n)) clique of essentially random nodes
that is entrusted with a task -- storing an item, or coordinating a search --
and that must survive churn for a long time.  Algorithm 1 of the paper:

* **Creation** (round r1): the creating node ``u`` picks ``h log n`` of the
  walk samples it received and invites those nodes; the roster is included in
  the invitation so the members form a clique.
* **Maintenance** (every ``2 tau`` rounds): members record the walk samples
  they received, exchange their counts, the member with the most samples
  becomes the leader ``c_r``, the leader invites ``h log n`` of *its* fresh
  samples to form the next generation, the old members hand over the task and
  resign.

Because the samples are near-uniform (Soup Theorem) and the adversary is
oblivious, each new generation consists of essentially random nodes, so whp
only an O(churn-rate * refresh-period / n) fraction is lost between
re-formations and the committee stays "good" for a polynomial number of
rounds (Theorem 2).

The implementation keeps each committee as an explicit object whose
:meth:`Committee.step` is called once per round by the owner (storage /
retrieval services or the simulation engine).  Message costs -- the count
exchange, the invitations carrying the roster, and the per-generation
handover -- are charged to the bandwidth ledger; deliverability follows node
liveness exactly as in the network model (an invitation to a node that has
just been churned out is simply lost).

The footnote of Algorithm 1 (what if the chosen leader is churned out before
it can invite) is handled the same way the paper suggests: the leader is
chosen among *currently alive* members, and if it is churned out before the
invitations take effect, the old generation simply stays in place until the
next refresh, by which point a new leader is chosen.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.context import ProtocolContext
from repro.util.datastructures import RoundTimer
from repro.walks.sampler import NodeSampler

__all__ = ["CommitteeEvent", "Committee", "RefreshPlan", "plan_refreshes"]

_committee_id_counter = itertools.count(1)


@dataclass(frozen=True)
class CommitteeEvent:
    """A notable committee life-cycle event (creation, refresh, death)."""

    round_index: int
    kind: str
    committee_id: int
    generation: int
    member_count: int
    details: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class RefreshPlan:
    """The deterministic inputs of one committee refresh, computed in bulk.

    Everything a refresh derives *before* touching the RNG -- the surviving
    roster, the walk-count exchange, the elected leader and the leader's
    candidate pool -- is a pure query against the network/sampler state at
    the start of the round.  :func:`plan_refreshes` therefore computes these
    for every committee refreshing in the same round with a handful of bulk
    sampler/network calls; the refresh itself then only consumes the RNG (in
    the original per-committee order, keeping payloads byte-identical to
    unbatched execution) and applies the roster change.
    """

    survivors: List[int]
    counts: Dict[int, int]
    leader: Optional[int]
    pool: Optional[np.ndarray]


def plan_refreshes(
    ctx: ProtocolContext, committees: Sequence["Committee"], round_index: int
) -> Dict[int, RefreshPlan]:
    """Batch the sampler/network queries of every refresh due this round.

    Returns ``committee_id -> RefreshPlan``.  The ROADMAP named the per-call
    ``draw_distinct_sources`` work the top remaining sampler cost after PR 3;
    batching turns N refreshing committees' worth of liveness scans, count
    exchanges and candidate-pool gathers into:

    * one ``alive_mask`` over every roster (survivor detection),
    * one ``sample_counts`` call over every survivor (leader election), and
    * one ``distinct_source_pools`` gather over every leader (recruit pools).
    """
    plans: Dict[int, RefreshPlan] = {}
    if not committees:
        return plans

    # --- survivors: one liveness pass over the concatenation of all rosters.
    rosters = [committee.members for committee in committees]
    boundaries = np.cumsum([0] + [len(r) for r in rosters])
    all_members = np.asarray(
        [member for roster in rosters for member in roster], dtype=np.int64
    )
    alive = ctx.network.alive_mask(all_members) if all_members.size else np.empty(0, dtype=bool)
    survivors_per: List[List[int]] = []
    for i, roster in enumerate(rosters):
        mask = alive[boundaries[i] : boundaries[i + 1]]
        survivors_per.append([m for m, ok in zip(roster, mask) if ok])

    # --- counts: one walk-count exchange over every survivor at once.
    flat_survivors = [m for survivors in survivors_per for m in survivors]
    count_boundaries = np.cumsum([0] + [len(s) for s in survivors_per])
    counts_column = (
        ctx.sampler.sample_counts(flat_survivors, round_index=round_index)
        if flat_survivors
        else np.empty(0, dtype=np.int64)
    )

    # --- leaders, then their candidate pools in one bulk gather.
    leaders: List[int] = []
    leader_slot: List[Optional[int]] = []
    counts_per: List[Dict[int, int]] = []
    for i, survivors in enumerate(survivors_per):
        counts = {
            m: int(c)
            for m, c in zip(survivors, counts_column[count_boundaries[i] : count_boundaries[i + 1]])
        }
        counts_per.append(counts)
        if survivors:
            leader = max(survivors, key=lambda m: (counts[m], -m))
            leader_slot.append(len(leaders))
            leaders.append(leader)
        else:
            leader_slot.append(None)
    pools = ctx.sampler.distinct_source_pools(
        leaders, max_age=ctx.params.committee_refresh_period
    )

    for i, committee in enumerate(committees):
        slot = leader_slot[i]
        plans[committee.committee_id] = RefreshPlan(
            survivors=survivors_per[i],
            counts=counts_per[i],
            leader=None if slot is None else leaders[slot],
            pool=None if slot is None else pools[slot],
        )
    return plans


class Committee:
    """One committee instance: a roster of member uids plus its maintenance logic.

    Parameters
    ----------
    ctx:
        Shared protocol context.
    creator_uid:
        Node that created the committee.
    task:
        Label of the entrusted task (``"storage"`` or ``"search"``).
    item_id:
        Item this committee is responsible for, if any.
    created_round:
        Round of creation.
    members:
        Initial roster.
    on_handover:
        Optional callback ``(old_members, new_members, leader, round) -> None``
        invoked whenever a new generation takes over; the storage service uses
        it to transfer item copies / IDA pieces to the new members.
    """

    def __init__(
        self,
        ctx: ProtocolContext,
        creator_uid: int,
        task: str,
        created_round: int,
        members: Sequence[int],
        item_id: Optional[int] = None,
        on_handover: Optional[Callable[[List[int], List[int], int, int], None]] = None,
    ) -> None:
        self.ctx = ctx
        self.committee_id = next(_committee_id_counter)
        self.creator_uid = creator_uid
        self.task = task
        self.item_id = item_id
        self.created_round = created_round
        self.members: List[int] = list(dict.fromkeys(int(m) for m in members))
        self.generation = 0
        self.on_handover = on_handover
        self._timer = RoundTimer(start=created_round, period=ctx.params.committee_refresh_period)
        self.events: List[CommitteeEvent] = [
            CommitteeEvent(
                round_index=created_round,
                kind="created",
                committee_id=self.committee_id,
                generation=0,
                member_count=len(self.members),
                details={"creator": creator_uid, "task": task, "item_id": item_id},
            )
        ]
        self.dissolved = False
        self.refresh_successes = 0
        self.refresh_failures = 0
        # Creation cost: the creator sends one invitation (with roster) per member.
        for member in self.members:
            ctx.charge(creator_uid, ids=2 + len(self.members))

    # ------------------------------------------------------------------ construction
    @classmethod
    def create(
        cls,
        ctx: ProtocolContext,
        creator_uid: int,
        task: str,
        item_id: Optional[int] = None,
        on_handover: Optional[Callable[[List[int], List[int], int, int], None]] = None,
        sample_max_age: Optional[int] = None,
    ) -> "Committee":
        """Create a committee on behalf of ``creator_uid`` (Algorithm 1, creation step).

        The creator draws ``committee_size`` distinct alive nodes from its
        recently received walk samples.  If it has not yet received enough
        samples (e.g. during warm-up, or because it is outside the Core), the
        committee starts under-sized and is topped up at the next refresh --
        the same behaviour as a committee decimated by churn.
        """
        params = ctx.params
        max_age = params.landmark_refresh_period if sample_max_age is None else sample_max_age
        picked = ctx.sampler.draw_distinct_sources(
            creator_uid,
            params.committee_size,
            ctx.rng.generator,
            max_age=max_age,
        )
        if creator_uid not in picked and ctx.is_alive(creator_uid) and len(picked) < params.committee_size:
            # The creator may serve as a member itself while the roster is short.
            picked.append(creator_uid)
        committee = cls(
            ctx=ctx,
            creator_uid=creator_uid,
            task=task,
            created_round=ctx.round_index,
            members=picked,
            item_id=item_id,
            on_handover=on_handover,
        )
        ctx.record(
            "committee",
            "created",
            committee_id=committee.committee_id,
            task=task,
            item_id=item_id,
            size=len(picked),
        )
        return committee

    @classmethod
    def create_many(
        cls,
        ctx: ProtocolContext,
        creator_uids: Sequence[int],
        task: str,
        item_ids: Optional[Sequence[Optional[int]]] = None,
        on_handovers: Optional[Sequence[Optional[Callable[[List[int], List[int], int, int], None]]]] = None,
        sample_max_age: Optional[int] = None,
    ) -> List["Committee"]:
        """Create one committee per creator with a single pooled sample gather.

        Byte-identical to calling :meth:`create` once per creator in order:
        candidate-pool construction consumes no RNG, so gathering every
        creator's pool up front (one bulk
        :meth:`~repro.walks.sampler.NodeSampler.distinct_source_pools` call)
        and then drawing per creator in the original order leaves every
        seeded draw, charge and record unchanged.  Proven by the reference
        oracle in ``tests/test_core_committee.py``.
        """
        creators = [int(u) for u in creator_uids]
        if item_ids is None:
            item_ids = [None] * len(creators)
        if on_handovers is None:
            on_handovers = [None] * len(creators)
        if len(item_ids) != len(creators) or len(on_handovers) != len(creators):
            raise ValueError("item_ids and on_handovers must match creator_uids in length")
        params = ctx.params
        max_age = params.landmark_refresh_period if sample_max_age is None else sample_max_age
        pools = ctx.sampler.distinct_source_pools(creators, max_age=max_age)
        committees: List["Committee"] = []
        for creator_uid, item_id, on_handover, pool in zip(creators, item_ids, on_handovers, pools):
            picked = NodeSampler.draw_from_pool(pool, params.committee_size, ctx.rng.generator)
            if (
                creator_uid not in picked
                and ctx.is_alive(creator_uid)
                and len(picked) < params.committee_size
            ):
                picked.append(creator_uid)
            committee = cls(
                ctx=ctx,
                creator_uid=creator_uid,
                task=task,
                created_round=ctx.round_index,
                members=picked,
                item_id=item_id,
                on_handover=on_handover,
            )
            ctx.record(
                "committee",
                "created",
                committee_id=committee.committee_id,
                task=task,
                item_id=item_id,
                size=len(picked),
            )
            committees.append(committee)
        return committees

    # ------------------------------------------------------------------ status
    def alive_members(self) -> List[int]:
        """Members that are currently in the network."""
        return [m for m in self.members if self.ctx.is_alive(m)]

    @property
    def size(self) -> int:
        """Nominal roster size (including members that may have been churned out)."""
        return len(self.members)

    def alive_fraction(self) -> float:
        """Fraction of the roster still alive."""
        if not self.members:
            return 0.0
        return len(self.alive_members()) / len(self.members)

    def is_good(self, epsilon: float = 0.5) -> bool:
        """The paper's "good committee" predicate.

        A committee is good when at least ``(1 - epsilon) * committee_size``
        of its members are alive (the paper additionally asks that they be
        Core members; liveness is the measurable proxy at finite n, and the
        Core-membership version is evaluated separately in experiment E3).
        """
        target = (1.0 - epsilon) * self.ctx.params.committee_size
        return len(self.alive_members()) >= target

    def contains(self, uid: int) -> bool:
        """Whether ``uid`` is on the current roster."""
        return int(uid) in self.members

    # ------------------------------------------------------------------ per-round driver
    def refresh_due(self, round_index: int) -> bool:
        """Whether :meth:`step` would run a refresh this round.

        Owners driving many committees (the storage service) use this to
        collect the round's refreshing committees and batch their sampler
        queries via :func:`plan_refreshes` before stepping them.
        """
        return (
            not self.dissolved
            and self._timer.fires_at(round_index)
            and round_index != self.created_round
        )

    def step(self, round_index: int, plan: Optional[RefreshPlan] = None) -> Optional[CommitteeEvent]:
        """Run one round of committee maintenance.

        Only does real work on refresh rounds (every ``committee_refresh_period``
        rounds after creation).  Returns the event generated, if any.  ``plan``
        optionally supplies this committee's pre-batched :class:`RefreshPlan`
        (see :func:`plan_refreshes`); without one the same queries run inline,
        with identical results.
        """
        if not self.refresh_due(round_index):
            return None
        return self._refresh(round_index, plan)

    def dissolve(self, round_index: int) -> None:
        """Dissolve the committee (used by completed search operations)."""
        if self.dissolved:
            return
        self.dissolved = True
        event = CommitteeEvent(
            round_index=round_index,
            kind="dissolved",
            committee_id=self.committee_id,
            generation=self.generation,
            member_count=len(self.alive_members()),
        )
        self.events.append(event)
        self.ctx.record("committee", "dissolved", committee_id=self.committee_id)

    # ------------------------------------------------------------------ refresh internals
    def _refresh(self, round_index: int, plan: Optional[RefreshPlan] = None) -> CommitteeEvent:
        """Re-form the committee from the leader's fresh samples (Algorithm 1 maintenance).

        All pure queries (survivors, counts, leader, candidate pool) come from
        ``plan`` -- either the batched one handed in by the owner or a
        single-committee plan computed here.  Only the seeded recruit draw
        touches the RNG, in the same order as the historical per-committee
        code, so batched and unbatched execution are byte-identical.
        """
        ctx = self.ctx
        params = ctx.params
        if plan is None:
            plan = plan_refreshes(ctx, [self], round_index)[self.committee_id]
        survivors = plan.survivors

        if not survivors:
            self.dissolved = True
            self.refresh_failures += 1
            event = CommitteeEvent(
                round_index=round_index,
                kind="died",
                committee_id=self.committee_id,
                generation=self.generation,
                member_count=0,
                details={"reason": "all members churned out before refresh"},
            )
            self.events.append(event)
            ctx.record("committee", "died", committee_id=self.committee_id, item_id=self.item_id)
            return event

        # Round r / r+1 of Algorithm 1: members exchange the number of walk
        # samples each received (a clique's worth of tiny messages).
        counts = plan.counts
        for member in survivors:
            ctx.charge(member, ids=1 + len(survivors))

        # Leader c_r: most samples, ties broken by uid (deterministic and
        # "unanimous" because the counts are common knowledge).
        leader = plan.leader
        assert leader is not None  # survivors is non-empty

        # Round r+2: the leader invites committee_size of the samples it
        # received this refresh window to form the new committee.
        recruits = NodeSampler.draw_from_pool(plan.pool, params.committee_size, ctx.rng.generator)
        if len(recruits) < max(2, params.committee_size // 2):
            # Not enough fresh samples to hand over safely: keep the current
            # generation in place (topped up with whatever recruits exist)
            # rather than shrinking the committee drastically.
            new_members = list(dict.fromkeys(survivors + recruits))[: params.committee_size]
            outcome = "kept"
            self.refresh_failures += 1
        else:
            new_members = list(dict.fromkeys(recruits))[: params.committee_size]
            outcome = "reformed"
            self.refresh_successes += 1

        # Invitation messages carry the full new roster (clique formation).
        for member in new_members:
            ctx.charge(leader, ids=2 + len(new_members))

        old_members = list(self.members)
        self.members = new_members
        self.generation += 1

        if self.on_handover is not None:
            self.on_handover(old_members, new_members, leader, round_index)

        event = CommitteeEvent(
            round_index=round_index,
            kind=outcome,
            committee_id=self.committee_id,
            generation=self.generation,
            member_count=len(new_members),
            details={"leader": leader, "survivors": len(survivors)},
        )
        self.events.append(event)
        ctx.record(
            "committee",
            outcome,
            committee_id=self.committee_id,
            generation=self.generation,
            size=len(new_members),
            leader=leader,
        )
        return event
