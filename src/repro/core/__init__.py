"""The paper's primary contribution: committees, landmarks, storage, search."""

from repro.core.committee import Committee, CommitteeEvent
from repro.core.context import ProtocolContext
from repro.core.erasure import InformationDispersal, Piece
from repro.core.landmarks import LandmarkBuildReport, LandmarkRecord, LandmarkSet
from repro.core.params import ProtocolParameters
from repro.core.protocol import P2PStorageSystem, RoundSummary
from repro.core.retrieval import RetrievalOperation, RetrievalService
from repro.core.storage import StorageService, StorageSnapshot, StoredItem

__all__ = [
    "Committee",
    "CommitteeEvent",
    "ProtocolContext",
    "InformationDispersal",
    "Piece",
    "LandmarkBuildReport",
    "LandmarkRecord",
    "LandmarkSet",
    "ProtocolParameters",
    "P2PStorageSystem",
    "RoundSummary",
    "RetrievalOperation",
    "RetrievalService",
    "StorageService",
    "StorageSnapshot",
    "StoredItem",
]
