"""Data retrieval (Algorithm 4).

To retrieve an item ``I`` whose id it knows, a node ``u``:

1. creates a **search committee** (Algorithm 1) that dissolves once the
   search finishes;
2. has that committee build **search landmarks** (Algorithm 2) -- Omega(sqrt(n))
   near-random nodes working on ``u``'s behalf;
3. every round, every search landmark looks at the walk samples it just
   received and probes each sampled node, asking "are you a storage landmark
   (or holder) of ``I``?".  By the birthday argument, with Omega(sqrt(n))
   search landmarks each meeting a Theta(1/sqrt(n))-dense set of storage
   landmarks through near-uniform samples, a hit occurs within O(log n)
   rounds with high probability (Theorem 4).  The hit is reported straight
   back to ``u`` together with the ids of the nodes holding ``I``.

The reported **latency** counts the rounds from the moment the retrieval was
issued until the hit, plus two rounds for the probe/reply exchange that
confirms it (our simulation evaluates the probe predicate centrally but
charges and counts the messages it stands for).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.committee import Committee
from repro.core.context import ProtocolContext
from repro.core.landmarks import LandmarkSet
from repro.core.storage import StorageService

__all__ = ["RetrievalOperation", "RetrievalService"]

#: Rounds added to the reported latency for the probe -> reply -> report chain.
PROBE_ROUNDTRIP_ROUNDS = 2


@dataclass
class RetrievalOperation:
    """One in-flight (or finished) retrieval."""

    op_id: int
    requester_uid: int
    item_id: int
    start_round: int
    committee: Committee
    landmarks: LandmarkSet
    status: str = "pending"  # pending | succeeded | failed
    finish_round: Optional[int] = None
    holder_ids: List[int] = field(default_factory=list)
    probes_sent: int = 0
    found_by: Optional[int] = None
    #: last round this operation was stepped (guards the event-driven engine
    #: against double-stepping when a delayed probe event collides with the
    #: current round's own event)
    last_step_round: int = -1

    @property
    def latency(self) -> Optional[int]:
        """Rounds from issue to completion (None while pending)."""
        if self.finish_round is None:
            return None
        return self.finish_round - self.start_round

    @property
    def succeeded(self) -> bool:
        """Whether the retrieval found the item."""
        return self.status == "succeeded"


class RetrievalService:
    """Issues and drives retrieval operations against a :class:`StorageService`."""

    def __init__(self, ctx: ProtocolContext, storage: StorageService) -> None:
        self.ctx = ctx
        self.storage = storage
        self.operations: Dict[int, RetrievalOperation] = {}
        # Per-service so op ids (used in event tie hashes) are deterministic.
        self._op_ids = itertools.count(1)

    # ------------------------------------------------------------------ issue
    def retrieve(self, requester_uid: int, item_id: int) -> RetrievalOperation:
        """Start a retrieval of ``item_id`` on behalf of ``requester_uid`` (Algorithm 4)."""
        if not self.ctx.is_alive(requester_uid):
            raise ValueError(f"requester {requester_uid} is not in the network")
        committee = Committee.create(
            self.ctx,
            creator_uid=requester_uid,
            task="search",
            item_id=item_id,
        )
        landmarks = LandmarkSet(
            self.ctx,
            committee=committee,
            item_id=item_id,
            role="search",
            created_round=self.ctx.round_index,
        )
        landmarks.build(self.ctx.round_index)
        op = RetrievalOperation(
            op_id=next(self._op_ids),
            requester_uid=requester_uid,
            item_id=item_id,
            start_round=self.ctx.round_index,
            committee=committee,
            landmarks=landmarks,
        )
        self.operations[op.op_id] = op
        self.ctx.record(
            "retrieval",
            "issued",
            op_id=op.op_id,
            item_id=item_id,
            requester=requester_uid,
        )
        return op

    # ------------------------------------------------------------------ per-round driver
    def step(self, round_index: int) -> None:
        """Advance every pending retrieval by one round."""
        for op in self.operations.values():
            self.step_operation(op, round_index)

    def step_operation(self, op: RetrievalOperation, round_index: int) -> None:
        """Advance one retrieval by one round (event-driven engine entry point).

        Finished or already-stepped operations are a no-op, so a delayed
        probe event colliding with the operation's own event for the same
        round preserves the lockstep invariant of one probe pass per round.
        """
        if op.status != "pending" or op.last_step_round >= round_index:
            return
        op.last_step_round = round_index
        op.committee.step(round_index)
        op.landmarks.step(round_index)
        self._probe_round(op, round_index)
        if op.status == "pending" and round_index - op.start_round >= self.ctx.params.retrieval_timeout:
            op.status = "failed"
            op.finish_round = round_index
            op.committee.dissolve(round_index)
            self.ctx.record(
                "retrieval", "timeout", op_id=op.op_id, item_id=op.item_id, probes=op.probes_sent
            )

    def _probe_round(self, op: RetrievalOperation, round_index: int) -> None:
        """One round of probing by all search landmarks of ``op`` (plus the requester)."""
        ctx = self.ctx
        probers = op.landmarks.active_landmarks(round_index)
        if ctx.is_alive(op.requester_uid) and op.requester_uid not in probers:
            probers.append(op.requester_uid)

        for prober in probers:
            # Per-prober window lookup: a cached searchsorted against the
            # round's column, so each round pays only for the probers' own
            # samples rather than grouping every node's window.
            samples = ctx.sampler.sample_sources(prober, round_index=round_index, alive_only=True)
            for target in samples:
                # LookupProbe from the search landmark to the sampled node.
                ctx.charge(prober, ids=4)
                op.probes_sent += 1
                if self.storage.is_storage_landmark(op.item_id, target):
                    holders = self.storage.holders_of(op.item_id)
                    # LookupHit reply + report back to the requester.
                    ctx.charge(target, ids=3 + len(holders))
                    if ctx.is_alive(prober):
                        ctx.charge(prober, ids=3 + len(holders))
                    op.status = "succeeded"
                    op.finish_round = round_index + PROBE_ROUNDTRIP_ROUNDS
                    op.holder_ids = holders
                    op.found_by = prober
                    op.committee.dissolve(round_index)
                    ctx.record(
                        "retrieval",
                        "hit",
                        op_id=op.op_id,
                        item_id=op.item_id,
                        latency=op.latency,
                        probes=op.probes_sent,
                        found_by=prober,
                    )
                    return

    # ------------------------------------------------------------------ queries
    def pending_operations(self) -> List[RetrievalOperation]:
        """Operations still searching."""
        return [op for op in self.operations.values() if op.status == "pending"]

    def finished_operations(self) -> List[RetrievalOperation]:
        """Operations that succeeded or timed out."""
        return [op for op in self.operations.values() if op.status != "pending"]

    def success_rate(self) -> float:
        """Fraction of finished operations that succeeded."""
        finished = self.finished_operations()
        if not finished:
            return 0.0
        return sum(1 for op in finished if op.succeeded) / len(finished)

    def latencies(self) -> List[int]:
        """Latencies (in rounds) of successful retrievals."""
        return [op.latency for op in self.operations.values() if op.succeeded and op.latency is not None]
