"""Protocol parameters derived from the network size.

The paper expresses every knob asymptotically: walks per node ``alpha log n``,
committee size ``h log n``, walk length / mixing time ``tau = m log n``,
committee refresh every ``2 tau`` rounds, landmark refresh every ``tau``
rounds, landmark-tree depth ``mu`` from Equation (4), and target landmark set
size ``Omega(sqrt(n))``.

:class:`ProtocolParameters` turns those asymptotic expressions into concrete
integers for a given ``n`` while keeping every constant configurable.  Two
points deserve attention:

* **Finite-size effects.**  The paper's constants (e.g. churn bound
  ``4 n / log^{1+delta} n``, tree depth Equation (4)) only become meaningful
  at astronomically large ``n``; evaluated literally at laptop-scale ``n``
  they produce degenerate values (25% of the network churned per round, tree
  depth 0).  We therefore expose both the *literal* formulas
  (:meth:`tree_depth_paper`, :func:`repro.net.churn.paper_churn_limit`) and
  calibrated defaults that preserve the *functional form* (Theta(log n)
  committees, Theta(log n) walk lengths, Theta(sqrt(n)) landmarks).  The
  substitution is documented in DESIGN.md and EXPERIMENTS.md.
* **Natural logarithm.**  The paper uses natural log throughout; so do we.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict

from repro.util.validation import check_positive_float, check_positive_int

__all__ = ["ProtocolParameters"]


@dataclass(frozen=True)
class ProtocolParameters:
    """Concrete protocol parameters for a network of ``n`` slots.

    Attributes
    ----------
    n:
        Stable network size.
    delta:
        The paper's small constant ``delta > 0`` controlling the churn bound
        ``O(n / log^{1+delta} n)`` and the landmark-set exponent
        ``O(n^{1/2+delta})``.
    degree:
        Regular degree of every round topology.
    alpha:
        Walks injected per node per round are ``ceil(alpha * ln n)``.
    h:
        Committee size is ``max(3, ceil(h * ln n))``.
    walk_length_multiplier:
        Walk length (the paper's ``2 tau``) is
        ``ceil(walk_length_multiplier * ln n)``.
    committee_refresh_multiplier:
        Committee re-formation period in units of the walk length
        (the paper uses ``2 tau``; 1.0 reproduces that with our walk length
        already playing the role of ``2 tau``).
    landmark_refresh_multiplier:
        Landmark rebuild period in units of the walk length (the paper
        rebuilds every ``tau`` rounds, i.e. half a walk length).
    landmark_multiplier:
        Target landmark-set size is ``landmark_multiplier * sqrt(n)``.
    landmark_fanout:
        Children added per tree node per level (the paper uses 2).
    landmark_lifetime_multiplier:
        A landmark forgets its role after this many walk lengths (paper: 2 tau).
    retrieval_timeout_multiplier:
        A retrieval gives up after ``retrieval_timeout_multiplier * ln n``
        rounds (the claim is O(log n) rounds; the constant is measured).
    """

    n: int
    delta: float = 0.5
    degree: int = 8
    alpha: float = 1.0
    h: float = 1.0
    walk_length_multiplier: float = 2.0
    committee_refresh_multiplier: float = 1.0
    landmark_refresh_multiplier: float = 0.5
    landmark_multiplier: float = 1.0
    landmark_fanout: int = 2
    landmark_lifetime_multiplier: float = 1.0
    retrieval_timeout_multiplier: float = 6.0

    def __post_init__(self) -> None:
        check_positive_int(self.n, "n")
        if self.n < 8:
            raise ValueError("n must be at least 8")
        check_positive_float(self.delta, "delta")
        check_positive_int(self.degree, "degree")
        check_positive_float(self.alpha, "alpha")
        check_positive_float(self.h, "h")
        check_positive_float(self.walk_length_multiplier, "walk_length_multiplier")
        check_positive_float(self.committee_refresh_multiplier, "committee_refresh_multiplier")
        check_positive_float(self.landmark_refresh_multiplier, "landmark_refresh_multiplier")
        check_positive_float(self.landmark_multiplier, "landmark_multiplier")
        check_positive_int(self.landmark_fanout, "landmark_fanout")
        check_positive_float(self.landmark_lifetime_multiplier, "landmark_lifetime_multiplier")
        check_positive_float(self.retrieval_timeout_multiplier, "retrieval_timeout_multiplier")

    # ------------------------------------------------------------------ derived values
    @property
    def log_n(self) -> float:
        """Natural log of n (the paper's ``log n``)."""
        return math.log(self.n)

    @property
    def walks_per_node(self) -> int:
        """Tokens injected per node per round: ``ceil(alpha ln n)``."""
        return max(1, math.ceil(self.alpha * self.log_n))

    @property
    def walk_length(self) -> int:
        """Steps per walk before delivery (plays the role of the paper's ``2 tau``)."""
        return max(2, math.ceil(self.walk_length_multiplier * self.log_n))

    @property
    def tau(self) -> int:
        """The dynamic mixing time ``tau`` (half the configured walk length, >= 1)."""
        return max(1, self.walk_length // 2)

    @property
    def committee_size(self) -> int:
        """Target committee size ``h log n`` (at least 3)."""
        return max(3, math.ceil(self.h * self.log_n))

    @property
    def committee_refresh_period(self) -> int:
        """Rounds between committee re-formations (the paper's ``2 tau``)."""
        return max(2, math.ceil(self.committee_refresh_multiplier * self.walk_length))

    @property
    def landmark_refresh_period(self) -> int:
        """Rounds between landmark-set rebuilds (the paper's ``tau``)."""
        return max(2, math.ceil(self.landmark_refresh_multiplier * self.walk_length))

    @property
    def landmark_lifetime(self) -> int:
        """Rounds a recruited landmark keeps its role (the paper's ``2 tau``)."""
        return max(2, math.ceil(self.landmark_lifetime_multiplier * self.walk_length))

    @property
    def target_landmarks(self) -> int:
        """Target landmark-set size ``landmark_multiplier * sqrt(n)``."""
        return max(4, math.ceil(self.landmark_multiplier * math.sqrt(self.n)))

    @property
    def landmark_cap(self) -> int:
        """Upper bound on landmark-set size, ``O(n^{1/2+delta} log n)`` (Lemma 8)."""
        return math.ceil(self.n ** (0.5 + self.delta) * max(1.0, self.log_n))

    @property
    def tree_depth(self) -> int:
        """Levels of the landmark tree needed to reach the target size.

        Each of the ``committee_size`` roots grows a ``landmark_fanout``-ary
        tree; depth ``mu`` yields about ``committee_size * (f^{mu+1} - 1)/(f-1)``
        landmarks, so we solve for the smallest depth reaching
        :attr:`target_landmarks` (the functional form of Lemma 8 rather than
        the literal Equation (4), which degenerates at small n --
        see :meth:`tree_depth_paper`).
        """
        f = self.landmark_fanout
        needed = self.target_landmarks / max(1, self.committee_size)
        depth = 1
        while ((f ** (depth + 1) - 1) / (f - 1)) < needed and depth < 40:
            depth += 1
        return depth

    def tree_depth_paper(self) -> int:
        """The literal tree depth of Equation (4) in the paper.

        Returns the floor of the equation's value; at small ``n`` this is 0
        or negative, which is why the practical default uses
        :attr:`tree_depth` instead (documented substitution).
        """
        n = self.n
        k = 1.0 + self.delta
        log2n = math.log2(n)
        loglog = math.log2(max(math.log(n), 2.0))
        shrink = (
            2.0
            * (1.0 - 1.0 / (math.log(n) ** ((k - 1.0) / 2.0)))
            * (1.0 - 1.0 / (math.log(n) ** (k - 1.0)))
            * (1.0 - 1.0 / n**3)
        )
        if shrink <= 1.0:
            # The per-level growth factor drops below 1 at small n: the
            # equation's tree cannot grow and the literal depth is degenerate.
            return 0
        denom = 2.0 * math.log2(shrink)
        numer = log2n - 2.0 * (loglog + math.log(2.0))
        return max(0, int(math.floor(numer / denom)))

    @property
    def forwarding_cap(self) -> int:
        """Per-node per-round token forwarding cap, ``2 h log n``-style (Lemma 1)."""
        return max(4, 2 * self.walks_per_node * self.walk_length)

    @property
    def retrieval_timeout(self) -> int:
        """Rounds after which a retrieval operation is declared failed."""
        return max(4, math.ceil(self.retrieval_timeout_multiplier * self.log_n))

    @property
    def erasure_total_pieces(self) -> int:
        """Number of IDA pieces ``L = h log n`` (one per committee member, Section 4.4)."""
        return self.committee_size

    @property
    def erasure_redundancy(self) -> int:
        """Pieces the committee can lose between refreshes and still reconstruct.

        The paper's Section 4.4 shows that, whp, at most ``2 log n`` of the
        ``h log n`` members are churned out within a refresh period; we keep
        the same ~2/h fraction of the committee as redundancy (at least 2).
        """
        return max(2, math.ceil(2.0 * self.committee_size / max(self.h * self.log_n, 1.0)))

    @property
    def erasure_required_pieces(self) -> int:
        """Pieces needed to reconstruct, the paper's ``K = (h - 2) log n``.

        Realised as ``committee_size - erasure_redundancy`` (never below 2).
        """
        return max(2, min(self.committee_size - 1, self.committee_size - self.erasure_redundancy))

    # ------------------------------------------------------------------ helpers
    def churn_limit(self, constant: float = 4.0) -> int:
        """The paper's churn bound ``constant * n / (ln n)^{1+delta}`` for this n."""
        from repro.net.churn import paper_churn_limit

        return paper_churn_limit(self.n, self.delta, constant)

    def with_overrides(self, **kwargs) -> "ProtocolParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def summary(self) -> Dict[str, float]:
        """All derived values as a flat dict (used in experiment headers)."""
        return {
            "n": self.n,
            "delta": self.delta,
            "degree": self.degree,
            "walks_per_node": self.walks_per_node,
            "walk_length": self.walk_length,
            "tau": self.tau,
            "committee_size": self.committee_size,
            "committee_refresh_period": self.committee_refresh_period,
            "landmark_refresh_period": self.landmark_refresh_period,
            "landmark_lifetime": self.landmark_lifetime,
            "target_landmarks": self.target_landmarks,
            "landmark_cap": self.landmark_cap,
            "tree_depth": self.tree_depth,
            "forwarding_cap": self.forwarding_cap,
            "retrieval_timeout": self.retrieval_timeout,
            "erasure_total_pieces": self.erasure_total_pieces,
            "erasure_required_pieces": self.erasure_required_pieces,
            "paper_churn_limit": self.churn_limit(),
        }

    @classmethod
    def for_network(cls, n: int, **overrides) -> "ProtocolParameters":
        """Construct parameters for a network of size ``n`` with optional overrides."""
        return cls(n=n, **overrides)
