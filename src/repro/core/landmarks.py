"""Landmark-set construction (Algorithm 2).

A committee of Theta(log n) nodes has too small a "surface" to be found by a
random probe, so the paper extends its reach with **landmarks**: a set of
Omega(sqrt(n)) essentially random nodes that know the roster of the committee
(and hence, for a storage committee, the ids of the nodes holding the item).
Landmarks are recruited by growing fanout-2 trees from each committee member:
every tree node picks two *unused* nodes among the walk samples it recently
received and recruits them as children, passing the committee roster along,
until the configured depth is reached.  Each recruited landmark keeps its
role for ``2 tau`` rounds and the committee rebuilds the whole set every
``tau`` rounds, so the landmark population is continuously refreshed with
fresh near-uniform samples (Lemma 8).

Two landmark flavours exist (Section 4.3):

* **storage landmarks** -- know which nodes store item ``I``; they answer
  probes about ``I``;
* **search landmarks** -- work on behalf of a retrieval operation; every
  round they check the samples they receive and probe those nodes for ``I``.

Both flavours are produced by the same :class:`LandmarkSet` machinery; the
``role`` attribute distinguishes them for accounting and experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.core.committee import Committee
from repro.core.context import ProtocolContext
from repro.util.datastructures import RoundTimer

__all__ = ["LandmarkRecord", "LandmarkBuildReport", "LandmarkSet"]


@dataclass(frozen=True)
class LandmarkRecord:
    """One recruited landmark."""

    uid: int
    depth: int
    recruited_round: int
    expires_round: int
    recruiter: int

    def active(self, round_index: int, alive: bool) -> bool:
        """Whether this record is still in force."""
        return alive and round_index < self.expires_round


@dataclass(frozen=True)
class LandmarkBuildReport:
    """Statistics of one tree-building pass."""

    round_index: int
    requested_depth: int
    recruited: int
    active_after_build: int
    roots: int
    short_draws: int


class LandmarkSet:
    """The set of landmarks attached to one committee for one item / operation.

    Parameters
    ----------
    ctx:
        Shared protocol context.
    committee:
        The committee whose roster the landmarks advertise.
    item_id:
        The item (or search operation id) the landmarks answer for.
    role:
        ``"storage"`` or ``"search"``.
    created_round:
        Round of the first build.
    """

    def __init__(
        self,
        ctx: ProtocolContext,
        committee: Committee,
        item_id: int,
        role: str,
        created_round: int,
    ) -> None:
        self.ctx = ctx
        self.committee = committee
        self.item_id = item_id
        self.role = role
        self.created_round = created_round
        self._timer = RoundTimer(start=created_round, period=ctx.params.landmark_refresh_period)
        #: uid -> most recent LandmarkRecord for that uid
        self._records: Dict[int, LandmarkRecord] = {}
        self.build_reports: List[LandmarkBuildReport] = []
        self.total_recruited = 0

    # ------------------------------------------------------------------ queries
    def _active_mask(self, round_index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(uids, mask)`` over all records: alive and not yet expired.

        One bulk :meth:`~repro.net.network.DynamicNetwork.alive_mask` call
        replaces a liveness probe per record (this runs for every landmark of
        every pending operation every round).  uids keep the records' dict
        insertion order, which downstream probe loops rely on.
        """
        n = len(self._records)
        uids = np.fromiter(self._records.keys(), dtype=np.int64, count=n)
        expires = np.fromiter(
            (rec.expires_round for rec in self._records.values()), dtype=np.int64, count=n
        )
        mask = (round_index < expires) & self.ctx.network.alive_mask(uids)
        return uids, mask

    def active_landmarks(self, round_index: Optional[int] = None) -> List[int]:
        """uids of landmarks that are alive and not yet expired."""
        r = self.ctx.round_index if round_index is None else round_index
        uids, mask = self._active_mask(r)
        return uids[mask].tolist()

    def active_count(self, round_index: Optional[int] = None) -> int:
        """Number of currently active landmarks."""
        r = self.ctx.round_index if round_index is None else round_index
        _, mask = self._active_mask(r)
        return int(np.count_nonzero(mask))

    def is_landmark(self, uid: int, round_index: Optional[int] = None) -> bool:
        """Whether ``uid`` is an active landmark of this set."""
        rec = self._records.get(int(uid))
        if rec is None:
            return False
        r = self.ctx.round_index if round_index is None else round_index
        return rec.active(r, self.ctx.is_alive(uid))

    def holder_ids(self) -> List[int]:
        """The node ids a landmark would hand to a querier: alive committee members."""
        return self.committee.alive_members()

    # ------------------------------------------------------------------ per-round driver
    def step(self, round_index: int) -> Optional[LandmarkBuildReport]:
        """Rebuild the landmark trees if this is a refresh round."""
        if self.committee.dissolved:
            return None
        if not self._timer.fires_at(round_index):
            return None
        return self.build(round_index)

    # ------------------------------------------------------------------ tree construction
    def build(self, round_index: int) -> LandmarkBuildReport:
        """Run one tree-building pass from the current committee members (Algorithm 2).

        The tree grows **level by level**: for each depth, the candidate
        pools of every live parent are gathered in one bulk
        :meth:`~repro.walks.sampler.NodeSampler.distinct_source_pools` pass
        (one ``alive_mask`` over the level's parents, one over every gathered
        source, one ``isin`` against the shared exclusion snapshot), and only
        the seeded per-parent draws run in a Python loop.  Because the
        ``used`` exclusion set grows *within* a level as earlier parents
        recruit, each parent's pre-gathered pool gets a conflict-resolution
        pass subtracting the uids recruited since the level's snapshot;
        membership filtering commutes with the pools' first-occurrence dedup,
        and :meth:`~repro.walks.sampler.NodeSampler.draw_from_pool` consumes
        the RNG exactly like the historical per-parent
        ``draw_distinct_sources`` call, so recruited records, short-draw
        counts and bandwidth charges are byte-identical to the sequential
        loop (regression-proven against the reference oracle in
        ``tests/test_core_landmarks.py``).
        """
        ctx = self.ctx
        params = ctx.params
        sampler = ctx.sampler
        rng = ctx.rng.generator
        roster = self.committee.alive_members()
        expires = round_index + params.landmark_lifetime
        used: Set[int] = set(roster)
        # Existing still-active landmarks also count as "already in the tree"
        # so rebuilding does not concentrate the role on the same nodes.
        for uid in self.active_landmarks(round_index):
            used.add(uid)

        recruited = 0
        short_draws = 0
        current_level: List[int] = list(roster)
        # Committee members themselves are trivially landmarks (they know the roster).
        for member in roster:
            self._records[member] = LandmarkRecord(
                uid=member,
                depth=0,
                recruited_round=round_index,
                expires_round=expires,
                recruiter=member,
            )

        depth_target = params.tree_depth
        roster_size = len(roster)
        cap = params.landmark_cap
        fanout = params.landmark_fanout
        max_age = params.landmark_refresh_period
        # The recruit message carries the committee roster.  Charged straight
        # to the ledger: ctx.charge would re-probe the sender's liveness per
        # child, but every drawing parent is alive by the level mask.
        ledger = ctx.network.ledger
        network_round = ctx.network.round_index
        recruit_ids = 3 + roster_size
        for depth in range(1, depth_target + 1):
            # -- bulk phase: one pool gather over the whole level against the
            # level-start exclusion snapshot.  Pool gathering consumes no
            # RNG, so gathering eagerly (even for parents a cap break will
            # skip) is unobservable.  Liveness cannot change inside a build
            # (churn happens only at the start of a round): the roster comes
            # from alive_members() and every deeper parent was alive-filtered
            # when drawn from its own parent's pool this same round, so the
            # sequential loop's per-parent is_alive probe is vacuously true
            # and the level pass skips it (the reference oracle keeps it;
            # equivalence is regression-proven).
            pools = sampler.distinct_source_pools(current_level, max_age=max_age, exclude=used)
            # -- resolution phase: draw children per parent in deterministic
            # parent order, subtracting uids recruited earlier in this level.
            next_level: List[int] = []
            level_new: Set[int] = set()
            for parent, pool in zip(current_level, pools):
                if len(self._records) >= cap:
                    break
                if level_new and pool.size:
                    # Conflict resolution: subtract uids recruited by earlier
                    # parents of this level (set probes beat np.isin at pool
                    # sizes of a few dozen).
                    entries = pool.tolist()
                    if not level_new.isdisjoint(entries):
                        pool = np.fromiter(
                            (uid for uid in entries if uid not in level_new), dtype=np.int64
                        )
                children = sampler.draw_from_pool(pool, fanout, rng)
                if len(children) < fanout:
                    short_draws += 1
                for child in children:
                    used.add(child)
                    level_new.add(child)
                    next_level.append(child)
                    recruited += 1
                    self._records[child] = LandmarkRecord(
                        uid=child,
                        depth=depth,
                        recruited_round=round_index,
                        expires_round=expires,
                        recruiter=parent,
                    )
                ledger.charge_many(network_round, parent, len(children), ids_each=recruit_ids)
            current_level = next_level
            if not current_level:
                break

        self.total_recruited += recruited
        self._expire_stale(round_index)
        # After expiry every remaining record is alive and unexpired, so the
        # record count IS the active count -- no third _active_mask pass.
        report = LandmarkBuildReport(
            round_index=round_index,
            requested_depth=depth_target,
            recruited=recruited,
            active_after_build=len(self._records),
            roots=roster_size,
            short_draws=short_draws,
        )
        self.build_reports.append(report)
        ctx.record(
            "landmarks",
            "built",
            item_id=self.item_id,
            role=self.role,
            recruited=recruited,
            active=report.active_after_build,
        )
        return report

    def _expire_stale(self, round_index: int) -> None:
        """Drop records of expired or dead landmarks to bound memory."""
        uids, mask = self._active_mask(round_index)
        for uid in uids[~mask].tolist():
            del self._records[uid]

    # ------------------------------------------------------------------ analysis helpers
    def records(self) -> List[LandmarkRecord]:
        """Snapshot of all current landmark records (active or not yet expired)."""
        return list(self._records.values())

    def depth_histogram(self) -> Dict[int, int]:
        """Number of landmarks per tree depth (0 = committee members)."""
        hist: Dict[int, int] = {}
        for rec in self._records.values():
            hist[rec.depth] = hist.get(rec.depth, 0) + 1
        return hist
