"""Shared execution context for the protocol building blocks.

Committees, landmark sets, storage and retrieval operations all need the same
handful of collaborators: the dynamic network (to send messages and test
liveness), the node sampler (the walk-soup samples each node received), the
derived protocol parameters, a protocol-side RNG and a structured event log.
Bundling them in :class:`ProtocolContext` keeps the building blocks' method
signatures small and makes them easy to unit-test with hand-built fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.params import ProtocolParameters
from repro.net.network import DynamicNetwork
from repro.obs.observer import NULL_OBSERVER
from repro.util.rng import RngStream
from repro.util.simlog import SimulationLog
from repro.walks.sampler import NodeSampler

__all__ = ["ProtocolContext"]


@dataclass
class ProtocolContext:
    """Everything a protocol building block needs to execute one round.

    Attributes
    ----------
    network:
        The dynamic network (membership, topology, messaging, bandwidth ledger).
    sampler:
        Per-node windows of delivered walk samples.
    params:
        Derived protocol parameters for this network size.
    rng:
        Protocol-side RNG stream (the algorithm's coins).
    log:
        Structured event log shared by all components of one simulation.
    obs:
        The observer (:mod:`repro.obs`) for spans and counters.  Defaults to
        the no-op :data:`~repro.obs.observer.NULL_OBSERVER`, so hand-built
        fixtures and unobserved runs pay nothing; it never consumes protocol
        randomness either way.
    """

    network: DynamicNetwork
    sampler: NodeSampler
    params: ProtocolParameters
    rng: RngStream
    log: SimulationLog = field(default_factory=SimulationLog)
    obs: Any = NULL_OBSERVER

    @property
    def round_index(self) -> int:
        """Current round of the underlying network."""
        return self.network.round_index

    def is_alive(self, uid: int) -> bool:
        """Liveness shortcut."""
        return self.network.is_alive(uid)

    def charge(self, sender: int, ids: int = 0, payload_bytes: int = 0) -> None:
        """Charge a message from ``sender`` to the bandwidth ledger.

        Building blocks use this for interactions they simulate in aggregate
        (e.g. the committee's intra-clique count exchange) so that experiment
        E8's accounting stays honest even where no Message object is built.
        """
        if self.network.is_alive(sender):
            self.network.ledger.charge(
                self.network.round_index, sender, ids=ids, payload_bytes=payload_bytes
            )
            if self.obs.telemetry:
                self.obs.count("net.messages")
                self.obs.count("net.payload_bytes", payload_bytes)

    def record(self, category: str, message: str, **data) -> None:
        """Append a structured event to the simulation log."""
        if self.obs.telemetry:
            self.obs.count(f"log.{category}")
        self.log.record(self.network.round_index, category, message, **data)
