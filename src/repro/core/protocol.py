"""The top-level P2P storage-and-search system facade.

:class:`P2PStorageSystem` wires together every substrate and protocol from
the paper into one object with a small, user-facing API:

* a dynamic expander network with an oblivious churn adversary (Section 2.1);
* the continuously running random-walk soup and per-node sampler (Section 3);
* the storage service -- committees, landmarks, replication or IDA pieces
  (Algorithms 1-3, Section 4.4);
* the retrieval service (Algorithm 4).

Typical use::

    system = P2PStorageSystem(n=1024, churn_rate=8, seed=7)
    system.warm_up()                          # let the walk soup mix
    item = system.store(b"hello world")       # Algorithm 3
    system.run_rounds(20)                     # churn happens, committees refresh
    op = system.retrieve(item.item_id)        # Algorithm 4
    system.run_until_finished(op)
    assert op.succeeded

Everything is deterministic given ``seed``: adversary and protocol draw from
independent streams derived from it (obliviousness by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.context import ProtocolContext
from repro.core.params import ProtocolParameters
from repro.core.retrieval import RetrievalOperation, RetrievalService
from repro.core.storage import StorageService, StoredItem
from repro.net.churn import ChurnAdversary, NoChurn, UniformRandomChurn
from repro.net.network import ChurnReport, DynamicNetwork
from repro.obs.observer import active_observer
from repro.util.bitbudget import BitBudgetLedger
from repro.util.rng import SplitRng
from repro.util.simlog import SimulationLog
from repro.walks.sampler import NodeSampler
from repro.walks.soup import SampleDelivery, WalkSoup

__all__ = ["RoundSummary", "P2PStorageSystem"]


@dataclass(frozen=True)
class RoundSummary:
    """What happened in one call to :meth:`P2PStorageSystem.run_round`."""

    round_index: int
    churned: int
    walks_delivered: int
    walks_in_flight: int
    items_available: int
    items_total: int
    retrievals_pending: int
    retrievals_succeeded: int


class P2PStorageSystem:
    """A complete churn-resilient storage and search system (the paper's contribution).

    Parameters
    ----------
    n:
        Stable network size (must be even and at least 16).
    churn_rate:
        Nodes replaced per round by the default uniform oblivious adversary.
        Ignored when ``adversary`` is given explicitly.
    seed:
        Experiment seed; adversary and protocol streams are derived from it.
    params:
        Optional pre-built :class:`ProtocolParameters`; by default they are
        derived from ``n`` and ``param_overrides``.
    adversary:
        Optional explicit churn adversary (must be constructed with an
        adversary-side RNG to stay oblivious).
    storage_mode:
        ``"replicate"`` or ``"erasure"``.
    degree:
        Regular degree of the per-round expander topologies.
    track_bandwidth:
        Enable the bandwidth ledger (slightly slower; required for E8).
    """

    def __init__(
        self,
        n: int,
        churn_rate: int = 0,
        seed: int = 0,
        params: Optional[ProtocolParameters] = None,
        adversary: Optional[ChurnAdversary] = None,
        storage_mode: str = "replicate",
        degree: int = 8,
        track_bandwidth: bool = True,
        param_overrides: Optional[Dict[str, float]] = None,
    ) -> None:
        self.seed = seed
        self.rng = SplitRng(seed)
        overrides = dict(param_overrides or {})
        overrides.setdefault("degree", degree)
        self.params = params if params is not None else ProtocolParameters.for_network(n, **overrides)
        if self.params.n != n:
            raise ValueError("params.n does not match n")

        if adversary is None:
            if churn_rate > 0:
                adversary = UniformRandomChurn(n, churn_rate, self.rng.adversary.generator)
            else:
                adversary = NoChurn()
        self.adversary = adversary

        self.ledger = BitBudgetLedger(n, enabled=track_bandwidth)
        self.network = DynamicNetwork(
            n_slots=n,
            degree=self.params.degree,
            adversary=adversary,
            adversary_rng=self.rng.adversary.spawn("topology"),
            ledger=self.ledger,
        )
        self.soup = WalkSoup(
            self.network,
            walk_length=self.params.walk_length,
            walks_per_node=self.params.walks_per_node,
            rng=self.rng.protocol.spawn("soup"),
        )
        self.sampler = NodeSampler(self.network, retention=max(4, self.params.landmark_refresh_period))
        self.log = SimulationLog()
        # The ambient observer (repro.obs) -- the no-op singleton unless a
        # use_observer(...) context is active.  Captured once: spans/counters
        # read wall-clocks and dicts only, never an RNG stream.
        self.obs = active_observer()
        self.ctx = ProtocolContext(
            network=self.network,
            sampler=self.sampler,
            params=self.params,
            rng=self.rng.protocol.spawn("protocol"),
            log=self.log,
            obs=self.obs,
        )
        self.storage = StorageService(self.ctx, mode=storage_mode)
        self.retrieval = RetrievalService(self.ctx, self.storage)
        self._last_delivery: Optional[SampleDelivery] = None
        self.last_churn_report: Optional[ChurnReport] = None
        self.round_summaries: List[RoundSummary] = []

    # ------------------------------------------------------------------ round loop
    @property
    def round_index(self) -> int:
        """Current round of the underlying network (-1 before the first round)."""
        return self.network.round_index

    @property
    def n(self) -> int:
        """Stable network size."""
        return self.network.n_slots

    def run_round(self) -> RoundSummary:
        """Execute one full protocol round (Section 2.1's round structure)."""
        obs = self.obs
        with obs.span("round.churn"):
            report: ChurnReport = self.network.begin_round()
        self.last_churn_report = report
        with obs.span("round.soup_step"):
            delivery = self.soup.advance_round(report)
        with obs.span("round.sampler_ingest"):
            ingested = self.sampler.ingest(delivery)
            expired = self.sampler.expire(report.round_index)
        self._last_delivery = delivery
        if obs.telemetry:
            obs.count("soup.tokens_delivered", delivery.count)
            obs.count("sampler.rows_ingested", ingested)
            obs.count("sampler.rows_expired", expired)

        with obs.span("round.storage_maintenance"):
            self.storage.step(report.round_index)
        with obs.span("round.retrieval"):
            self.retrieval.step(report.round_index)
        self.network.end_round()

        available = self.storage.available_count()
        summary = RoundSummary(
            round_index=report.round_index,
            churned=report.count,
            walks_delivered=delivery.count,
            walks_in_flight=self.soup.in_flight,
            items_available=available,
            items_total=len(self.storage.items),
            retrievals_pending=len(self.retrieval.pending_operations()),
            retrievals_succeeded=sum(1 for op in self.retrieval.operations.values() if op.succeeded),
        )
        self.round_summaries.append(summary)
        return summary

    def run_rounds(self, count: int) -> List[RoundSummary]:
        """Execute ``count`` rounds and return their summaries."""
        return [self.run_round() for _ in range(count)]

    def warm_up(self, rounds: Optional[int] = None) -> List[RoundSummary]:
        """Run enough rounds for the walk soup to start delivering samples.

        The default is one walk length plus two rounds, after which every
        node receives roughly ``walks_per_node`` fresh samples per round
        (Lemma 1's steady state).
        """
        rounds = self.params.walk_length + 2 if rounds is None else rounds
        return self.run_rounds(rounds)

    # ------------------------------------------------------------------ user operations
    def random_alive_node(self, require_samples: bool = True) -> int:
        """Pick a uniformly random alive node (optionally one that has received samples)."""
        uids = self.network.alive_uids()
        rng = self.ctx.rng.generator
        for _ in range(64):
            uid = int(uids[int(rng.integers(0, uids.size))])
            if not require_samples or self.sampler.sample_count(uid) > 0:
                return uid
        return int(uids[int(rng.integers(0, uids.size))])

    def store(
        self,
        data: bytes,
        owner_uid: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> StoredItem:
        """Store ``data`` in the network (Algorithm 3); the system picks an owner if omitted."""
        if owner_uid is None:
            owner_uid = self.random_alive_node()
        return self.storage.store(owner_uid, data, mode=mode)

    def retrieve(self, item_id: int, requester_uid: Optional[int] = None) -> RetrievalOperation:
        """Issue a retrieval of ``item_id`` (Algorithm 4); requester picked at random if omitted."""
        if requester_uid is None:
            requester_uid = self.random_alive_node()
        return self.retrieval.retrieve(requester_uid, item_id)

    def run_until_finished(
        self, operations: RetrievalOperation | Sequence[RetrievalOperation], max_rounds: Optional[int] = None
    ) -> int:
        """Run rounds until the given retrievals finish (or ``max_rounds`` elapse).

        Returns the number of rounds executed.
        """
        ops = [operations] if isinstance(operations, RetrievalOperation) else list(operations)
        limit = max_rounds if max_rounds is not None else self.params.retrieval_timeout + 4
        executed = 0
        while executed < limit and any(op.status == "pending" for op in ops):
            self.run_round()
            executed += 1
        return executed

    # ------------------------------------------------------------------ reporting
    def availability(self) -> float:
        """Fraction of stored items whose data is currently recoverable."""
        total = len(self.storage.items)
        if not total:
            return 1.0
        return self.storage.available_count() / total

    def findability(self) -> float:
        """Fraction of stored items that are available and advertised by landmarks."""
        ids = self.storage.item_ids
        if not ids:
            return 1.0
        return sum(1 for i in ids if self.storage.is_findable(i)) / len(ids)

    def bandwidth_summary(self) -> Dict[str, float]:
        """Bandwidth ledger summary plus the walk soup's estimated per-node traffic."""
        summary = self.ledger.summary()
        summary["walk_bits_per_node_round_estimate"] = self.soup.estimated_bits_per_node_round(
            id_bits=self.ledger.id_bits
        )
        summary["walk_tokens_per_node_round_mean"] = self.soup.stats.mean_tokens_per_node_round
        return summary

    def describe(self) -> Dict[str, object]:
        """One-line description of the configuration (used in experiment tables)."""
        return {
            "n": self.n,
            "seed": self.seed,
            "adversary": self.adversary.describe(),
            "storage_mode": self.storage.mode,
            "params": self.params.summary(),
        }
