"""Persistent data storage (Algorithm 3) with replication or erasure coding (Section 4.4).

Storing an item ``I`` on behalf of node ``u`` works as follows:

1. ``u`` creates a **storage committee** of Theta(log n) near-random nodes
   (Algorithm 1).  In replication mode every member stores a full copy of
   ``I``; in erasure (IDA) mode every member stores one piece, any
   ``K = committee_size - redundancy`` of which reconstruct ``I``.
2. The committee builds and keeps rebuilding a set of Omega(sqrt(n))
   **storage landmarks** (Algorithm 2) that know the committee roster and
   therefore where ``I`` lives.
3. Every committee refresh (Algorithm 1 maintenance) the surviving members
   hand the item over to the next generation: in replication mode one holder
   re-sends the copy to each new member; in IDA mode the leader gathers
   ``K`` pieces, reconstructs, re-encodes and re-disperses.

The :class:`StorageService` owns every stored item, drives the per-round
maintenance, answers the "is ``uid`` a storage landmark / holder of item
``I``" queries that the retrieval protocol needs, and records the metrics
(replica counts, landmark counts, bytes stored, loss events) used by
experiments E5, E8, E9 and E10.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.committee import Committee, plan_refreshes
from repro.core.context import ProtocolContext
from repro.core.erasure import InformationDispersal, Piece
from repro.core.landmarks import LandmarkSet

__all__ = ["StoredItem", "StorageService", "StorageSnapshot"]




@dataclass
class StorageSnapshot:
    """Per-round view of one stored item's health (collected by the metrics module)."""

    round_index: int
    item_id: int
    replica_count: int
    landmark_count: int
    available: bool
    findable: bool


@dataclass
class StoredItem:
    """Book-keeping for one stored data item."""

    item_id: int
    owner_uid: int
    data: bytes
    mode: str
    created_round: int
    committee: Committee
    landmarks: LandmarkSet
    #: replication mode: uids currently holding a full copy
    holders: Dict[int, bool] = field(default_factory=dict)
    #: erasure mode: uid -> Piece
    pieces: Dict[int, Piece] = field(default_factory=dict)
    coder: Optional[InformationDispersal] = None
    lost: bool = False
    lost_round: Optional[int] = None
    handover_count: int = 0
    reconstruction_failures: int = 0
    #: last round this item's maintenance ran (guards the event-driven
    #: engine against double-stepping when a delayed maintenance event
    #: collides with the current round's own event)
    last_maintained_round: int = -1

    @property
    def size_bytes(self) -> int:
        """Original item size."""
        return len(self.data)


class StorageService:
    """Stores items persistently on committees + landmarks (Algorithm 3, Section 4.4).

    Parameters
    ----------
    ctx:
        Shared protocol context.
    mode:
        ``"replicate"`` (Theta(log n) full copies, the paper's base scheme) or
        ``"erasure"`` (one IDA piece per committee member, Section 4.4).
    """

    def __init__(self, ctx: ProtocolContext, mode: str = "replicate") -> None:
        if mode not in ("replicate", "erasure"):
            raise ValueError("mode must be 'replicate' or 'erasure'")
        self.ctx = ctx
        self.mode = mode
        self.items: Dict[int, StoredItem] = {}
        self.loss_events: List[int] = []
        # Per-service (not module-global) so item ids -- which feed the event
        # engine's deterministic tie hashes -- never depend on process history.
        self._item_ids = itertools.count(1)

    # ------------------------------------------------------------------ store
    def store(
        self,
        owner_uid: int,
        data: bytes,
        item_id: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> StoredItem:
        """Store ``data`` on behalf of ``owner_uid`` (Algorithm 3).

        Returns the :class:`StoredItem` book-keeping record.  The owner must
        currently be in the network and should have received walk samples
        (i.e. the soup should have warmed up for at least one walk length).
        """
        if not self.ctx.is_alive(owner_uid):
            raise ValueError(f"owner {owner_uid} is not in the network")
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError("data must be bytes")
        mode = self.mode if mode is None else mode
        if mode not in ("replicate", "erasure"):
            raise ValueError("mode must be 'replicate' or 'erasure'")
        item_id = next(self._item_ids) if item_id is None else int(item_id)
        if item_id in self.items:
            raise ValueError(f"item {item_id} already stored")

        record_holder: Dict[str, StoredItem] = {}
        committee = Committee.create(
            self.ctx,
            creator_uid=owner_uid,
            task="storage",
            item_id=item_id,
            on_handover=self._make_handover(record_holder),
        )
        return self._register_item(owner_uid, bytes(data), mode, item_id, committee, record_holder)

    def store_many(
        self,
        owner_uids: Sequence[int],
        datas: Sequence[bytes],
        mode: Optional[str] = None,
    ) -> List[StoredItem]:
        """Store several items in one batch (one pooled committee gather).

        All storage committees are recruited first through
        :meth:`Committee.create_many` (a single sampler pool gather), then
        each item's landmarks are built in order.  This interleaves RNG
        differently from consecutive :meth:`store` calls -- it is a batched
        *variant*, not a drop-in replacement -- so new experiments should
        pick one spelling and keep it.
        """
        if len(owner_uids) != len(datas):
            raise ValueError("owner_uids and datas must have the same length")
        mode = self.mode if mode is None else mode
        if mode not in ("replicate", "erasure"):
            raise ValueError("mode must be 'replicate' or 'erasure'")
        for owner_uid in owner_uids:
            if not self.ctx.is_alive(owner_uid):
                raise ValueError(f"owner {owner_uid} is not in the network")
        for data in datas:
            if not isinstance(data, (bytes, bytearray)):
                raise TypeError("data must be bytes")
        item_ids = [next(self._item_ids) for _ in owner_uids]
        record_holders = [dict() for _ in owner_uids]
        committees = Committee.create_many(
            self.ctx,
            creator_uids=[int(u) for u in owner_uids],
            task="storage",
            item_ids=item_ids,
            on_handovers=[self._make_handover(holder) for holder in record_holders],
        )
        return [
            self._register_item(int(owner), bytes(data), mode, item_id, committee, holder)
            for owner, data, item_id, committee, holder in zip(
                owner_uids, datas, item_ids, committees, record_holders
            )
        ]

    def _make_handover(self, record_holder: Dict[str, StoredItem]):
        """Handover callback bound to a not-yet-constructed item record."""

        def handover(old: List[int], new: List[int], leader: int, round_index: int) -> None:
            item = record_holder.get("item")
            if item is not None:
                self._handover(item, old, new, leader, round_index)

        return handover

    def _register_item(
        self,
        owner_uid: int,
        data: bytes,
        mode: str,
        item_id: int,
        committee: Committee,
        record_holder: Dict[str, StoredItem],
    ) -> StoredItem:
        """Everything after committee recruitment: landmarks, charges, record."""
        landmarks = LandmarkSet(
            self.ctx,
            committee=committee,
            item_id=item_id,
            role="storage",
            created_round=self.ctx.round_index,
        )
        item = StoredItem(
            item_id=item_id,
            owner_uid=owner_uid,
            data=bytes(data),
            mode=mode,
            created_round=self.ctx.round_index,
            committee=committee,
            landmarks=landmarks,
        )
        record_holder["item"] = item
        self.items[item_id] = item

        members = committee.alive_members()
        if mode == "replicate":
            for member in members:
                item.holders[member] = True
                self.ctx.charge(owner_uid, ids=3, payload_bytes=item.size_bytes)
        else:
            params = self.ctx.params
            total = max(len(members), params.erasure_required_pieces + 1)
            coder = InformationDispersal(
                total_pieces=max(total, params.erasure_required_pieces + 1),
                required_pieces=params.erasure_required_pieces,
            )
            item.coder = coder
            pieces = coder.encode(item.data)
            for member, piece in zip(members, pieces):
                item.pieces[member] = piece
                self.ctx.charge(owner_uid, ids=4, payload_bytes=piece.size_bytes)

        # Build the first landmark set immediately.
        landmarks.build(self.ctx.round_index)
        self.ctx.record(
            "storage",
            "stored",
            item_id=item_id,
            owner=owner_uid,
            mode=mode,
            replicas=self.replica_count(item_id),
        )
        return item

    # ------------------------------------------------------------------ per-round driver
    def step(self, round_index: int) -> None:
        """Run one round of maintenance for every stored item.

        All committee refreshes due this round are *planned* first in one
        batch (:func:`repro.core.committee.plan_refreshes`: one liveness
        pass, one count exchange, one candidate-pool gather for every
        refreshing committee) and then executed per item in the original
        order, so RNG consumption -- and therefore every payload -- is
        byte-identical to unbatched stepping.
        """
        obs = self.ctx.obs
        live_items = [item for item in self.items.values() if not item.lost]
        due = [item.committee for item in live_items if item.committee.refresh_due(round_index)]
        with obs.span("round.committee_refresh"):
            plans = plan_refreshes(self.ctx, due, round_index) if due else {}
        if due and obs.telemetry:
            obs.count("committee.refreshes_planned", len(due))
        for item in live_items:
            self._maintain_item(item, round_index, plans.get(item.committee.committee_id))

    def step_item(self, item_id: int, round_index: int) -> None:
        """Run one round of maintenance for a single item (event-driven engine).

        A missing, lost, or already-maintained item is a no-op, so a delayed
        maintenance event colliding with the item's own event for the same
        round preserves the lockstep invariant of one maintenance per round.
        Refresh planning happens inline (``plan=None``), which is proven
        byte-identical to the batched plan in ``tests/test_core_committee.py``.
        """
        item = self.items.get(item_id)
        if item is None or item.lost:
            return
        self._maintain_item(item, round_index, None)

    def _maintain_item(self, item: StoredItem, round_index: int, plan) -> None:
        if item.last_maintained_round >= round_index:
            return
        item.last_maintained_round = round_index
        obs = self.ctx.obs
        refreshed = item.committee.step(round_index, plan=plan)
        if refreshed is not None and obs.telemetry:
            obs.count("committee.refreshes_executed")
        with obs.span("round.landmark_maintenance"):
            item.landmarks.step(round_index)
        self._check_loss(item, round_index)

    # ------------------------------------------------------------------ handover
    def _handover(
        self, item: StoredItem, old: List[int], new: List[int], leader: int, round_index: int
    ) -> None:
        """Transfer the item (copies or pieces) from the old generation to the new one."""
        ctx = self.ctx
        item.handover_count += 1
        if item.mode == "replicate":
            alive_holders = [u for u in item.holders if ctx.is_alive(u)]
            if not alive_holders:
                self._mark_lost(item, round_index, "no surviving replica at handover")
                return
            source = leader if leader in alive_holders else alive_holders[0]
            new_alive = [u for u in new if ctx.is_alive(u)]
            for member in new_alive:
                ctx.charge(source, ids=3, payload_bytes=item.size_bytes)
            item.holders = {u: True for u in new_alive}
            if not item.holders:
                self._mark_lost(item, round_index, "no live recruits accepted the copy")
        else:
            coder = item.coder
            assert coder is not None
            alive_pieces = [p for u, p in item.pieces.items() if ctx.is_alive(u)]
            if len(alive_pieces) < coder.required_pieces:
                item.reconstruction_failures += 1
                self._mark_lost(
                    item,
                    round_index,
                    f"only {len(alive_pieces)} of {coder.required_pieces} pieces survive",
                )
                return
            # Surviving holders ship their pieces to the leader, which
            # reconstructs, re-encodes and re-disperses (Section 4.4).
            for uid, piece in item.pieces.items():
                if ctx.is_alive(uid):
                    ctx.charge(uid, ids=4, payload_bytes=piece.size_bytes)
            reconstructed = coder.decode(alive_pieces)
            if reconstructed != item.data:
                # Should never happen; kept as a hard correctness check.
                raise RuntimeError(f"IDA reconstruction mismatch for item {item.item_id}")
            new_alive = [u for u in new if ctx.is_alive(u)]
            total = max(len(new_alive), coder.required_pieces + 1)
            if total != coder.total_pieces:
                coder = InformationDispersal(total_pieces=total, required_pieces=coder.required_pieces)
                item.coder = coder
            pieces = coder.encode(item.data)
            item.pieces = {}
            sender = leader if ctx.is_alive(leader) else (new_alive[0] if new_alive else leader)
            for member, piece in zip(new_alive, pieces):
                item.pieces[member] = piece
                ctx.charge(sender, ids=4, payload_bytes=piece.size_bytes)
            if not item.pieces:
                self._mark_lost(item, round_index, "no live recruits accepted pieces")

    def _check_loss(self, item: StoredItem, round_index: int) -> None:
        """Detect an item whose data can no longer be recovered."""
        if item.lost:
            return
        if item.mode == "replicate":
            if not any(self.ctx.is_alive(u) for u in item.holders):
                self._mark_lost(item, round_index, "all replicas churned out")
        else:
            coder = item.coder
            assert coder is not None
            alive = sum(1 for u in item.pieces if self.ctx.is_alive(u))
            if alive < coder.required_pieces:
                self._mark_lost(item, round_index, "too few pieces survive")

    def _mark_lost(self, item: StoredItem, round_index: int, reason: str) -> None:
        item.lost = True
        item.lost_round = round_index
        self.loss_events.append(item.item_id)
        self.ctx.record("storage", "lost", item_id=item.item_id, reason=reason)

    # ------------------------------------------------------------------ queries
    def replica_count(self, item_id: int) -> int:
        """Alive nodes currently holding a copy (or piece) of the item."""
        item = self.items[item_id]
        pool = item.holders if item.mode == "replicate" else item.pieces
        return sum(1 for u in pool if self.ctx.is_alive(u))

    def landmark_count(self, item_id: int) -> int:
        """Active storage landmarks of the item."""
        return self.items[item_id].landmarks.active_count()

    def is_available(self, item_id: int) -> bool:
        """Whether the item's data can still be recovered from the network."""
        item = self.items.get(item_id)
        if item is None or item.lost:
            return False
        if item.mode == "replicate":
            return self.replica_count(item_id) >= 1
        coder = item.coder
        assert coder is not None
        return self.replica_count(item_id) >= coder.required_pieces

    def available_count(self) -> int:
        """Number of stored items whose data is currently recoverable.

        Vectorised equivalent of ``sum(is_available(i) for i in item_ids)``:
        every item's holder (or piece-holder) uids are concatenated into one
        flat array, liveness is one bulk
        :meth:`~repro.net.network.DynamicNetwork.alive_mask` call, and the
        per-item alive counts come out of a single ``add.reduceat``.  Called
        once per round by the engine's :class:`RoundSummary` accounting.
        """
        pools: List[np.ndarray] = []
        starts: List[int] = []
        thresholds: List[int] = []
        offset = 0
        for item in self.items.values():
            if item.lost:
                continue
            pool = item.holders if item.mode == "replicate" else item.pieces
            if not pool:
                continue
            uids = np.fromiter(pool, dtype=np.int64, count=len(pool))
            pools.append(uids)
            starts.append(offset)
            offset += uids.size
            if item.mode == "replicate":
                thresholds.append(1)
            else:
                assert item.coder is not None
                thresholds.append(item.coder.required_pieces)
        if not pools:
            return 0
        alive = self.ctx.network.alive_mask(np.concatenate(pools)).astype(np.int64)
        counts = np.add.reduceat(alive, np.asarray(starts, dtype=np.int64))
        return int(np.count_nonzero(counts >= np.asarray(thresholds, dtype=np.int64)))

    def is_findable(self, item_id: int) -> bool:
        """Available *and* advertised by at least one active storage landmark."""
        return self.is_available(item_id) and self.landmark_count(item_id) >= 1

    def is_storage_landmark(self, item_id: int, uid: int) -> bool:
        """Whether ``uid`` currently serves as a storage landmark (or holder) for the item.

        This is the predicate a probed node evaluates locally when a search
        landmark asks it about ``I``.
        """
        item = self.items.get(item_id)
        if item is None or item.lost:
            return False
        uid = int(uid)
        if item.landmarks.is_landmark(uid):
            return True
        pool = item.holders if item.mode == "replicate" else item.pieces
        return uid in pool and self.ctx.is_alive(uid)

    def holders_of(self, item_id: int) -> List[int]:
        """Alive uids currently holding the item (copies or pieces)."""
        item = self.items[item_id]
        pool = item.holders if item.mode == "replicate" else item.pieces
        return [u for u in pool if self.ctx.is_alive(u)]

    def read(self, item_id: int) -> Optional[bytes]:
        """Recover the item's bytes if possible (used to verify retrieval correctness)."""
        item = self.items.get(item_id)
        if item is None or item.lost:
            return None
        if item.mode == "replicate":
            return item.data if self.replica_count(item_id) >= 1 else None
        coder = item.coder
        assert coder is not None
        alive_pieces = [p for u, p in item.pieces.items() if self.ctx.is_alive(u)]
        if len(alive_pieces) < coder.required_pieces:
            return None
        return coder.decode(alive_pieces)

    def stored_bytes(self, item_id: int) -> int:
        """Bytes currently stored network-wide for the item (replication vs IDA comparison)."""
        item = self.items[item_id]
        if item.mode == "replicate":
            return self.replica_count(item_id) * item.size_bytes
        return sum(p.size_bytes for u, p in item.pieces.items() if self.ctx.is_alive(u))

    def snapshot(self, round_index: int) -> List[StorageSnapshot]:
        """Health snapshot of every item for the metrics collector."""
        out: List[StorageSnapshot] = []
        for item_id in self.items:
            out.append(
                StorageSnapshot(
                    round_index=round_index,
                    item_id=item_id,
                    replica_count=self.replica_count(item_id),
                    landmark_count=self.landmark_count(item_id),
                    available=self.is_available(item_id),
                    findable=self.is_findable(item_id),
                )
            )
        return out

    @property
    def item_ids(self) -> List[int]:
        """Ids of all items ever stored."""
        return list(self.items.keys())
