"""The node-sampling service built on top of the walk soup.

Protocols never touch raw token arrays; instead every node exposes a small
window of the most recent samples it received (source uids of walks that were
delivered to it).  The :class:`NodeSampler` maintains those windows for all
alive nodes, is fed a :class:`repro.walks.soup.SampleDelivery` each round by
the simulation engine, and answers the two questions the paper's protocols
ask:

* "give me the samples node u received in round r" (committee election and
  leader choice in Algorithm 1, child selection in Algorithm 2), and
* "how many samples did node u receive in round r" (the walk-count exchange
  used to pick the committee leader ``c_r``).

Samples expire after ``retention`` rounds (the protocols only ever use the
current or immediately preceding round's samples) and all state of a churned
node is dropped, so memory stays O(n * retention * samples-per-round).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.net.network import DynamicNetwork
from repro.walks.soup import SampleDelivery

__all__ = ["ReceivedSample", "NodeSampler"]


@dataclass(frozen=True)
class ReceivedSample:
    """One delivered walk as seen by its destination node."""

    source_uid: int
    birth_round: int
    delivered_round: int

    def age(self, current_round: int) -> int:
        """Rounds since delivery."""
        return current_round - self.delivered_round


class NodeSampler:
    """Per-node windows of recently delivered walk samples.

    Parameters
    ----------
    network:
        The dynamic network (used to drop state of churned nodes).
    retention:
        Number of rounds a delivered sample stays available.
    """

    def __init__(self, network: DynamicNetwork, retention: int = 4) -> None:
        if retention <= 0:
            raise ValueError("retention must be positive")
        self.network = network
        self.retention = retention
        # uid -> delivered_round -> list of ReceivedSample
        self._samples: Dict[int, Dict[int, List[ReceivedSample]]] = defaultdict(dict)
        self._last_round_ingested = -1

    # ------------------------------------------------------------------ ingestion
    def ingest(self, delivery: SampleDelivery) -> int:
        """Record a round's delivered walks; returns the number recorded.

        Deliveries addressed to uids that are no longer alive (possible when
        the engine batches operations) are dropped, mirroring message loss.
        """
        round_index = delivery.round_index
        self._last_round_ingested = max(self._last_round_ingested, round_index)
        recorded = 0
        for dest, src, birth in zip(
            delivery.destination_uids.tolist(),
            delivery.source_uids.tolist(),
            delivery.birth_rounds.tolist(),
        ):
            if not self.network.is_alive(int(dest)):
                continue
            bucket = self._samples[int(dest)].setdefault(round_index, [])
            bucket.append(
                ReceivedSample(source_uid=int(src), birth_round=int(birth), delivered_round=round_index)
            )
            recorded += 1
        return recorded

    def expire(self, current_round: int) -> None:
        """Drop samples older than ``retention`` rounds and state of dead nodes."""
        cutoff = current_round - self.retention
        dead: List[int] = []
        for uid, rounds in self._samples.items():
            if not self.network.is_alive(uid):
                dead.append(uid)
                continue
            stale = [r for r in rounds if r < cutoff]
            for r in stale:
                del rounds[r]
        for uid in dead:
            del self._samples[uid]

    # ------------------------------------------------------------------ queries
    def samples_of(
        self,
        uid: int,
        round_index: Optional[int] = None,
        max_age: Optional[int] = None,
    ) -> List[ReceivedSample]:
        """Samples received by ``uid``.

        With ``round_index`` set, only that round's deliveries are returned;
        with ``max_age`` set, all samples delivered within the last
        ``max_age`` rounds (relative to the most recent ingested round).
        """
        rounds = self._samples.get(int(uid))
        if not rounds:
            return []
        if round_index is not None:
            return list(rounds.get(round_index, []))
        if max_age is None:
            out: List[ReceivedSample] = []
            for bucket in rounds.values():
                out.extend(bucket)
            return out
        cutoff = self._last_round_ingested - max_age
        out = []
        for r, bucket in rounds.items():
            if r >= cutoff:
                out.extend(bucket)
        return out

    def sample_count(self, uid: int, round_index: Optional[int] = None) -> int:
        """Number of samples ``uid`` received (optionally in one round)."""
        return len(self.samples_of(uid, round_index=round_index))

    def sample_sources(
        self,
        uid: int,
        round_index: Optional[int] = None,
        alive_only: bool = True,
        max_age: Optional[int] = None,
    ) -> List[int]:
        """Source uids of the samples ``uid`` received, optionally filtered to alive sources."""
        sources = [
            s.source_uid for s in self.samples_of(uid, round_index=round_index, max_age=max_age)
        ]
        if alive_only:
            sources = [s for s in sources if self.network.is_alive(s)]
        return sources

    def draw_distinct_sources(
        self,
        uid: int,
        k: int,
        rng: np.random.Generator,
        exclude: Optional[Sequence[int]] = None,
        round_index: Optional[int] = None,
        max_age: Optional[int] = None,
    ) -> List[int]:
        """Draw up to ``k`` distinct, alive, non-excluded sample sources of ``uid``.

        Used by committee creation ("choose h log n sample ids") and by the
        landmark tree ("select 2 unused nodes among their own samples").
        Returns fewer than ``k`` if the node has not received enough distinct
        usable samples -- callers must handle short draws.
        """
        excluded = set(int(e) for e in exclude) if exclude else set()
        pool: List[int] = []
        seen: set[int] = set()
        for source in self.sample_sources(
            uid, round_index=round_index, alive_only=True, max_age=max_age
        ):
            if source in seen or source in excluded or source == uid:
                continue
            seen.add(source)
            pool.append(source)
        if len(pool) <= k:
            return pool
        idx = rng.choice(len(pool), size=k, replace=False)
        return [pool[int(i)] for i in idx]

    # ------------------------------------------------------------------ stats
    def nodes_with_samples(self, round_index: Optional[int] = None) -> int:
        """How many alive nodes hold at least one sample (optionally from one round)."""
        count = 0
        for uid in self._samples:
            if not self.network.is_alive(uid):
                continue
            if self.sample_count(uid, round_index=round_index) > 0:
                count += 1
        return count

    @property
    def last_round_ingested(self) -> int:
        """Most recent round whose deliveries were ingested."""
        return self._last_round_ingested
