"""The node-sampling service built on top of the walk soup.

Protocols never touch raw token arrays; instead every node exposes a small
window of the most recent samples it received (source uids of walks that were
delivered to it).  The :class:`NodeSampler` maintains those windows for all
alive nodes, is fed a :class:`repro.walks.soup.SampleDelivery` each round by
the simulation engine, and answers the two questions the paper's protocols
ask:

* "give me the samples node u received in round r" (committee election and
  leader choice in Algorithm 1, child selection in Algorithm 2), and
* "how many samples did node u receive in round r" (the walk-count exchange
  used to pick the committee leader ``c_r``).

Samples expire after ``retention`` rounds (the protocols only ever use the
current or immediately preceding round's samples) and all state of a churned
node is dropped, so memory stays O(n * retention * samples-per-round).

Storage is **columnar**: the soup already delivers each round as flat
``(dest_uid, src_uid, birth_round)`` arrays, and the sampler keeps them that
way -- one :class:`_RoundColumn` per retained round.  Ingestion is a single
bulk :meth:`repro.net.network.DynamicNetwork.alive_mask` filter, expiry drops
whole round columns, and per-uid windows are materialised lazily through an
argsort-based :class:`repro.util.grouping.GroupIndex` only when a protocol
actually asks.  A destination that is churned out *after* its samples were
ingested is masked at query time instead of eagerly scrubbed from every
column (queries for a dead uid return empty either way, and churn only
happens at the start of a round, before ingestion, so the two schemes are
observationally identical); its rows leave memory when their round column
expires.  No Python-level loop ever touches an individual sample; the boxed
:class:`ReceivedSample` objects of :meth:`NodeSampler.samples_of` are a thin
compatibility view built on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.net.network import DynamicNetwork
from repro.util.grouping import GroupIndex
from repro.walks.soup import SampleDelivery

__all__ = ["ReceivedSample", "NodeSampler"]

_EMPTY_INT64 = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class ReceivedSample:
    """One delivered walk as seen by its destination node."""

    source_uid: int
    birth_round: int
    delivered_round: int

    def age(self, current_round: int) -> int:
        """Rounds since delivery."""
        return current_round - self.delivered_round


class _RoundColumn:
    """One retained round's deliveries as parallel flat arrays.

    ``dest`` / ``src`` / ``birth`` keep the delivery order of the round; the
    destination grouping (:class:`GroupIndex`) is built lazily on first query
    and invalidated whenever the column is appended to.
    Within one destination the original delivery order is preserved (the
    grouping sort is stable), which keeps seeded sample draws byte-identical
    to the historical per-uid-window implementation.
    """

    __slots__ = ("dest", "src", "birth", "_index")

    def __init__(self, dest: np.ndarray, src: np.ndarray, birth: np.ndarray) -> None:
        self.dest = dest
        self.src = src
        self.birth = birth
        self._index: Optional[GroupIndex] = None

    @property
    def size(self) -> int:
        return int(self.dest.size)

    def append(self, dest: np.ndarray, src: np.ndarray, birth: np.ndarray) -> None:
        self.dest = np.concatenate([self.dest, dest])
        self.src = np.concatenate([self.src, src])
        self.birth = np.concatenate([self.birth, birth])
        self._index = None

    @property
    def index(self) -> GroupIndex:
        if self._index is None:
            self._index = GroupIndex(self.dest)
        return self._index

    def rows_of(self, uid: int) -> np.ndarray:
        """Row indices of ``uid``'s deliveries, in delivery order."""
        return self.index.rows_of(uid)


class NodeSampler:
    """Per-node windows of recently delivered walk samples (struct-of-arrays).

    Parameters
    ----------
    network:
        The dynamic network (used to drop state of churned nodes).
    retention:
        Number of rounds a delivered sample stays available.
    """

    def __init__(self, network: DynamicNetwork, retention: int = 4) -> None:
        if retention <= 0:
            raise ValueError("retention must be positive")
        self.network = network
        self.retention = retention
        # round -> column of that round's (alive-at-ingest) deliveries.
        self._columns: Dict[int, _RoundColumn] = {}
        self._sorted_rounds: Optional[List[int]] = None
        self._last_round_ingested = -1
        # (rounds tuple) -> concatenated view of those columns, grouped once.
        # Multi-column bulk queries (the landmark level pass asks for a
        # max_age window spanning every retained round, many times per
        # refresh round) share one merged GroupIndex instead of re-probing
        # each column; any ingest/expiry clears it.
        self._merged: Dict[tuple, _RoundColumn] = {}

    # ------------------------------------------------------------------ ingestion
    def ingest(self, delivery: SampleDelivery) -> int:
        """Record a round's delivered walks; returns the number recorded.

        Deliveries addressed to uids that are no longer alive (possible when
        the engine batches operations) are dropped, mirroring message loss.
        """
        round_index = delivery.round_index
        self._last_round_ingested = max(self._last_round_ingested, round_index)
        dest = np.asarray(delivery.destination_uids, dtype=np.int64)
        if dest.size == 0:
            return 0
        alive = self.network.alive_mask(dest)
        recorded = int(np.count_nonzero(alive))
        if recorded == 0:
            return 0
        if recorded != dest.size:
            dest = dest[alive]
            src = np.asarray(delivery.source_uids, dtype=np.int64)[alive]
            birth = np.asarray(delivery.birth_rounds)[alive]
        else:
            src = np.asarray(delivery.source_uids, dtype=np.int64)
            birth = np.asarray(delivery.birth_rounds)
        column = self._columns.get(round_index)
        if column is None:
            self._columns[round_index] = _RoundColumn(dest, src, birth.astype(np.int64))
            self._sorted_rounds = None
        else:
            column.append(dest, src, birth.astype(np.int64))
        if self._merged:
            self._merged = {}
        return recorded

    def expire(self, current_round: int) -> int:
        """Drop samples older than ``retention`` rounds; returns rows dropped.

        Dead destinations are masked at query time (see the module note), so
        expiry is pure ring-buffer maintenance: whole round columns fall off
        the back, no per-sample work.
        """
        cutoff = current_round - self.retention
        stale = [r for r in self._columns if r < cutoff]
        dropped = 0
        for r in stale:
            dropped += self._columns[r].size
            del self._columns[r]
        if stale:
            self._sorted_rounds = None
            self._merged = {}
        return dropped

    # ------------------------------------------------------------------ query plumbing
    def _rounds(self) -> List[int]:
        """Retained rounds in ascending order (cached)."""
        if self._sorted_rounds is None:
            self._sorted_rounds = sorted(self._columns)
        return self._sorted_rounds

    def _window_rounds(
        self, round_index: Optional[int] = None, max_age: Optional[int] = None
    ) -> List[int]:
        """Retained rounds matching a (round_index | max_age) window, ascending."""
        if round_index is not None:
            return [round_index] if round_index in self._columns else []
        rounds = self._rounds()
        if max_age is not None:
            floor = self._last_round_ingested - max_age
            rounds = [r for r in rounds if r >= floor]
        return rounds

    def _query_columns(
        self, round_index: Optional[int] = None, max_age: Optional[int] = None
    ) -> List[_RoundColumn]:
        """Retained columns matching a (round_index | max_age) window, round-ascending."""
        return [self._columns[r] for r in self._window_rounds(round_index, max_age)]

    def _merged_column(self, rounds: Sequence[int]) -> _RoundColumn:
        """One concatenated (round-ascending) column over ``rounds``, cached.

        The grouping of the concatenation is stable, so a uid's rows keep the
        round-ascending, delivery-ordered layout that per-column probing
        produces -- the merged column is observationally identical to the
        column list, it just pays the argsort once per (window, ingest epoch)
        instead of a searchsorted per column per bulk query.
        """
        key = tuple(rounds)
        cached = self._merged.get(key)
        if cached is None:
            columns = [self._columns[r] for r in rounds]
            cached = _RoundColumn(
                np.concatenate([c.dest for c in columns]),
                np.concatenate([c.src for c in columns]),
                np.concatenate([c.birth for c in columns]),
            )
            # Hold one merged window at a time: callers of one round share a
            # window, and a stale epoch's entries would only waste memory.
            self._merged = {key: cached}
        return cached

    def _sources_in_window(
        self, uid: int, round_index: Optional[int] = None, max_age: Optional[int] = None
    ) -> np.ndarray:
        """Source uids of ``uid``'s samples in the window, in delivery order.

        Empty for a churned-out ``uid``: a dead node's window is gone.
        """
        if not self.network.is_alive(uid):
            return _EMPTY_INT64
        parts = []
        for column in self._query_columns(round_index, max_age):
            rows = column.rows_of(int(uid))
            if rows.size:
                parts.append(column.src[rows])
        if not parts:
            return _EMPTY_INT64
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    # ------------------------------------------------------------------ queries
    def samples_of(
        self,
        uid: int,
        round_index: Optional[int] = None,
        max_age: Optional[int] = None,
    ) -> List[ReceivedSample]:
        """Samples received by ``uid``.

        With ``round_index`` set, only that round's deliveries are returned;
        with ``max_age`` set, all samples delivered within the last
        ``max_age`` rounds (relative to the most recent ingested round).
        This is the boxed compatibility view; bulk consumers should use
        :meth:`sample_counts` / :meth:`sources_by_destination` instead.
        """
        out: List[ReceivedSample] = []
        if not self.network.is_alive(uid):
            return out
        if round_index is not None:
            column = self._columns.get(round_index)
            if column is None:
                return out
            rows = column.rows_of(int(uid))
            for src, birth in zip(column.src[rows].tolist(), column.birth[rows].tolist()):
                out.append(
                    ReceivedSample(source_uid=int(src), birth_round=int(birth), delivered_round=round_index)
                )
            return out
        floor = None if max_age is None else self._last_round_ingested - max_age
        for r in sorted(self._columns):
            if floor is not None and r < floor:
                continue
            column = self._columns[r]
            rows = column.rows_of(int(uid))
            for src, birth in zip(column.src[rows].tolist(), column.birth[rows].tolist()):
                out.append(ReceivedSample(source_uid=int(src), birth_round=int(birth), delivered_round=r))
        return out

    def sample_count(self, uid: int, round_index: Optional[int] = None) -> int:
        """Number of samples ``uid`` received (optionally in one round)."""
        if not self.network.is_alive(uid):
            return 0
        total = 0
        for column in self._query_columns(round_index):
            total += int(column.rows_of(int(uid)).size)
        return total

    def sample_counts(self, uids: Sequence[int], round_index: Optional[int] = None) -> np.ndarray:
        """Bulk :meth:`sample_count`: samples received by each uid in ``uids``.

        One ``searchsorted`` against each retained column's grouping replaces
        a per-uid Python probe (used by the committee leader election's
        walk-count exchange).
        """
        query = np.asarray(uids, dtype=np.int64)
        totals = np.zeros(query.size, dtype=np.int64)
        columns = self._query_columns(round_index)
        for column in columns:
            totals += column.index.counts_of(query)
        if columns and totals.any():
            totals[~self.network.alive_mask(query)] = 0
        return totals

    def sample_sources(
        self,
        uid: int,
        round_index: Optional[int] = None,
        alive_only: bool = True,
        max_age: Optional[int] = None,
    ) -> List[int]:
        """Source uids of the samples ``uid`` received, optionally filtered to alive sources."""
        sources = self._sources_in_window(uid, round_index=round_index, max_age=max_age)
        if alive_only and sources.size:
            sources = sources[self.network.alive_mask(sources)]
        return sources.tolist()

    def sources_by_destination(
        self, round_index: int, alive_only: bool = True
    ) -> Dict[int, np.ndarray]:
        """All of one round's sample windows at once: dest uid -> source uids.

        The per-destination arrays keep delivery order; with ``alive_only``
        dead sources are filtered out (one bulk ``alive_mask`` over the whole
        column).  For consumers that need most nodes' windows in one round;
        callers touching only a few destinations should prefer per-uid
        :meth:`sample_sources` (a cached ``searchsorted`` per query).
        """
        column = self._columns.get(round_index)
        if column is None or column.size == 0:
            return {}
        index = column.index
        ordered_src = column.src[index.order]
        dest_alive = self.network.alive_mask(index.keys)
        if alive_only:
            ordered_alive = self.network.alive_mask(ordered_src)
        out: Dict[int, np.ndarray] = {}
        for g in np.nonzero(dest_alive)[0]:
            start, end = index.starts[g], index.ends[g]
            srcs = ordered_src[start:end]
            if alive_only:
                srcs = srcs[ordered_alive[start:end]]
            out[int(index.keys[g])] = srcs
        return out

    @staticmethod
    def _dedup_pool(sources: np.ndarray) -> np.ndarray:
        """Distinct sources ordered by first occurrence (the historical order)."""
        _, first_idx = np.unique(sources, return_index=True)
        first_idx.sort()
        return sources[first_idx]

    @staticmethod
    def draw_from_pool(pool: Optional[np.ndarray], k: int, rng: np.random.Generator) -> List[int]:
        """Draw up to ``k`` entries from a precomputed candidate pool.

        Consumes the RNG exactly like :meth:`draw_distinct_sources` (one
        ``choice`` call, and only when the pool is larger than ``k``), so a
        caller that batches pool construction via
        :meth:`distinct_source_pools` and then draws per-consumer in the
        original order produces byte-identical results.
        """
        if pool is None or pool.size == 0:
            return []
        if pool.size <= k:
            return pool.tolist()
        idx = rng.choice(pool.size, size=k, replace=False)
        return pool[idx].tolist()

    def distinct_source_pool(
        self,
        uid: int,
        exclude: Optional[Sequence[int]] = None,
        round_index: Optional[int] = None,
        max_age: Optional[int] = None,
    ) -> np.ndarray:
        """The candidate pool of :meth:`draw_distinct_sources`: distinct, alive,
        non-self, non-excluded sources of ``uid`` in first-occurrence order."""
        sources = self._sources_in_window(uid, round_index=round_index, max_age=max_age)
        if sources.size:
            sources = sources[self.network.alive_mask(sources)]
        if sources.size:
            keep = sources != int(uid)
            if exclude:
                keep &= ~np.isin(sources, np.asarray(list(exclude), dtype=np.int64))
            sources = sources[keep]
        if sources.size == 0:
            return _EMPTY_INT64
        return self._dedup_pool(sources)

    def distinct_source_pools(
        self,
        uids: Sequence[int],
        round_index: Optional[int] = None,
        max_age: Optional[int] = None,
        exclude: Optional[Sequence[int]] = None,
    ) -> List[np.ndarray]:
        """Bulk :meth:`distinct_source_pool` for many uids in one pass.

        The per-round committee refresh batch (see :func:`repro.core.
        committee.plan_refreshes`) asks for every refreshing leader's pool at
        once, and the level-wise landmark build (:meth:`repro.core.landmarks.
        LandmarkSet.build`) asks for a whole tree level's pools: window
        segments of all uids are gathered column by column, a *single*
        ``alive_mask`` call covers every gathered source, and only the tiny
        per-uid dedup runs per consumer.  Each returned pool is identical to
        what ``distinct_source_pool(uid, ...)`` would produce (self-exclusion
        included).

        ``exclude`` is one exclusion snapshot shared by *all* queried uids --
        one ``isin`` over the gathered sources instead of one per consumer.
        Callers whose exclusion set grows between draws (the landmark level
        pass) snapshot it here and subtract later additions from the returned
        pools themselves; membership filtering commutes with the
        first-occurrence dedup, so the result matches per-draw exclusion.
        """
        query = np.asarray(uids, dtype=np.int64)
        if query.size == 0:
            return []
        rounds = self._window_rounds(round_index, max_age)
        if len(rounds) > 1:
            columns = [self._merged_column(rounds)]
        else:
            columns = [self._columns[r] for r in rounds]
        alive_uid = self.network.alive_mask(query)
        # -- gather: per column, the concatenated grouped rows of every found
        # uid (vectorised range expansion), tagged with the query index.
        src_parts: List[np.ndarray] = []
        seg_parts: List[np.ndarray] = []
        for column in columns:
            index = column.index
            if index.keys.size == 0:
                continue
            idx = np.searchsorted(index.keys, query)
            idx_clipped = np.minimum(idx, index.keys.size - 1)
            found = (index.keys[idx_clipped] == query) & alive_uid
            js = np.nonzero(found)[0]
            if js.size == 0:
                continue
            groups = idx_clipped[js]
            starts = index.starts[groups]
            counts = index.ends[groups] - starts
            nonzero = counts > 0
            if not nonzero.any():
                continue
            js, starts, counts = js[nonzero], starts[nonzero], counts[nonzero]
            total = int(counts.sum())
            # Concatenation of [starts_i, starts_i + counts_i) ranges.
            offsets = np.cumsum(counts) - counts
            flat_idx = np.repeat(starts - offsets, counts) + np.arange(total)
            src_parts.append(column.src[index.order[flat_idx]])
            seg_parts.append(np.repeat(js, counts))
        if not src_parts:
            return [_EMPTY_INT64 for _ in range(query.size)]
        # At most one column is ever gathered (a single round, or the merged
        # window), so the gather is already uid-major (js ascending) with
        # delivery order within each uid -- the per-uid path's layout.
        flat = src_parts[0]
        segs = seg_parts[0]
        keep = self.network.alive_mask(flat)
        if exclude is not None and len(exclude):
            keep &= ~np.isin(flat, np.asarray(list(exclude), dtype=np.int64))
        keep &= flat != query[segs]
        flat = flat[keep]
        segs = segs[keep]
        pools: List[np.ndarray] = [_EMPTY_INT64] * int(query.size)
        if flat.size:
            # First-occurrence dedup within each segment: lexsort by
            # (segment, value) -- stable, so ties keep original order and the
            # first row of each (segment, value) run is the first occurrence;
            # re-sorting the survivors restores first-occurrence order.
            sort_idx = np.lexsort((flat, segs))
            sorted_segs = segs[sort_idx]
            sorted_vals = flat[sort_idx]
            first = np.empty(flat.size, dtype=bool)
            first[0] = True
            first[1:] = (sorted_segs[1:] != sorted_segs[:-1]) | (sorted_vals[1:] != sorted_vals[:-1])
            keep_rows = np.sort(sort_idx[first])
            out_vals = flat[keep_rows]
            out_segs = segs[keep_rows]
            boundaries = np.searchsorted(out_segs, np.arange(query.size + 1))
            for j in range(int(query.size)):
                lo, hi = int(boundaries[j]), int(boundaries[j + 1])
                if hi > lo:
                    pools[j] = out_vals[lo:hi]
        return pools

    def draw_distinct_sources(
        self,
        uid: int,
        k: int,
        rng: np.random.Generator,
        exclude: Optional[Sequence[int]] = None,
        round_index: Optional[int] = None,
        max_age: Optional[int] = None,
    ) -> List[int]:
        """Draw up to ``k`` distinct, alive, non-excluded sample sources of ``uid``.

        Used by committee creation ("choose h log n sample ids") and by the
        landmark tree ("select 2 unused nodes among their own samples").
        Returns fewer than ``k`` if the node has not received enough distinct
        usable samples -- callers must handle short draws.

        The candidate pool is ordered by first occurrence in the window
        (vectorised dedup), matching the historical iteration order so seeded
        draws are unchanged.  Consumers that need many draws in one round
        should build the pools in bulk via :meth:`distinct_source_pools` and
        draw with :meth:`draw_from_pool`.
        """
        pool = self.distinct_source_pool(uid, exclude=exclude, round_index=round_index, max_age=max_age)
        return self.draw_from_pool(pool, k, rng)

    # ------------------------------------------------------------------ stats
    def nodes_with_samples(self, round_index: Optional[int] = None) -> int:
        """How many alive nodes hold at least one sample (optionally from one round)."""
        columns = self._query_columns(round_index)
        if not columns:
            return 0
        if len(columns) == 1:
            dests = columns[0].index.keys
        else:
            dests = np.unique(np.concatenate([c.index.keys for c in columns]))
        if dests.size == 0:
            return 0
        return int(np.count_nonzero(self.network.alive_mask(dests)))

    @property
    def last_round_ingested(self) -> int:
        """Most recent round whose deliveries were ingested."""
        return self._last_round_ingested
