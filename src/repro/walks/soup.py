"""The "soup" of random walks (Section 3).

Every node continuously injects random-walk tokens carrying its own uid; each
token takes one step per round along the current round's edges; tokens held
by a node that is churned out are lost; tokens that complete ``walk_length``
steps are *delivered* to whoever holds them at that point and become a
near-uniform sample of the network (the Soup Theorem, Theorem 1).

This is the performance-critical part of the simulator, so walks live in flat
NumPy arrays -- one int32 array of current slot positions, one int64 array of
source uids, one int16 array of steps taken -- and every per-round operation
(churn kill, stepping, delivery extraction) is a vectorised masked operation.
No Python-level loop ever touches an individual token (HPC guide: vectorise
the bottleneck, prefer in-place/boolean-mask operations to per-element work).

The optional per-node forwarding cap of Lemma 1 (at most ``2 h log n`` tokens
forwarded per node per round; excess tokens wait) is implemented but disabled
by default: the lemma shows the cap is essentially never binding, and leaving
it off keeps the hot loop to a single gather.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.net.network import ChurnReport, DynamicNetwork
from repro.util.grouping import group_lists_by_key
from repro.util.rng import RngStream
from repro.util.validation import check_positive_int

__all__ = ["SampleDelivery", "WalkSoupStats", "WalkSoup"]


@dataclass(frozen=True)
class SampleDelivery:
    """Walks that completed their ``walk_length`` steps in one round.

    Attributes
    ----------
    round_index:
        Round in which the walks were delivered.
    destination_uids:
        uid of the node holding each completed walk.
    source_uids:
        uid of the node that originated each walk (the "sample" the
        destination obtains).
    birth_rounds:
        Round in which each walk was injected.
    """

    round_index: int
    destination_uids: np.ndarray
    source_uids: np.ndarray
    birth_rounds: np.ndarray

    @property
    def count(self) -> int:
        """Number of delivered walks."""
        return int(self.destination_uids.size)

    def by_destination(self) -> Dict[int, List[int]]:
        """Group delivered source uids by destination uid (dict of lists)."""
        return group_lists_by_key(self.destination_uids, self.source_uids)


@dataclass
class WalkSoupStats:
    """Cumulative statistics maintained by the soup (cheap, vectorised)."""

    generated: int = 0
    delivered: int = 0
    killed_by_churn: int = 0
    steps_taken: int = 0
    held_by_cap: int = 0
    max_tokens_per_node_round: int = 0
    rounds: int = 0
    tokens_per_node_round_sum: float = 0.0

    @property
    def survival_rate(self) -> float:
        """Fraction of generated walks that were eventually delivered (so far)."""
        if self.generated == 0:
            return 0.0
        return self.delivered / self.generated

    @property
    def mean_tokens_per_node_round(self) -> float:
        """Mean number of tokens resident per node per round."""
        if self.rounds == 0:
            return 0.0
        return self.tokens_per_node_round_sum / self.rounds


class WalkSoup:
    """Vectorised manager for all in-flight random-walk tokens.

    Parameters
    ----------
    network:
        The dynamic network whose topology the walks traverse.
    walk_length:
        Number of steps each token takes before delivery (the paper's
        ``2*tau``; see :class:`repro.core.params.ProtocolParameters`).
    walks_per_node:
        Tokens injected by every alive node per round (the paper's
        ``alpha * log n``; configurable so laptop-scale runs stay tractable).
    rng:
        Protocol-side RNG stream (walk steps are the algorithm's coins).
    enforce_forwarding_cap:
        When True, a node forwards at most ``forwarding_cap`` tokens per
        round; surplus tokens wait at the node (Lemma 1's cap).
    forwarding_cap:
        The cap value; defaults to ``2 * walks_per_node * walk_length`` which
        mirrors the ``2 h log n`` of the paper when the defaults are used.
    track_bandwidth:
        When True, the soup records per-node token counts each round (via a
        single ``bincount``) for experiment E8.
    """

    def __init__(
        self,
        network: DynamicNetwork,
        walk_length: int,
        walks_per_node: int,
        rng: RngStream,
        enforce_forwarding_cap: bool = False,
        forwarding_cap: Optional[int] = None,
        track_bandwidth: bool = True,
    ) -> None:
        self.network = network
        self.walk_length = check_positive_int(walk_length, "walk_length")
        self.walks_per_node = check_positive_int(walks_per_node, "walks_per_node")
        self._rng = rng
        self.enforce_forwarding_cap = enforce_forwarding_cap
        if forwarding_cap is None:
            forwarding_cap = 2 * self.walks_per_node * self.walk_length
        self.forwarding_cap = check_positive_int(forwarding_cap, "forwarding_cap")
        self.track_bandwidth = track_bandwidth

        self._positions = np.empty(0, dtype=np.int32)
        self._sources = np.empty(0, dtype=np.int64)
        self._births = np.empty(0, dtype=np.int32)
        self._steps = np.empty(0, dtype=np.int16)
        self.stats = WalkSoupStats()

    # ------------------------------------------------------------------ injection
    def inject(self, source_slots: np.ndarray, source_uids: np.ndarray, round_index: int) -> int:
        """Inject one token per (slot, uid) pair given; returns the number injected."""
        count = int(source_slots.size)
        if count == 0:
            return 0
        self._positions = np.concatenate([self._positions, source_slots.astype(np.int32)])
        self._sources = np.concatenate([self._sources, source_uids.astype(np.int64)])
        self._births = np.concatenate(
            [self._births, np.full(count, round_index, dtype=np.int32)]
        )
        self._steps = np.concatenate([self._steps, np.zeros(count, dtype=np.int16)])
        self.stats.generated += count
        return count

    def inject_from_all(self, round_index: int, per_node: Optional[int] = None) -> int:
        """Every alive node injects ``per_node`` fresh tokens (default: ``walks_per_node``)."""
        per_node = self.walks_per_node if per_node is None else per_node
        if per_node <= 0:
            return 0
        n = self.network.n_slots
        slots = np.repeat(np.arange(n, dtype=np.int32), per_node)
        uids = np.repeat(self.network.slot_uid_view(), per_node)
        return self.inject(slots, uids, round_index)

    def inject_from_uids(self, uids: np.ndarray, round_index: int, per_node: int = 1) -> int:
        """Inject ``per_node`` tokens from each (alive) uid in ``uids``.

        Dead uids are skipped.  The uid -> slot resolution is one bulk
        :meth:`~repro.net.network.DynamicNetwork.slots_of_uids` call rather
        than a Python loop, preserving the order of ``uids`` (each alive uid
        contributes its ``per_node`` tokens contiguously).
        """
        uids = np.asarray(uids, dtype=np.int64)
        if uids.size == 0 or per_node <= 0:
            return 0
        slots, alive = self.network.slots_of_uids(uids)
        if not alive.any():
            return 0
        slots = slots[alive]
        srcs = uids[alive]
        if per_node > 1:
            slots = np.repeat(slots, per_node)
            srcs = np.repeat(srcs, per_node)
        return self.inject(slots.astype(np.int32), srcs, round_index)

    # ------------------------------------------------------------------ round step
    def apply_churn(self, report: ChurnReport) -> int:
        """Kill tokens held at churned slots; returns the number killed.

        A token resides *at a node*; when that node is churned out at the
        start of a round, the token leaves with it (the paper's walk-loss
        mechanism).  Note the new occupant of the slot does not inherit it.
        """
        if report.count == 0 or self._positions.size == 0:
            return 0
        churned_mask = np.zeros(self.network.n_slots, dtype=bool)
        churned_mask[report.churned_slots] = True
        dead = churned_mask[self._positions]
        killed = int(dead.sum())
        if killed:
            keep = ~dead
            self._positions = self._positions[keep]
            self._sources = self._sources[keep]
            self._births = self._births[keep]
            self._steps = self._steps[keep]
            self.stats.killed_by_churn += killed
        return killed

    @staticmethod
    def _empty_delivery(round_index: int) -> SampleDelivery:
        return SampleDelivery(
            round_index=round_index,
            destination_uids=np.empty(0, dtype=np.int64),
            source_uids=np.empty(0, dtype=np.int64),
            birth_rounds=np.empty(0, dtype=np.int32),
        )

    def step_and_collect(self, round_index: int) -> SampleDelivery:
        """Advance every token one step and extract the completed ones.

        The step uses the *current* round's topology (the network must be in
        a round).  Tokens reaching ``walk_length`` steps are removed from the
        soup and returned as a :class:`SampleDelivery` addressed to the uids
        occupying their final slots.

        The common no-cap path (every token moves) steps the position array
        in place -- no copy, no gather/scatter through a ``moving`` index
        array -- and the completion mask doubles as the keep buffer
        (``logical_not`` in place); capped rounds keep the masked shape but
        scatter into the live array instead of a fresh copy.  Deliveries,
        stats, internal arrays and RNG consumption are byte-identical to the
        historical copy-then-scatter implementation, proven by the reference
        regression in ``tests/test_walks_soup.py``.
        """
        topology = self.network.topology
        n_tokens = self._positions.size
        self.stats.rounds += 1
        if n_tokens == 0:
            return self._empty_delivery(round_index)

        move_mask = None
        if self.enforce_forwarding_cap:
            move_mask = self._forwarding_mask()
            held = int(n_tokens - move_mask.sum())
            self.stats.held_by_cap += held
            if held == 0:
                move_mask = None

        if self.track_bandwidth:
            counts = np.bincount(self._positions, minlength=self.network.n_slots)
            self.stats.max_tokens_per_node_round = max(
                self.stats.max_tokens_per_node_round, int(counts.max())
            )
            self.stats.tokens_per_node_round_sum += float(counts.mean())

        if move_mask is None:
            # All tokens move: step_walks already allocates the stepped
            # array, so the update is a plain rebind plus one in-place add.
            self._positions = topology.step_walks(self._positions, self._rng.generator)
            self._steps += 1
            self.stats.steps_taken += n_tokens
        else:
            moving = np.nonzero(move_mask)[0]
            stepped = topology.step_walks(self._positions[moving], self._rng.generator)
            self._positions[moving] = stepped
            self._steps[moving] += 1
            self.stats.steps_taken += int(moving.size)

        done = self._steps >= self.walk_length
        n_done = int(np.count_nonzero(done))
        if n_done == 0:
            return self._empty_delivery(round_index)

        dest_slots = self._positions[done]
        delivery = SampleDelivery(
            round_index=round_index,
            destination_uids=self.network.uids_at(dest_slots),
            # Boolean indexing already copies; no defensive .copy() needed.
            source_uids=self._sources[done],
            birth_rounds=self._births[done],
        )
        keep = np.logical_not(done, out=done)
        self._positions = self._positions[keep]
        self._sources = self._sources[keep]
        self._births = self._births[keep]
        self._steps = self._steps[keep]
        self.stats.delivered += n_done
        return delivery

    def advance_round(
        self,
        report: ChurnReport,
        inject: bool = True,
        per_node: Optional[int] = None,
    ) -> SampleDelivery:
        """Convenience wrapper: churn-kill, inject fresh tokens, step, collect."""
        self.apply_churn(report)
        if inject:
            self.inject_from_all(report.round_index, per_node=per_node)
        return self.step_and_collect(report.round_index)

    # ------------------------------------------------------------------ internals
    def _forwarding_mask(self) -> np.ndarray:
        """Boolean mask of tokens allowed to move under the per-node cap.

        For each slot holding more than ``forwarding_cap`` tokens, a uniformly
        random subset of exactly ``forwarding_cap`` tokens moves; the rest
        wait for a later round (they neither step nor count progress).
        """
        n_tokens = self._positions.size
        counts = np.bincount(self._positions, minlength=self.network.n_slots)
        over = np.nonzero(counts > self.forwarding_cap)[0]
        if over.size == 0:
            return np.ones(n_tokens, dtype=bool)
        mask = np.ones(n_tokens, dtype=bool)
        # Rank tokens within their slot by a random key; those ranked beyond
        # the cap are held.  Sorting by (slot, random key) gives per-slot
        # random order in one vectorised pass.
        keys = self._rng.random(n_tokens)
        order = np.lexsort((keys, self._positions))
        sorted_slots = self._positions[order]
        # Position of each token within its slot group.
        group_start = np.r_[0, np.nonzero(np.diff(sorted_slots))[0] + 1]
        group_ids = np.zeros(n_tokens, dtype=np.int64)
        group_ids[group_start] = 1
        group_ids = np.cumsum(group_ids) - 1
        within = np.arange(n_tokens) - group_start[group_ids]
        held_sorted = within >= self.forwarding_cap
        mask[order[held_sorted]] = False
        return mask

    # ------------------------------------------------------------------ introspection
    @property
    def in_flight(self) -> int:
        """Number of tokens currently travelling."""
        return int(self._positions.size)

    def tokens_at_slot(self, slot: int) -> int:
        """How many tokens are currently held at ``slot``."""
        if self._positions.size == 0:
            return 0
        return int(np.count_nonzero(self._positions == slot))

    def expected_tokens_per_node(self) -> float:
        """The steady-state expectation ``walks_per_node * walk_length`` (Lemma 1)."""
        return float(self.walks_per_node * self.walk_length)

    def estimated_bits_per_node_round(self, id_bits: int = 64) -> float:
        """Estimated per-node per-round walk traffic in bits.

        Each resident token is forwarded once per round and carries the
        source uid plus a hop counter.
        """
        per_token_bits = id_bits + 16
        return self.expected_tokens_per_node() * per_token_bits

    @staticmethod
    def recommended_walk_length(n: int, multiplier: float = 2.0) -> int:
        """A walk length of ``ceil(multiplier * ln n)`` (the paper's Theta(log n))."""
        return max(2, int(math.ceil(multiplier * math.log(max(n, 3)))))
