"""Random-walk soup: vectorised token walks, mixing analysis, node sampling."""

from repro.walks.mixing import (
    SurvivalReport,
    UniformityReport,
    core_estimate,
    destination_distribution,
    hit_probability_bounds,
    origin_distribution,
    survival_by_source,
    tally_deliveries,
    total_variation_from_uniform,
)
from repro.walks.sampler import NodeSampler, ReceivedSample
from repro.walks.soup import SampleDelivery, WalkSoup, WalkSoupStats

__all__ = [
    "SurvivalReport",
    "UniformityReport",
    "core_estimate",
    "destination_distribution",
    "hit_probability_bounds",
    "origin_distribution",
    "survival_by_source",
    "tally_deliveries",
    "total_variation_from_uniform",
    "NodeSampler",
    "ReceivedSample",
    "SampleDelivery",
    "WalkSoup",
    "WalkSoupStats",
]
