"""Mixing and survival analysis of the walk soup.

These functions turn raw :class:`repro.walks.soup.SampleDelivery` batches into
the quantities the paper's Section 3 reasons about:

* per-source **survival probability** (Lemma 2): the fraction of a source's
  injected walks that are eventually delivered;
* the **destination distribution** and its total-variation distance to the
  uniform distribution (Lemma 3 / the Soup Theorem);
* the **origin distribution** of walks arriving at a destination, used for the
  reversibility statement (Lemma 4);
* an empirical **Core estimate**: the set of sources whose walks both survive
  with good probability and land near-uniformly.

The theorems are "with high probability over n -> infinity" statements; at
finite n we report the measured fractions and distances and compare their
*shape* against the predicted bounds (EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.walks.soup import SampleDelivery

__all__ = [
    "SurvivalReport",
    "UniformityReport",
    "tally_deliveries",
    "survival_by_source",
    "destination_distribution",
    "origin_distribution",
    "total_variation_from_uniform",
    "core_estimate",
    "hit_probability_bounds",
]


@dataclass(frozen=True)
class SurvivalReport:
    """Per-source survival statistics of a batch of walks."""

    injected_per_source: Dict[int, int]
    delivered_per_source: Dict[int, int]

    @property
    def overall_survival(self) -> float:
        """Delivered / injected over all sources."""
        injected = sum(self.injected_per_source.values())
        if injected == 0:
            return 0.0
        return sum(self.delivered_per_source.values()) / injected

    def survival_of(self, source: int) -> float:
        """Survival fraction of a single source (0 if it injected nothing)."""
        injected = self.injected_per_source.get(source, 0)
        if injected == 0:
            return 0.0
        return self.delivered_per_source.get(source, 0) / injected

    def sources_above(self, threshold: float) -> List[int]:
        """Sources whose survival fraction is at least ``threshold``."""
        return [s for s in self.injected_per_source if self.survival_of(s) >= threshold]

    def fraction_above(self, threshold: float) -> float:
        """Fraction of sources whose survival is at least ``threshold``."""
        if not self.injected_per_source:
            return 0.0
        return len(self.sources_above(threshold)) / len(self.injected_per_source)


@dataclass(frozen=True)
class UniformityReport:
    """How close an empirical node distribution is to uniform."""

    tv_distance: float
    max_probability: float
    min_probability: float
    support_size: int
    population_size: int
    sample_count: int

    @property
    def max_over_uniform(self) -> float:
        """max empirical probability / (1/population)."""
        if self.population_size == 0:
            return math.inf
        return self.max_probability * self.population_size

    @property
    def coverage(self) -> float:
        """Fraction of the population that received at least one sample."""
        if self.population_size == 0:
            return 0.0
        return self.support_size / self.population_size


def tally_deliveries(deliveries: Iterable[SampleDelivery]) -> SampleDelivery:
    """Concatenate several delivery batches into one (round index of the last batch)."""
    batches = list(deliveries)
    if not batches:
        return SampleDelivery(
            round_index=-1,
            destination_uids=np.empty(0, dtype=np.int64),
            source_uids=np.empty(0, dtype=np.int64),
            birth_rounds=np.empty(0, dtype=np.int32),
        )
    return SampleDelivery(
        round_index=batches[-1].round_index,
        destination_uids=np.concatenate([b.destination_uids for b in batches]),
        source_uids=np.concatenate([b.source_uids for b in batches]),
        birth_rounds=np.concatenate([b.birth_rounds for b in batches]),
    )


def survival_by_source(
    injected_sources: np.ndarray,
    delivery: SampleDelivery,
) -> SurvivalReport:
    """Build a :class:`SurvivalReport` from injected sources and a delivery batch.

    ``injected_sources`` lists the source uid of every injected walk (with
    multiplicity); the delivery's ``source_uids`` lists the survivors.
    """
    injected_uid, injected_count = np.unique(
        np.asarray(injected_sources, dtype=np.int64), return_counts=True
    )
    delivered_uid, delivered_count = np.unique(delivery.source_uids, return_counts=True)
    return SurvivalReport(
        injected_per_source={int(u): int(c) for u, c in zip(injected_uid, injected_count)},
        delivered_per_source={int(u): int(c) for u, c in zip(delivered_uid, delivered_count)},
    )


def destination_distribution(delivery: SampleDelivery) -> Dict[int, int]:
    """Counts of delivered walks per destination uid."""
    uids, counts = np.unique(delivery.destination_uids, return_counts=True)
    return {int(u): int(c) for u, c in zip(uids, counts)}


def origin_distribution(delivery: SampleDelivery, destination: Optional[int] = None) -> Dict[int, int]:
    """Counts of delivered walks per source uid (optionally restricted to one destination)."""
    if destination is None:
        sources = delivery.source_uids
    else:
        sources = delivery.source_uids[delivery.destination_uids == destination]
    uids, counts = np.unique(sources, return_counts=True)
    return {int(u): int(c) for u, c in zip(uids, counts)}


def total_variation_from_uniform(
    counts: Dict[int, int] | np.ndarray,
    population: Sequence[int] | np.ndarray,
) -> UniformityReport:
    """Total-variation distance between an empirical node distribution and uniform.

    Parameters
    ----------
    counts:
        Either a dict uid -> count or an array of counts aligned with
        ``population``.
    population:
        The uids over which the uniform reference distribution is defined
        (typically the currently alive nodes, or the Core estimate).
    """
    pop = np.asarray(list(population), dtype=np.int64)
    n = int(pop.size)
    if isinstance(counts, dict):
        # Vectorised dict lookup: sort the dict's keys once, then resolve the
        # whole population (and the out-of-population "extra" mass) with
        # searchsorted instead of a Python probe per uid.
        keys = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
        values = np.fromiter(counts.values(), dtype=np.float64, count=len(counts))
        if keys.size == 0:
            count_arr = np.zeros(n, dtype=np.float64)
            extra = 0.0
        else:
            order = np.argsort(keys)
            keys = keys[order]
            values = values[order]
            idx = np.searchsorted(keys, pop)
            idx_clipped = np.minimum(idx, keys.size - 1)
            found = keys[idx_clipped] == pop
            count_arr = np.where(found, values[idx_clipped], 0.0)
            extra = float(values[~np.isin(keys, pop)].sum())
    else:
        count_arr = np.asarray(counts, dtype=np.float64)
        extra = 0
        if count_arr.size != n:
            raise ValueError("counts array must align with population")
    total = float(count_arr.sum() + extra)
    if total == 0 or n == 0:
        return UniformityReport(
            tv_distance=1.0,
            max_probability=0.0,
            min_probability=0.0,
            support_size=0,
            population_size=n,
            sample_count=0,
        )
    probs = count_arr / total
    uniform = 1.0 / n
    tv = 0.5 * (np.abs(probs - uniform).sum() + extra / total)
    return UniformityReport(
        tv_distance=float(tv),
        max_probability=float(probs.max()),
        min_probability=float(probs.min()),
        support_size=int(np.count_nonzero(count_arr)),
        population_size=n,
        sample_count=int(total),
    )


def core_estimate(
    survival: SurvivalReport,
    destination_counts: Dict[int, int],
    survival_threshold: float = 0.5,
    min_received: int = 1,
) -> List[int]:
    """Empirical analogue of the paper's ``Core`` set.

    A node is counted as Core if (i) its own walks survive with fraction at
    least ``survival_threshold`` and (ii) it received at least
    ``min_received`` delivered samples itself (so it can act as both a
    source and a destination of near-uniform sampling).
    """
    good_sources = set(survival.sources_above(survival_threshold))
    good_destinations = {u for u, c in destination_counts.items() if c >= min_received}
    return sorted(good_sources & good_destinations)


def hit_probability_bounds(n: int) -> tuple[float, float]:
    """The Soup Theorem's per-pair hit-probability window ``[1/17n, 3/2n]``."""
    return (1.0 / (17.0 * n), 1.5 / n)
