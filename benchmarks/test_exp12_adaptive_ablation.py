"""Benchmark / reproduction target for experiment E12: see repro.experiments.exp12_adaptive_ablation.

Regenerates the experiment's result table (the paper is a theory paper, so
this stands in for the corresponding table/figure; see DESIGN.md section 3)
and times the quick configuration.
"""

from repro.experiments import exp12_adaptive_ablation as experiment_module

from conftest import run_experiment_benchmark


def test_exp12_adaptive_ablation_benchmark(benchmark):
    result = run_experiment_benchmark(benchmark, experiment_module)
    assert result.tables and not result.tables[0].is_empty()
    assert result.findings
