"""Benchmark / reproduction target for experiment E11: see repro.experiments.exp11_reversibility.

Regenerates the experiment's result table (the paper is a theory paper, so
this stands in for the corresponding table/figure; see DESIGN.md section 3)
and times the quick configuration.
"""

from repro.experiments import exp11_reversibility as experiment_module

from conftest import run_experiment_benchmark


def test_exp11_reversibility_benchmark(benchmark):
    result = run_experiment_benchmark(benchmark, experiment_module)
    assert result.tables and not result.tables[0].is_empty()
    assert result.findings
