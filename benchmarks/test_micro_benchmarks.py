"""Micro-benchmarks of the performance-critical substrate pieces.

These are not paper experiments; they document the cost of the hot paths
(per-round topology generation, one vectorised walk step over ~10^5 tokens,
a full protocol round, IDA encode/decode) so regressions in the simulator's
throughput are visible in the benchmark history.
"""

from __future__ import annotations

import numpy as np

from repro.core.erasure import InformationDispersal
from repro.core.protocol import P2PStorageSystem
from repro.net.topology import RegularTopology
from repro.util.rng import RngStream
from repro.walks.sampler import NodeSampler
from repro.walks.soup import SampleDelivery, WalkSoup
from repro.net.network import DynamicNetwork


def test_topology_generation_benchmark(benchmark):
    rng = np.random.default_rng(0)
    topo = benchmark(lambda: RegularTopology.random(4096, 8, rng))
    assert topo.n_slots == 4096


def test_walk_step_benchmark(benchmark):
    rng = np.random.default_rng(1)
    topo = RegularTopology.random(4096, 8, rng)
    positions = rng.integers(0, 4096, size=100_000).astype(np.int32)
    stepped = benchmark(lambda: topo.step_walks(positions, rng))
    assert stepped.shape == positions.shape


def test_full_round_benchmark(benchmark):
    system = P2PStorageSystem(n=1024, churn_rate=8, seed=3)
    system.warm_up()
    system.store(b"benchmark item")

    summary = benchmark(system.run_round)
    assert summary.walks_in_flight > 0


def test_soup_round_benchmark(benchmark):
    net = DynamicNetwork(2048, degree=8, adversary_rng=RngStream(5))
    soup = WalkSoup(net, walk_length=15, walks_per_node=8, rng=RngStream(6))

    def one_round():
        report = net.begin_round()
        delivery = soup.advance_round(report)
        net.end_round()
        return delivery

    delivery = benchmark(one_round)
    assert delivery is not None


def _sampler_round_delivery(n, walks_per_node, round_index, rng):
    """A synthetic full round of walk deliveries over an n-node network."""
    size = n * walks_per_node
    return SampleDelivery(
        round_index=round_index,
        destination_uids=rng.integers(0, n, size=size).astype(np.int64),
        source_uids=rng.integers(0, n, size=size).astype(np.int64),
        birth_rounds=np.full(size, max(0, round_index - 15), dtype=np.int32),
    )


def test_sampler_ingest_benchmark(benchmark):
    """Columnar ingest + expiry of one n=4096 round (32k delivered walks)."""
    rng = np.random.default_rng(11)
    net = DynamicNetwork(4096, degree=8, adversary_rng=RngStream(11))
    delivery = _sampler_round_delivery(4096, 8, round_index=0, rng=rng)

    def ingest_round():
        sampler = NodeSampler(net, retention=4)
        recorded = sampler.ingest(delivery)
        sampler.expire(0)
        return recorded

    recorded = benchmark(ingest_round)
    assert recorded == 4096 * 8


def test_sampler_window_query_benchmark(benchmark):
    """Materialising every node's sample window from one ingested round."""
    rng = np.random.default_rng(12)
    net = DynamicNetwork(4096, degree=8, adversary_rng=RngStream(12))
    sampler = NodeSampler(net, retention=4)
    sampler.ingest(_sampler_round_delivery(4096, 8, round_index=0, rng=rng))

    windows = benchmark(lambda: sampler.sources_by_destination(0, alive_only=True))
    # With 8 random deliveries per node a handful of nodes may receive none.
    assert len(windows) > 4000


def test_ida_encode_decode_benchmark(benchmark):
    ida = InformationDispersal(total_pieces=12, required_pieces=8)
    data = bytes(np.random.default_rng(7).integers(0, 256, size=64 * 1024, dtype=np.uint8))

    def roundtrip():
        pieces = ida.encode(data)
        return ida.decode(pieces[2:10])

    recovered = benchmark(roundtrip)
    assert recovered == data


def test_sampler_bulk_pools_benchmark(benchmark):
    """Bulk candidate-pool gather for a 64-parent level over 4 retained rounds.

    This is the landmark level pass's sampler call: one merged-window gather,
    one alive mask over every gathered source, one exclusion-snapshot filter,
    per-parent first-occurrence dedup.
    """
    rng = np.random.default_rng(21)
    net = DynamicNetwork(4096, degree=8, adversary_rng=RngStream(21))
    sampler = NodeSampler(net, retention=6)
    for r in range(4):
        sampler.ingest(_sampler_round_delivery(4096, 8, round_index=r, rng=rng))
    parents = rng.choice(4096, size=64, replace=False).tolist()
    exclude = set(rng.choice(4096, size=128, replace=False).tolist())

    pools = benchmark(
        lambda: sampler.distinct_source_pools(parents, max_age=6, exclude=exclude)
    )
    assert len(pools) == 64
    assert sum(p.size for p in pools) > 0


def test_landmark_build_benchmark(benchmark):
    """One level-batched landmark tree build on a maintenance-heavy system.

    Mirrors the ROADMAP's maintenance-heavy scenario shape: a warmed, churned
    n=2048 network with stored items, building a fresh landmark set from a
    live committee (the post-PR-4 dominant maintenance cost).
    """
    from repro.core.committee import Committee
    from repro.core.landmarks import LandmarkSet

    system = P2PStorageSystem(n=2048, churn_rate=16, seed=3)
    system.warm_up()
    for i in range(12):
        system.store(bytes([i]) * 8)
    for _ in range(3):
        system.run_round()
    round_index = system.ctx.round_index
    committee = Committee.create(
        system.ctx, creator_uid=system.random_alive_node(), task="storage", item_id=999
    )

    def fresh_landmarks():
        lm = LandmarkSet(
            system.ctx, committee=committee, item_id=999, role="storage", created_round=round_index
        )
        return (lm,), {}

    def build(lm):
        return lm.build(round_index)

    report = benchmark.pedantic(build, setup=fresh_landmarks, rounds=20)
    benchmark.extra_info["recruited"] = report.recruited
    benchmark.extra_info["roots"] = report.roots
    assert report.recruited > 0


def test_disabled_span_benchmark(benchmark):
    """Unit cost of the observability no-op path left inside run_round.

    This is the exact sequence every instrumented phase executes when no
    observer is installed: an attribute lookup returning the shared
    NULL_SPAN singleton, entered and exited.  NEW relative to the committed
    baseline, so compare_baseline never fails on it; future PRs inherit it
    as a guard against regressing the disabled path.
    """
    from repro.obs.observer import active_observer

    obs = active_observer()  # the NULL_OBSERVER singleton

    def noop_spans():
        for _ in range(1000):
            with obs.span("round.churn"):
                pass

    benchmark(noop_spans)
