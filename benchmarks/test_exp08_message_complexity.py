"""Benchmark / reproduction target for experiment E8: see repro.experiments.exp08_message_complexity.

Regenerates the experiment's result table (the paper is a theory paper, so
this stands in for the corresponding table/figure; see DESIGN.md section 3)
and times the quick configuration.
"""

from repro.experiments import exp08_message_complexity as experiment_module

from conftest import run_experiment_benchmark


def test_exp08_message_complexity_benchmark(benchmark):
    result = run_experiment_benchmark(benchmark, experiment_module)
    assert result.tables and not result.tables[0].is_empty()
    assert result.findings
