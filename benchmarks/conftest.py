"""Shared helpers for the benchmark harness.

Every experiment benchmark runs the experiment's quick configuration exactly
once through pytest-benchmark's pedantic mode (the experiments are themselves
Monte-Carlo aggregates; repeating them inside the timer would only multiply
runtime without adding information) and attaches the headline measurements as
benchmark extra_info so `pytest benchmarks/ --benchmark-only` doubles as a
results printer.
"""

from __future__ import annotations

import pytest


def run_experiment_benchmark(benchmark, module, **run_kwargs):
    """Run ``module.run(module.quick_config())`` once under the benchmark timer."""
    result_holder = {}

    def target():
        result_holder["result"] = module.run(module.quick_config(), **run_kwargs)
        return result_holder["result"]

    result = benchmark.pedantic(target, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = module.EXPERIMENT_ID
    benchmark.extra_info["title"] = module.TITLE
    for finding in result.findings[:2]:
        benchmark.extra_info.setdefault("findings", []).append(finding)
    # Surface the first table in the captured output for convenience.
    print()
    for table in result.tables:
        print(table.to_text())
        print()
    return result
