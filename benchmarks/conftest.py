"""Shared helpers for the benchmark harness.

Every experiment benchmark runs the experiment's quick configuration exactly
once through pytest-benchmark's pedantic mode (the experiments are themselves
Monte-Carlo aggregates; repeating them inside the timer would only multiply
runtime without adding information) and attaches the headline measurements as
benchmark extra_info so `pytest benchmarks/ --benchmark-only` doubles as a
results printer.

Benchmarks resolve their experiment through the spec registry
(:func:`repro.experiments.registry.get_experiment`), so they exercise the
same :class:`~repro.experiments.spec.ExperimentSpec` path the
``repro-experiment`` CLI uses.

Environment knobs:

* ``REPRO_BENCH_WORKERS=k`` parallelises every experiment benchmark's
  Monte-Carlo trials through :class:`repro.sim.runner.TrialRunner` (results
  are seed-deterministic, so the knob only changes timing);
* ``REPRO_BENCH_JSON_DIR=path`` writes each benchmarked experiment's full
  :class:`~repro.sim.results.ExperimentResult` as ``<id>.json`` under that
  directory (CI uploads these as workflow artifacts);
* ``REPRO_BENCH_SUMMARY=BENCH_pr4.json`` additionally writes a compact
  one-file summary of every benchmark that ran (name, mean/min seconds,
  extra_info) into ``REPRO_BENCH_JSON_DIR``.  The repo keeps the current
  baseline committed at the root (``BENCH_pr4.json``; earlier PRs' baselines
  stay alongside it) so successive PRs have a perf trajectory to compare
  against.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.registry import get_experiment


def _default_workers() -> int:
    """Worker count from $REPRO_BENCH_WORKERS (default 1 = sequential)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))
    except ValueError:
        return 1


def _json_dir() -> Path | None:
    """Artifact directory from $REPRO_BENCH_JSON_DIR (None = don't persist)."""
    value = os.environ.get("REPRO_BENCH_JSON_DIR", "").strip()
    return Path(value) if value else None


def pytest_sessionfinish(session, exitstatus):
    """Write the one-file benchmark summary if $REPRO_BENCH_SUMMARY asks for it."""
    summary_name = os.environ.get("REPRO_BENCH_SUMMARY", "").strip()
    json_dir = _json_dir()
    if not summary_name or json_dir is None:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    entries = []
    for bench in bench_session.benchmarks:  # pytest_benchmark Metadata objects
        if bench.has_error:
            continue
        entries.append(
            {
                "name": bench.name,
                "group": bench.group,
                "mean_seconds": float(bench.stats.mean),
                "min_seconds": float(bench.stats.min),
                "rounds": int(bench.stats.rounds),
                "extra_info": dict(bench.extra_info),
            }
        )
    if not entries:
        return
    json_dir.mkdir(parents=True, exist_ok=True)
    (json_dir / summary_name).write_text(json.dumps({"benchmarks": entries}, indent=2) + "\n")


def run_experiment_benchmark(benchmark, module, workers=None, **run_kwargs):
    """Run the module's experiment via its registered spec under the benchmark timer."""
    spec = get_experiment(module.EXPERIMENT_ID)
    workers = _default_workers() if workers is None else workers
    result_holder = {}

    def target():
        result_holder["result"] = spec.run(spec.config(workers=workers), **run_kwargs)
        return result_holder["result"]

    result = benchmark.pedantic(target, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = spec.experiment_id
    benchmark.extra_info["title"] = spec.title
    benchmark.extra_info["workers"] = workers
    for finding in result.findings[:2]:
        benchmark.extra_info.setdefault("findings", []).append(finding)
    json_dir = _json_dir()
    if json_dir is not None:
        json_dir.mkdir(parents=True, exist_ok=True)
        (json_dir / f"{spec.experiment_id}.json").write_text(result.to_json())
    # Surface the first table in the captured output for convenience.
    print()
    for table in result.tables:
        print(table.to_text())
        print()
    return result
