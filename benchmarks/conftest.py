"""Shared helpers for the benchmark harness.

Every experiment benchmark runs the experiment's quick configuration exactly
once through pytest-benchmark's pedantic mode (the experiments are themselves
Monte-Carlo aggregates; repeating them inside the timer would only multiply
runtime without adding information) and attaches the headline measurements as
benchmark extra_info so `pytest benchmarks/ --benchmark-only` doubles as a
results printer.

Benchmarks resolve their experiment through the spec registry
(:func:`repro.experiments.registry.get_experiment`), so they exercise the
same :class:`~repro.experiments.spec.ExperimentSpec` path the
``repro-experiment`` CLI uses.

Environment knobs:

* ``REPRO_BENCH_WORKERS=k`` parallelises every experiment benchmark's
  Monte-Carlo trials through :class:`repro.sim.runner.TrialRunner` (results
  are seed-deterministic, so the knob only changes timing);
* ``REPRO_BENCH_JSON_DIR=path`` writes each benchmarked experiment's full
  :class:`~repro.sim.results.ExperimentResult` as ``<id>.json`` under that
  directory (CI uploads these as workflow artifacts).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.registry import get_experiment


def _default_workers() -> int:
    """Worker count from $REPRO_BENCH_WORKERS (default 1 = sequential)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))
    except ValueError:
        return 1


def _json_dir() -> Path | None:
    """Artifact directory from $REPRO_BENCH_JSON_DIR (None = don't persist)."""
    value = os.environ.get("REPRO_BENCH_JSON_DIR", "").strip()
    return Path(value) if value else None


def run_experiment_benchmark(benchmark, module, workers=None, **run_kwargs):
    """Run the module's experiment via its registered spec under the benchmark timer."""
    spec = get_experiment(module.EXPERIMENT_ID)
    workers = _default_workers() if workers is None else workers
    result_holder = {}

    def target():
        result_holder["result"] = spec.run(spec.config(workers=workers), **run_kwargs)
        return result_holder["result"]

    result = benchmark.pedantic(target, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = spec.experiment_id
    benchmark.extra_info["title"] = spec.title
    benchmark.extra_info["workers"] = workers
    for finding in result.findings[:2]:
        benchmark.extra_info.setdefault("findings", []).append(finding)
    json_dir = _json_dir()
    if json_dir is not None:
        json_dir.mkdir(parents=True, exist_ok=True)
        (json_dir / f"{spec.experiment_id}.json").write_text(result.to_json())
    # Surface the first table in the captured output for convenience.
    print()
    for table in result.tables:
        print(table.to_text())
        print()
    return result
